//! Two-trace comparison (Fig. 10).
//!
//! "EASYVIEW offers a nice trace comparison feature": two runs of the
//! same kernel displayed one above the other, revealing that the
//! optimized blur "is approximately 3 times faster" overall and that
//! "many tasks are approximately 10 times faster than their original
//! version" (the branch-free, auto-vectorized inner tiles).

use ezp_core::error::{Error, Result};
use ezp_trace::Trace;

/// The aligned comparison of two traces.
#[derive(Clone, Debug)]
pub struct TraceComparison<'a> {
    /// Reference run (e.g. the basic blur), drawn at the bottom in Fig. 10.
    pub base: &'a Trace,
    /// Candidate run (e.g. the optimized blur).
    pub opt: &'a Trace,
}

/// Duration statistics of matched tasks (same tile, same iteration).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskSpeedup {
    /// Tile x of the matched task.
    pub x: usize,
    /// Tile y of the matched task.
    pub y: usize,
    /// Iteration.
    pub iteration: u32,
    /// Base task duration (ns).
    pub base_ns: u64,
    /// Optimized task duration (ns).
    pub opt_ns: u64,
}

impl TaskSpeedup {
    /// `base / opt` duration ratio (×10 for the blur inner tiles).
    pub fn ratio(&self) -> f64 {
        self.base_ns as f64 / self.opt_ns.max(1) as f64
    }
}

impl<'a> TraceComparison<'a> {
    /// Pairs two traces of the same kernel/geometry.
    pub fn new(base: &'a Trace, opt: &'a Trace) -> Result<Self> {
        if base.meta.dim != opt.meta.dim || base.meta.tile_size != opt.meta.tile_size {
            return Err(Error::Config(format!(
                "cannot compare traces with different geometry ({}x{} tiles {} vs {}x{} tiles {})",
                base.meta.dim,
                base.meta.dim,
                base.meta.tile_size,
                opt.meta.dim,
                opt.meta.dim,
                opt.meta.tile_size
            )));
        }
        Ok(TraceComparison { base, opt })
    }

    /// Overall wall-clock speedup `base / opt` over the recorded spans.
    pub fn overall_speedup(&self) -> f64 {
        let span = |t: &Trace| t.time_bounds().map(|(a, b)| b - a).unwrap_or(0);
        span(self.base) as f64 / span(self.opt).max(1) as f64
    }

    /// Per-iteration durations `(iteration, base_ns, opt_ns)` for the
    /// iterations present in both traces.
    pub fn per_iteration(&self) -> Vec<(u32, u64, u64)> {
        self.base
            .iterations
            .iter()
            .filter_map(|b| {
                let o = self.opt.iterations.iter().find(|o| o.iteration == b.iteration)?;
                Some((b.iteration, b.duration_ns(), o.duration_ns()))
            })
            .collect()
    }

    /// Matches tasks by `(iteration, tile x, tile y)` and reports their
    /// duration ratios — the hover comparison students perform in
    /// Fig. 10.
    pub fn task_speedups(&self) -> Vec<TaskSpeedup> {
        let mut out = Vec::new();
        for b in &self.base.tasks {
            if let Some(o) = self
                .opt
                .tasks
                .iter()
                .find(|o| o.iteration == b.iteration && o.x == b.x && o.y == b.y)
            {
                out.push(TaskSpeedup {
                    x: b.x,
                    y: b.y,
                    iteration: b.iteration,
                    base_ns: b.duration_ns(),
                    opt_ns: o.duration_ns(),
                });
            }
        }
        out
    }

    /// The tasks whose ratio is at least `threshold` — "short durations
    /// do always correspond to inner tiles".
    pub fn tasks_faster_than(&self, threshold: f64) -> Vec<TaskSpeedup> {
        self.task_speedups()
            .into_iter()
            .filter(|t| t.ratio() >= threshold)
            .collect()
    }

    /// A textual summary in the spirit of the Fig. 10 caption.
    pub fn summary(&self) -> String {
        let speedups = self.task_speedups();
        let mean_ratio = if speedups.is_empty() {
            1.0
        } else {
            speedups.iter().map(|t| t.ratio()).sum::<f64>() / speedups.len() as f64
        };
        let max_ratio = speedups.iter().map(|t| t.ratio()).fold(1.0f64, f64::max);
        format!(
            "{} vs {}: overall x{:.2}, mean task x{:.2}, best task x{:.2} ({} matched tasks)",
            self.base.meta.label,
            self.opt.meta.label,
            self.overall_speedup(),
            mean_ratio,
            max_ratio,
            speedups.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_monitor::report::IterationSpan;
    use ezp_monitor::TileRecord;
    use ezp_trace::TraceMeta;

    fn meta(label: &str) -> TraceMeta {
        TraceMeta {
            kernel: "blur".into(),
            variant: label.into(),
            dim: 48,
            tile_size: 16,
            threads: 1,
            schedule: "static".into(),
            label: label.into(),
        }
    }

    /// A trace where inner tile (16,16) costs `inner` and the 8 border
    /// tiles cost `border` each.
    fn blur_trace(label: &str, border: u64, inner: u64) -> Trace {
        let grid = ezp_core::TileGrid::square(48, 16).unwrap();
        let mut tasks = Vec::new();
        let mut t = 0u64;
        for tile in grid.iter() {
            let cost = if tile.tx == 1 && tile.ty == 1 { inner } else { border };
            tasks.push(TileRecord {
                iteration: 1,
                x: tile.x,
                y: tile.y,
                w: tile.w,
                h: tile.h,
                start_ns: t,
                end_ns: t + cost,
                worker: 0,
            });
            t += cost;
        }
        Trace {
            meta: meta(label),
            iterations: vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: t,
            }],
            tasks,
            edges: Vec::new(),
            counters: None,
        }
    }

    #[test]
    fn fig10_shape_reproduced() {
        // basic: all tiles slow; optimized: inner tiles 10x faster
        let base = blur_trace("basic", 100, 100);
        let opt = blur_trace("opt", 100, 10);
        let cmp = TraceComparison::new(&base, &opt).unwrap();
        let speedups = cmp.task_speedups();
        assert_eq!(speedups.len(), 9);
        let fast = cmp.tasks_faster_than(9.0);
        assert_eq!(fast.len(), 1);
        assert_eq!((fast[0].x, fast[0].y), (16, 16)); // the inner tile
        assert!((fast[0].ratio() - 10.0).abs() < 1e-9);
        assert!(cmp.overall_speedup() > 1.0);
        assert!(cmp.summary().contains("x10.00"));
    }

    #[test]
    fn per_iteration_alignment() {
        let base = blur_trace("basic", 50, 50);
        let opt = blur_trace("opt", 50, 5);
        let cmp = TraceComparison::new(&base, &opt).unwrap();
        let per_it = cmp.per_iteration();
        assert_eq!(per_it.len(), 1);
        let (it, b, o) = per_it[0];
        assert_eq!(it, 1);
        assert!(b > o);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let base = blur_trace("basic", 10, 10);
        let mut opt = blur_trace("opt", 10, 10);
        opt.meta.dim = 96;
        assert!(TraceComparison::new(&base, &opt).is_err());
    }

    #[test]
    fn unmatched_tasks_are_skipped() {
        let base = blur_trace("basic", 10, 10);
        let mut opt = blur_trace("opt", 10, 10);
        opt.tasks.truncate(4);
        let cmp = TraceComparison::new(&base, &opt).unwrap();
        assert_eq!(cmp.task_speedups().len(), 4);
    }

    #[test]
    fn identical_traces_have_unit_speedup() {
        let a = blur_trace("a", 20, 20);
        let b = blur_trace("b", 20, 20);
        let cmp = TraceComparison::new(&a, &b).unwrap();
        assert!((cmp.overall_speedup() - 1.0).abs() < 1e-9);
        assert!(cmp.tasks_faster_than(1.5).is_empty());
    }
}
