//! The Invert kernel (paper §II-A): per-pixel RGB complement — the
//! "hello world" of EASYPAP variants, embarrassingly parallel and
//! memory-bound.

use ezp_core::error::{Error, Result};
use ezp_core::{Kernel, KernelCtx, Rgba, TileGrid};
use ezp_gpu::{NdRange, VirtualDevice};
use ezp_sched::parallel_for_tiles_img;

/// RGB complement, alpha preserved.
#[inline]
pub fn invert_pixel(p: Rgba) -> Rgba {
    Rgba(p.0 ^ 0xffff_ff00)
}

/// The invert kernel.
#[derive(Default)]
pub struct Invert;

impl Kernel for Invert {
    fn name(&self) -> &'static str {
        "invert"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp", "gpu"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        crate::shapes::test_card(ctx.images.cur_mut());
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let dim = ctx.dim();
        match variant {
            "seq" => {
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    ctx.probe.start_tile(0);
                    ctx.images.cur_mut().for_each_mut(|_, _, p| *p = invert_pixel(*p));
                    ctx.probe.end_tile(0, 0, dim, dim, 0);
                    ctx.probe.iteration_end(it);
                }
            }
            "omp" => {
                // row-shaped tiles, like `#pragma omp parallel for` over lines
                let grid = TileGrid::new(dim, dim, dim, 1)?;
                let schedule = ctx.cfg.schedule;
                let mut pool = ezp_sched::acquire_pool(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    parallel_for_tiles_img(
                        &mut pool,
                        &grid,
                        schedule,
                        &*ctx.probe,
                        ctx.images.cur_mut(),
                        |w, _| {
                            let t = w.tile();
                            for x in t.x..t.x + t.w {
                                w.set(x, t.y, invert_pixel(w.get(x, t.y)));
                            }
                        },
                    );
                    ctx.probe.iteration_end(it);
                }
            }
            "gpu" => {
                let device = VirtualDevice::new(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    let range = NdRange {
                        global: (dim, dim),
                        local: (ctx.cfg.tile_size, ctx.cfg.tile_size),
                    };
                    let (out, _) =
                        device.launch(range, ctx.images.cur(), |x, y, src| invert_pixel(src.get(x, y)))?;
                    ctx.images.cur_mut().copy_from(&out);
                    ctx.probe.iteration_end(it);
                }
            }
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "invert".into(),
                    variant: other.into(),
                })
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::RunConfig;

    fn run(variant: &str, iters: u32) -> Vec<Rgba> {
        let mut ctx = KernelCtx::new(RunConfig::new("invert").size(32).tile(8).threads(2)).unwrap();
        let mut k = Invert;
        k.init(&mut ctx).unwrap();
        k.compute(&mut ctx, variant, iters).unwrap();
        ctx.images.cur().as_slice().to_vec()
    }

    #[test]
    fn invert_pixel_complements_rgb_keeps_alpha() {
        let p = Rgba::new(10, 200, 0, 123);
        let q = invert_pixel(p);
        assert_eq!((q.r(), q.g(), q.b(), q.a()), (245, 55, 255, 123));
        assert_eq!(invert_pixel(q), p);
    }

    #[test]
    fn variants_agree() {
        let seq = run("seq", 1);
        assert_eq!(run("omp", 1), seq);
        assert_eq!(run("gpu", 1), seq);
    }

    #[test]
    fn double_invert_is_identity() {
        let mut original = ezp_core::Img2D::square(32);
        crate::shapes::test_card(&mut original);
        assert_eq!(run("omp", 2), original.as_slice());
    }
}
