//! The Scrollup kernel: the image scrolls up one row per iteration
//! (wrapping) — EASYPAP's minimal animated kernel, the typical target
//! of the very first hands-on session.

use ezp_core::error::{Error, Result};
use ezp_core::{Kernel, KernelCtx};
use ezp_sched::{parallel_for_tiles, ImgCell};

/// The scrollup kernel.
#[derive(Default)]
pub struct Scrollup;

impl Kernel for Scrollup {
    fn name(&self) -> &'static str {
        "scrollup"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp_tiled"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        crate::shapes::test_card(ctx.images.cur_mut());
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let dim = ctx.dim();
        match variant {
            "seq" => {
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    ctx.probe.start_tile(0);
                    {
                        let (src, dst) = ctx.images.rw();
                        for y in 0..dim {
                            let from = (y + 1) % dim;
                            dst.row_mut(y).copy_from_slice(src.row(from));
                        }
                    }
                    ctx.probe.end_tile(0, 0, dim, dim, 0);
                    ctx.images.swap();
                    ctx.probe.iteration_end(it);
                }
            }
            "omp_tiled" => {
                let grid = ctx.grid;
                let schedule = ctx.cfg.schedule;
                let mut pool = ezp_sched::acquire_pool(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    {
                        let (src, dst) = ctx.images.rw();
                        let cell = ImgCell::new(dst);
                        parallel_for_tiles(&mut pool, &grid, schedule, &*ctx.probe, |t, _| {
                            let w = cell.tile_writer(t);
                            for y in t.y..t.y + t.h {
                                let from = (y + 1) % dim;
                                for x in t.x..t.x + t.w {
                                    w.set(x, y, src.get(x, from));
                                }
                            }
                        });
                    }
                    ctx.images.swap();
                    ctx.probe.iteration_end(it);
                }
            }
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "scrollup".into(),
                    variant: other.into(),
                })
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::{Rgba, RunConfig};

    fn run(variant: &str, dim: usize, iters: u32) -> Vec<Rgba> {
        let mut ctx =
            KernelCtx::new(RunConfig::new("scrollup").size(dim).tile(8).threads(2)).unwrap();
        let mut k = Scrollup;
        k.init(&mut ctx).unwrap();
        k.compute(&mut ctx, variant, iters).unwrap();
        ctx.images.cur().as_slice().to_vec()
    }

    #[test]
    fn one_scroll_shifts_rows_up() {
        let dim = 16;
        let out = run("seq", dim, 1);
        let mut original = ezp_core::Img2D::square(dim);
        crate::shapes::test_card(&mut original);
        for y in 0..dim {
            for x in 0..dim {
                assert_eq!(out[y * dim + x], original.get(x, (y + 1) % dim));
            }
        }
    }

    #[test]
    fn dim_scrolls_are_identity() {
        let dim = 12;
        let out = run("omp_tiled", dim, dim as u32);
        let mut original = ezp_core::Img2D::square(dim);
        crate::shapes::test_card(&mut original);
        assert_eq!(out, original.as_slice());
    }

    #[test]
    fn variants_agree() {
        assert_eq!(run("seq", 24, 5), run("omp_tiled", 24, 5));
    }
}
