//! The Picture-Blurring kernel — a 3×3 mean stencil (paper §III-B).
//!
//! Each iteration reads every pixel's 3×3 neighbourhood from the current
//! image and writes the average to the next one; the images are swapped
//! between iterations. Border pixels have fewer than 9 neighbours, so
//! the naive code is full of conditional branches. The paper's optimized
//! variant specializes: "tests are only required for tiles located on
//! the edges", so *inner* tiles run a branch-free loop the compiler can
//! auto-vectorize — the ×10 per-task speedup of Fig. 10. Both variants
//! produce bit-identical images (property-tested below).

use ezp_core::error::{Error, Result};
use ezp_core::{Img2D, Kernel, KernelCtx, Rgba, Tile};
use ezp_sched::{parallel_for_tiles, ImgCell};

/// Average of the up-to-9 neighbours of `(x, y)`, with bounds checks —
/// the "poor performance" branchy version that is nonetheless correct
/// everywhere.
#[inline]
pub fn blur_pixel_checked(src: &Img2D<Rgba>, x: usize, y: usize) -> Rgba {
    let (mut r, mut g, mut b, mut a) = (0u32, 0u32, 0u32, 0u32);
    let mut n = 0u32;
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            if let Some(p) = src.try_get(x as isize + dx as isize, y as isize + dy as isize) {
                r += p.r() as u32;
                g += p.g() as u32;
                b += p.b() as u32;
                a += p.a() as u32;
                n += 1;
            }
        }
    }
    Rgba::new((r / n) as u8, (g / n) as u8, (b / n) as u8, (a / n) as u8)
}

/// Average of the exactly-9 neighbours of `(x, y)` — no branches, valid
/// only when `1 <= x < dim-1 && 1 <= y < dim-1`. This is the loop the
/// compiler vectorizes in the paper's optimized variant.
#[inline]
pub fn blur_pixel_unchecked(src: &Img2D<Rgba>, x: usize, y: usize) -> Rgba {
    debug_assert!(x >= 1 && y >= 1 && x + 1 < src.width() && y + 1 < src.height());
    let (mut r, mut g, mut b, mut a) = (0u32, 0u32, 0u32, 0u32);
    for dy in 0..3 {
        let row = src.row(y + dy - 1);
        for dx in 0..3 {
            let p = row[x + dx - 1];
            r += p.r() as u32;
            g += p.g() as u32;
            b += p.b() as u32;
            a += p.a() as u32;
        }
    }
    Rgba::new((r / 9) as u8, (g / 9) as u8, (b / 9) as u8, (a / 9) as u8)
}

/// True when every pixel of `tile` has all 9 neighbours inside the image.
#[inline]
fn tile_is_inner(tile: &Tile, dim: usize) -> bool {
    tile.x > 0 && tile.y > 0 && tile.x + tile.w < dim && tile.y + tile.h < dim
}

/// Cost model for `ezp-simsched` / Fig. 9b: per-pixel unit cost, with
/// border tiles `border_penalty`× heavier (branches + no vectorization).
pub fn tile_cost(tile: Tile, dim: usize, border_penalty: u64) -> u64 {
    let pixels = tile.pixels() as u64;
    if tile_is_inner(&tile, dim) {
        pixels
    } else {
        pixels * border_penalty
    }
}

/// The blur kernel state (the image pair lives in the context).
#[derive(Default)]
pub struct Blur;

impl Blur {
    fn blur_tile_checked(src: &Img2D<Rgba>, w: &ezp_sched::TileWriter<'_, '_, Rgba>) {
        let t = w.tile();
        for y in t.y..t.y + t.h {
            for x in t.x..t.x + t.w {
                w.set(x, y, blur_pixel_checked(src, x, y));
            }
        }
    }

    fn blur_tile_unchecked(src: &Img2D<Rgba>, w: &ezp_sched::TileWriter<'_, '_, Rgba>) {
        let t = w.tile();
        for y in t.y..t.y + t.h {
            for x in t.x..t.x + t.w {
                w.set(x, y, blur_pixel_unchecked(src, x, y));
            }
        }
    }

    fn compute_seq(&self, ctx: &mut KernelCtx, nb_iter: u32) {
        let dim = ctx.dim();
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            ctx.probe.start_tile(0);
            {
                let (src, dst) = ctx.images.rw();
                for y in 0..dim {
                    for x in 0..dim {
                        dst.set(x, y, blur_pixel_checked(src, x, y));
                    }
                }
            }
            ctx.probe.end_tile(0, 0, dim, dim, 0);
            ctx.images.swap();
            ctx.probe.iteration_end(it);
        }
    }

    /// Parallel tiled blur; `specialized` switches the inner tiles to the
    /// branch-free loop (the paper's optimization).
    fn compute_tiled(&self, ctx: &mut KernelCtx, nb_iter: u32, specialized: bool) -> Result<()> {
        let dim = ctx.dim();
        let grid = ctx.grid;
        let schedule = ctx.cfg.schedule;
        let mut pool = ezp_sched::acquire_pool(ctx.threads());
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            {
                let (src, dst) = ctx.images.rw();
                let cell = ImgCell::new(dst);
                parallel_for_tiles(&mut pool, &grid, schedule, &*ctx.probe, |tile, _| {
                    let w = cell.tile_writer(tile);
                    if specialized && tile_is_inner(&tile, dim) {
                        Self::blur_tile_unchecked(src, &w);
                    } else {
                        Self::blur_tile_checked(src, &w);
                    }
                });
            }
            ctx.images.swap();
            ctx.probe.iteration_end(it);
        }
        Ok(())
    }
}

impl Kernel for Blur {
    fn name(&self) -> &'static str {
        "blur"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp_tiled", "omp_tiled_opt"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        // a colorful deterministic test card: gradients + a few shapes,
        // so that blurring is visible and every channel is exercised
        let dim = ctx.dim();
        let img = ctx.images.cur_mut();
        crate::shapes::test_card(img);
        // next image starts as a copy so border pixels behave on swap
        let snapshot = img.clone();
        ctx.images.next_mut().copy_from(&snapshot);
        let _ = dim;
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        match variant {
            "seq" => self.compute_seq(ctx, nb_iter),
            "omp_tiled" => self.compute_tiled(ctx, nb_iter, false)?,
            "omp_tiled_opt" => self.compute_tiled(ctx, nb_iter, true)?,
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "blur".into(),
                    variant: other.into(),
                })
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::{RunConfig, Schedule, TileGrid};
    use ezp_testkit::ezp_proptest;

    fn run(variant: &str, dim: usize, tile: usize, iters: u32) -> Vec<Rgba> {
        let mut k = Blur;
        let mut c = KernelCtx::new(
            RunConfig::new("blur")
                .variant(variant)
                .size(dim)
                .tile(tile)
                .threads(3)
                .schedule(Schedule::NonmonotonicDynamic(1))
                .iterations(iters),
        )
        .unwrap();
        k.init(&mut c).unwrap();
        k.compute(&mut c, variant, iters).unwrap();
        c.images.cur().as_slice().to_vec()
    }

    #[test]
    fn checked_and_unchecked_agree_on_interior() {
        let mut img = Img2D::square(8);
        crate::shapes::test_card(&mut img);
        for y in 1..7 {
            for x in 1..7 {
                assert_eq!(
                    blur_pixel_checked(&img, x, y),
                    blur_pixel_unchecked(&img, x, y),
                    "disagreement at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn corner_averages_four_pixels() {
        let mut img: Img2D<Rgba> = Img2D::square(4);
        img.fill(Rgba::new(100, 100, 100, 255));
        img.set(0, 0, Rgba::new(200, 200, 200, 255));
        let c = blur_pixel_checked(&img, 0, 0);
        // corner sees 4 pixels: (200 + 3*100)/4 = 125
        assert_eq!(c.r(), 125);
    }

    #[test]
    fn uniform_image_is_fixed_point() {
        let mut img: Img2D<Rgba> = Img2D::square(6);
        img.fill(Rgba::new(42, 17, 99, 255));
        for y in 0..6 {
            for x in 0..6 {
                assert_eq!(blur_pixel_checked(&img, x, y), Rgba::new(42, 17, 99, 255));
            }
        }
    }

    #[test]
    fn optimized_variant_matches_basic_exactly() {
        // the core Fig. 10 claim: removing the branches does not change
        // the output
        let basic = run("omp_tiled", 48, 16, 3);
        let opt = run("omp_tiled_opt", 48, 16, 3);
        assert_eq!(basic, opt);
    }

    #[test]
    fn parallel_variants_match_seq() {
        let seq = run("seq", 32, 8, 2);
        assert_eq!(run("omp_tiled", 32, 8, 2), seq);
        assert_eq!(run("omp_tiled_opt", 32, 8, 2), seq);
    }

    #[test]
    fn blur_actually_smooths() {
        let before = {
            let mut img = Img2D::square(32);
            crate::shapes::test_card(&mut img);
            img
        };
        let after = run("seq", 32, 8, 4);
        // total variation (neighbour differences) must decrease
        let tv = |data: &[Rgba]| -> u64 {
            let mut acc = 0u64;
            for y in 0..32 {
                for x in 0..31 {
                    let a = data[y * 32 + x];
                    let b = data[y * 32 + x + 1];
                    acc += (a.r() as i64 - b.r() as i64).unsigned_abs();
                }
            }
            acc
        };
        assert!(tv(&after) < tv(before.as_slice()));
    }

    #[test]
    fn cost_model_matches_fig9b_shape() {
        let grid = TileGrid::square(64, 16).unwrap();
        let inner = grid.tile(1, 1);
        let border = grid.tile(0, 0);
        assert_eq!(tile_cost(inner, 64, 10), 256);
        assert_eq!(tile_cost(border, 64, 10), 2560);
    }

    #[test]
    fn ragged_tiles_handled() {
        // tile size not dividing dim: edge tiles clipped, still correct
        let seq = run("seq", 30, 8, 1);
        assert_eq!(run("omp_tiled_opt", 30, 8, 1), seq);
    }

    ezp_proptest! {
        #![cases(12)]

        fn prop_variants_agree(dim_pow in 3usize..6, tile in 4usize..16, iters in 1u32..4) {
            let dim = 1 << dim_pow; // 8..32
            let tile = tile.min(dim);
            let seq = run("seq", dim, tile, iters);
            assert_eq!(run("omp_tiled", dim, tile, iters), seq.clone());
            assert_eq!(run("omp_tiled_opt", dim, tile, iters), seq);
        }
    }
}
