//! The Pixelize kernel (paper §II-A): each tile is replaced by its
//! average color — a mosaic effect where the tile grid itself *is* the
//! visual output, making `--tile-size` effects directly visible.

use ezp_core::error::{Error, Result};
use ezp_core::{Img2D, Kernel, KernelCtx, Rgba, Tile};
use ezp_sched::{parallel_for_tiles_img, ImgCell};

/// Average color of `tile` in `img`.
pub fn tile_average(img: &Img2D<Rgba>, tile: Tile) -> Rgba {
    let (mut r, mut g, mut b, mut a) = (0u64, 0u64, 0u64, 0u64);
    for y in tile.y..tile.y + tile.h {
        for x in tile.x..tile.x + tile.w {
            let p = img.get(x, y);
            r += p.r() as u64;
            g += p.g() as u64;
            b += p.b() as u64;
            a += p.a() as u64;
        }
    }
    let n = tile.pixels() as u64;
    Rgba::new((r / n) as u8, (g / n) as u8, (b / n) as u8, (a / n) as u8)
}

fn pixelize_tile(src: &Img2D<Rgba>, w: &ezp_sched::TileWriter<'_, '_, Rgba>) {
    let t = w.tile();
    let avg = tile_average(src, t);
    for y in t.y..t.y + t.h {
        for x in t.x..t.x + t.w {
            w.set(x, y, avg);
        }
    }
}

/// The pixelize kernel.
#[derive(Default)]
pub struct Pixelize;

impl Kernel for Pixelize {
    fn name(&self) -> &'static str {
        "pixelize"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp_tiled"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        crate::shapes::test_card(ctx.images.cur_mut());
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let grid = ctx.grid;
        match variant {
            "seq" => {
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    {
                        let (src, dst) = ctx.images.rw();
                        let cell = ImgCell::new(dst);
                        for t in grid.iter() {
                            ctx.probe.start_tile(0);
                            pixelize_tile(src, &cell.tile_writer(t));
                            ctx.probe.end_tile(t.x, t.y, t.w, t.h, 0);
                        }
                    }
                    ctx.images.swap();
                    ctx.probe.iteration_end(it);
                }
            }
            "omp_tiled" => {
                let schedule = ctx.cfg.schedule;
                let mut pool = ezp_sched::acquire_pool(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    {
                        let (src, dst) = ctx.images.rw();
                        parallel_for_tiles_img(&mut pool, &grid, schedule, &*ctx.probe, dst, |w, _| {
                            pixelize_tile(src, w);
                        });
                    }
                    ctx.images.swap();
                    ctx.probe.iteration_end(it);
                }
            }
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "pixelize".into(),
                    variant: other.into(),
                })
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::{RunConfig, TileGrid};

    fn run(variant: &str, dim: usize, tile: usize) -> Vec<Rgba> {
        let mut ctx = KernelCtx::new(RunConfig::new("pixelize").size(dim).tile(tile).threads(3)).unwrap();
        let mut k = Pixelize;
        k.init(&mut ctx).unwrap();
        k.compute(&mut ctx, variant, 1).unwrap();
        ctx.images.cur().as_slice().to_vec()
    }

    #[test]
    fn tiles_become_uniform() {
        let dim = 32;
        let out = run("seq", dim, 8);
        let grid = TileGrid::square(dim, 8).unwrap();
        for t in grid.iter() {
            let first = out[t.y * dim + t.x];
            for y in t.y..t.y + t.h {
                for x in t.x..t.x + t.w {
                    assert_eq!(out[y * dim + x], first, "tile not uniform at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn average_is_exact_on_known_input() {
        let mut img = Img2D::square(4);
        img.fill(Rgba::new(10, 20, 30, 255));
        img.set(0, 0, Rgba::new(50, 20, 30, 255));
        let grid = TileGrid::square(4, 4).unwrap();
        let avg = tile_average(&img, grid.tile(0, 0));
        // r: (50 + 15*10)/16 = 12.5 -> 12
        assert_eq!(avg.r(), 12);
        assert_eq!(avg.g(), 20);
        assert_eq!(avg.a(), 255);
    }

    #[test]
    fn parallel_matches_seq_even_ragged() {
        assert_eq!(run("omp_tiled", 30, 8), run("seq", 30, 8));
        assert_eq!(run("omp_tiled", 32, 8), run("seq", 32, 8));
    }

    #[test]
    fn pixelize_is_idempotent() {
        let once = run("seq", 32, 8);
        let mut ctx = KernelCtx::new(RunConfig::new("pixelize").size(32).tile(8).threads(1)).unwrap();
        let mut k = Pixelize;
        k.init(&mut ctx).unwrap();
        k.compute(&mut ctx, "seq", 2).unwrap();
        assert_eq!(ctx.images.cur().as_slice(), once);
    }
}
