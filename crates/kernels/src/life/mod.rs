//! Conway's Game of Life (paper §III-D, Fig. 13).
//!
//! The capstone assignment: an efficient Game of Life over "large,
//! potentially sparse simulations", with
//!
//! * low-memory bit-packed state ([`bitboard::BitBoard`], 1 bit/cell);
//! * a **lazy** variant that "avoids computing tiles whose neighbourhood
//!   was in a steady state at the previous iteration" — skipped tiles
//!   produce no monitoring events, so the Tiling window shows exactly
//!   the active regions (the diagonals of Fig. 13);
//! * an **mpi_omp** variant: ranks own horizontal blocks, exchange ghost
//!   rows *and per-tile steadiness metadata* every iteration, and each
//!   rank steps its tiles with its own thread pool (MPI+OpenMP).
//!
//! All variants converge-detect: `compute` returns `Some(it)` once the
//! whole board is steady.

pub mod bitboard;

pub use bitboard::BitBoard;

use ezp_core::error::{Error, Result};
use ezp_core::kernel::Probe;
use ezp_core::{Kernel, KernelCtx, Rgba, TileGrid};
use ezp_monitor::{Monitor, MonitorReport};
use ezp_mpi::{collective, ghost, BlockRows, CommStats};
use ezp_sched::parallel_for_range_probed;
use ezp_testkit::Rng;
use std::sync::atomic::{AtomicBool, Ordering};

/// Color of live cells in the refreshed image.
const LIVE: Rgba = Rgba::YELLOW;

/// The Game-of-Life kernel.
pub struct Life {
    cur: BitBoard,
    next: BitBoard,
    /// Per-tile "changed during previous iteration" flags (lazy variant).
    changed: Vec<bool>,
    /// Per-rank monitoring reports of the last `mpi_omp` run — the data
    /// behind the per-process windows of `--debug M` (Fig. 13).
    pub last_mpi_reports: Vec<MonitorReport>,
    /// Per-rank communication counters of the last `mpi_omp` run
    /// (messages, bytes, collectives) — merged into `--stats` output.
    pub last_mpi_comm_stats: Vec<CommStats>,
}

impl Default for Life {
    fn default() -> Self {
        Life {
            cur: BitBoard::new(1, 1),
            next: BitBoard::new(1, 1),
            changed: Vec::new(),
            last_mpi_reports: Vec::new(),
            last_mpi_comm_stats: Vec::new(),
        }
    }
}

impl Life {
    /// Direct read access to the current board (tests, examples).
    pub fn board(&self) -> &BitBoard {
        &self.cur
    }

    /// Seeds the board according to the `--arg` pattern spec:
    /// `gliders[:spacing]` (default), `random[:density]`, `blinker`,
    /// `block`, `empty`.
    fn seed_pattern(&mut self, dim: usize, spec: &str, seed: u64) -> Result<()> {
        let (name, param) = match spec.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (spec, None),
        };
        match name {
            "gliders" => {
                let spacing = match param {
                    Some(p) => p
                        .parse()
                        .map_err(|_| Error::Config(format!("life: bad spacing `{p}`")))?,
                    None => (dim / 8).max(16),
                };
                for (x, y) in crate::shapes::diagonal_glider_positions(dim, spacing) {
                    crate::shapes::stamp_glider(|px, py| self.cur.set(px, py, true), x, y);
                }
            }
            "random" => {
                let density: f64 = match param {
                    Some(p) => p
                        .parse()
                        .map_err(|_| Error::Config(format!("life: bad density `{p}`")))?,
                    None => 0.25,
                };
                let mut rng = Rng::seed(seed);
                for y in 0..dim {
                    for x in 0..dim {
                        if rng.gen_bool(density.clamp(0.0, 1.0)) {
                            self.cur.set(x, y, true);
                        }
                    }
                }
            }
            "blinker" => {
                let c = dim / 2;
                for y in c.saturating_sub(1)..=(c + 1).min(dim - 1) {
                    self.cur.set(c, y, true);
                }
            }
            "block" => {
                let c = dim / 2;
                for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                    self.cur.set(c + dx, c + dy, true);
                }
            }
            "empty" => {}
            other => {
                return Err(Error::Config(format!("life: unknown pattern `{other}`")));
            }
        }
        Ok(())
    }

    /// Sequential whole-board stepping (bit-parallel words).
    fn compute_seq(&mut self, ctx: &mut KernelCtx, nb_iter: u32) -> Option<u32> {
        let dim = ctx.dim();
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            ctx.probe.start_tile(0);
            let changed = self.next.step_rows_from(&self.cur, 0, dim);
            ctx.probe.end_tile(0, 0, dim, dim, 0);
            std::mem::swap(&mut self.cur, &mut self.next);
            ctx.probe.iteration_end(it);
            if !changed {
                return Some(it);
            }
        }
        None
    }

    /// Row-band parallel stepping with the word-parallel (bit-sliced)
    /// rule: bands of `tile_size` rows are scheduled like 1D chunks —
    /// the `omp` (non-collapsed `parallel for`) variant, and the fastest
    /// eager path because each band advances 64 cells per instruction.
    fn compute_rows(&mut self, ctx: &mut KernelCtx, nb_iter: u32) -> Option<u32> {
        let dim = ctx.dim();
        let band = ctx.cfg.tile_size.max(1);
        let bands = dim.div_ceil(band);
        let schedule = ctx.cfg.schedule;
        let mut pool = ezp_sched::acquire_pool(ctx.threads());
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            let any_changed = AtomicBool::new(false);
            {
                let cur = &self.cur;
                let next = &self.next;
                let probe = &*ctx.probe;
                parallel_for_range_probed(&mut pool, bands, schedule, probe, |b, rank| {
                    let y0 = b * band;
                    let y1 = (y0 + band).min(dim);
                    probe.start_tile(rank);
                    let c = next.step_rows_from(cur, y0, y1);
                    probe.end_tile(0, y0, dim, y1 - y0, rank);
                    if c {
                        any_changed.store(true, Ordering::Relaxed);
                    }
                });
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            ctx.probe.iteration_end(it);
            if !any_changed.load(Ordering::Relaxed) {
                return Some(it);
            }
        }
        None
    }

    /// Tile-parallel stepping; `lazy` skips tiles whose 3×3 tile
    /// neighbourhood was steady at the previous iteration.
    fn compute_tiled(&mut self, ctx: &mut KernelCtx, nb_iter: u32, lazy: bool) -> Option<u32> {
        let grid = ctx.grid;
        let schedule = ctx.cfg.schedule;
        let mut pool = ezp_sched::acquire_pool(ctx.threads());
        if self.changed.len() != grid.len() {
            self.changed = vec![true; grid.len()];
        }
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            let changed_now: Vec<AtomicBool> =
                (0..grid.len()).map(|_| AtomicBool::new(false)).collect();
            let any_changed = AtomicBool::new(false);
            {
                let cur = &self.cur;
                let next = &self.next;
                let prev_changed = &self.changed;
                let probe = &*ctx.probe;
                parallel_for_range_probed(&mut pool, grid.len(), schedule, probe, |i, rank| {
                    let tile = grid.tile_at(i);
                    if lazy && !neighbourhood_changed(&grid, prev_changed, tile.tx, tile.ty) {
                        return; // steady neighbourhood: skip, no events
                    }
                    probe.start_tile(rank);
                    let c = next.step_tile_from(cur, tile);
                    probe.end_tile(tile.x, tile.y, tile.w, tile.h, rank);
                    if c {
                        changed_now[i].store(true, Ordering::Relaxed);
                        any_changed.store(true, Ordering::Relaxed);
                    }
                });
            }
            // lazily skipped tiles keep their (steady) content valid in
            // both buffers by the induction argument in DESIGN.md
            std::mem::swap(&mut self.cur, &mut self.next);
            self.changed = changed_now
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            ctx.probe.iteration_end(it);
            if !any_changed.load(Ordering::Relaxed) {
                return Some(it);
            }
        }
        None
    }

    /// The MPI+OpenMP variant (Fig. 13): row-block decomposition, ghost
    /// rows + per-boundary-tile steadiness metadata, lazy tile stepping
    /// inside each rank, per-rank monitors.
    fn compute_mpi(&mut self, ctx: &mut KernelCtx, nb_iter: u32) -> Result<Option<u32>> {
        let dim = ctx.dim();
        let np = ctx.cfg.mpi_ranks;
        let threads = ctx.threads();
        let grid = ctx.grid;
        // ship each rank its initial rows
        let init_rows: Vec<Vec<u64>> = (0..dim).map(|y| self.cur.row_words(y)).collect();
        let init_rows = &init_rows;

        struct RankResult {
            first_row: usize,
            rows: Vec<Vec<u64>>,
            report: MonitorReport,
            converged_at: Option<u32>,
        }

        let probe = &*ctx.probe;
        let (results, comm_stats) = ezp_mpi::run_with_stats(np, |comm| -> Result<RankResult> {
            let block = BlockRows::new(comm, dim);
            let (r0, r1) = block.my_range();
            // full-size local board, only rows [r0-1, r1] materialized
            let cur = BitBoard::new(dim, dim);
            let next = BitBoard::new(dim, dim);
            for (y, row) in init_rows.iter().enumerate().take(r1).skip(r0) {
                cur.set_row_words(y, row);
            }
            let monitor = Monitor::new(threads.max(1), grid);
            let mut pool = ezp_sched::acquire_pool(threads.max(1));
            // tiles whose row range intersects this rank's block
            let my_tiles: Vec<usize> = (0..grid.len())
                .filter(|&i| {
                    let t = grid.tile_at(i);
                    t.y < r1 && t.y + t.h > r0
                })
                .collect();
            let mut changed: Vec<bool> = vec![true; grid.len()];
            let mut converged_at = None;
            const TAG_META_UP: u32 = 100;
            const TAG_META_DOWN: u32 = 101;

            for it in 1..=nb_iter {
                monitor.iteration_start(it);
                // 1) ghost rows: my first/last rows to my neighbours
                let first = cur.row_words(r0);
                let last = cur.row_words(r1 - 1);
                let (above, below) = ghost::exchange_rows(comm, &block, &first, &last)?;
                if let Some(above) = above {
                    cur.set_row_words(r0 - 1, &above);
                }
                if let Some(below) = below {
                    cur.set_row_words(r1, &below);
                }
                // 2) tile-state metadata: the changed flags of my boundary
                // tile rows, so neighbours can stay lazy across the seam
                let boundary_flags = |ty: usize| -> Vec<bool> {
                    (0..grid.tiles_x()).map(|tx| changed[grid.linear_index(tx, ty)]).collect()
                };
                let ty_first = (r0 / grid.tile_h()).min(grid.tiles_y() - 1);
                let ty_last = ((r1 - 1) / grid.tile_h()).min(grid.tiles_y() - 1);
                if let Some(up) = block.up_neighbor() {
                    comm.send(up, TAG_META_UP, &(ty_first, boundary_flags(ty_first)))?;
                }
                if let Some(down) = block.down_neighbor() {
                    comm.send(down, TAG_META_DOWN, &(ty_last, boundary_flags(ty_last)))?;
                }
                // OR (never overwrite) the received flags into ours: when
                // a tile row straddles the block boundary both ranks hold
                // partial knowledge and the union is the safe answer
                if let Some(up) = block.up_neighbor() {
                    let (ty, flags): (usize, Vec<bool>) = comm.recv(up, TAG_META_DOWN)?;
                    for (tx, f) in flags.iter().enumerate() {
                        if *f {
                            changed[grid.linear_index(tx, ty)] = true;
                        }
                    }
                }
                if let Some(down) = block.down_neighbor() {
                    let (ty, flags): (usize, Vec<bool>) = comm.recv(down, TAG_META_UP)?;
                    for (tx, f) in flags.iter().enumerate() {
                        if *f {
                            changed[grid.linear_index(tx, ty)] = true;
                        }
                    }
                }
                // 3) lazily step my tiles (clipped to my rows) in parallel
                let changed_now: Vec<AtomicBool> =
                    (0..grid.len()).map(|_| AtomicBool::new(false)).collect();
                {
                    let cur_ref = &cur;
                    let next_ref = &next;
                    let changed_ref = &changed;
                    let changed_now_ref = &changed_now;
                    let my_tiles_ref = &my_tiles;
                    let monitor_ref = &monitor;
                    parallel_for_range_probed(
                        &mut pool,
                        my_tiles_ref.len(),
                        ctx.cfg.schedule,
                        probe,
                        |k, rank| {
                            let i = my_tiles_ref[k];
                            let mut tile = grid.tile_at(i);
                            if !neighbourhood_changed(&grid, changed_ref, tile.tx, tile.ty) {
                                return;
                            }
                            // clip the tile to this rank's rows
                            let y0 = tile.y.max(r0);
                            let y1 = (tile.y + tile.h).min(r1);
                            tile.y = y0;
                            tile.h = y1 - y0;
                            monitor_ref.start_tile(rank);
                            let c = next_ref.step_tile_from(cur_ref, tile);
                            monitor_ref.end_tile(tile.x, tile.y, tile.w, tile.h, rank);
                            if c {
                                changed_now_ref[i].store(true, Ordering::Relaxed);
                            }
                        },
                    );
                }
                // carry ghost rows into `next` so the swap keeps them
                // usable as stale-but-steady data (they are refreshed at
                // the top of every iteration anyway)
                if r0 > 0 {
                    next.set_row_words(r0 - 1, &cur.row_words(r0 - 1));
                }
                if r1 < dim {
                    next.set_row_words(r1, &cur.row_words(r1));
                }
                // swap local boards (both are plain locals here)
                for y in r0.saturating_sub(1)..(r1 + 1).min(dim) {
                    let tmp = cur.row_words(y);
                    cur.set_row_words(y, &next.row_words(y));
                    next.set_row_words(y, &tmp);
                }
                for (i, c) in changed_now.iter().enumerate() {
                    changed[i] = c.load(Ordering::Relaxed);
                }
                monitor.iteration_end(it);
                // 4) global steadiness vote
                let locally_steady = my_tiles.iter().all(|&i| !changed[i]);
                let all_steady = collective::allreduce_and(comm, locally_steady)?;
                if all_steady {
                    converged_at = Some(it);
                    break;
                }
            }
            Ok(RankResult {
                first_row: r0,
                rows: (r0..r1).map(|y| cur.row_words(y)).collect(),
                report: monitor.report(),
                converged_at,
            })
        })?;

        // rebuild the global board and stash the per-rank reports
        self.last_mpi_reports.clear();
        self.last_mpi_comm_stats = comm_stats;
        let mut converged = Some(0u32);
        for r in results {
            for (dy, row) in r.rows.iter().enumerate() {
                self.cur.set_row_words(r.first_row + dy, row);
            }
            converged = match (converged, r.converged_at) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
            self.last_mpi_reports.push(r.report);
        }
        Ok(converged.filter(|&it| it > 0))
    }
}

/// True when tile `(tx, ty)` or any of its 8 neighbours changed.
fn neighbourhood_changed(grid: &TileGrid, changed: &[bool], tx: usize, ty: usize) -> bool {
    for dy in -1isize..=1 {
        for dx in -1isize..=1 {
            let nx = tx as isize + dx;
            let ny = ty as isize + dy;
            if nx < 0 || ny < 0 || nx as usize >= grid.tiles_x() || ny as usize >= grid.tiles_y() {
                continue;
            }
            if changed[grid.linear_index(nx as usize, ny as usize)] {
                return true;
            }
        }
    }
    false
}

impl Kernel for Life {
    fn name(&self) -> &'static str {
        "life"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp", "omp_tiled", "lazy", "mpi_omp"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        let dim = ctx.dim();
        self.cur = BitBoard::new(dim, dim);
        self.next = BitBoard::new(dim, dim);
        self.changed = vec![true; ctx.grid.len()];
        let spec = ctx.cfg.kernel_arg.clone().unwrap_or_else(|| "gliders".to_string());
        self.seed_pattern(dim, &spec, ctx.cfg.seed)?;
        self.refresh_image(ctx)
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let converged = match variant {
            "seq" => self.compute_seq(ctx, nb_iter),
            "omp" => self.compute_rows(ctx, nb_iter),
            "omp_tiled" => self.compute_tiled(ctx, nb_iter, false),
            "lazy" => self.compute_tiled(ctx, nb_iter, true),
            "mpi_omp" => self.compute_mpi(ctx, nb_iter)?,
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "life".into(),
                    variant: other.into(),
                })
            }
        };
        Ok(converged)
    }

    fn refresh_image(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        self.cur.paint(ctx.images.cur_mut(), LIVE);
        Ok(())
    }

    fn stats_counters(&self) -> Vec<(String, Vec<u64>)> {
        if self.last_mpi_comm_stats.is_empty() {
            return Vec::new();
        }
        let per_rank = |f: fn(&CommStats) -> u64| -> Vec<u64> {
            self.last_mpi_comm_stats.iter().map(f).collect()
        };
        vec![
            ("mpi_msgs_sent".into(), per_rank(|s| s.msgs_sent)),
            ("mpi_bytes_sent".into(), per_rank(|s| s.bytes_sent)),
            ("mpi_msgs_received".into(), per_rank(|s| s.msgs_received)),
            ("mpi_bytes_received".into(), per_rank(|s| s.bytes_received)),
            ("mpi_barriers".into(), per_rank(|s| s.barriers)),
            ("mpi_broadcasts".into(), per_rank(|s| s.broadcasts)),
            ("mpi_gathers".into(), per_rank(|s| s.gathers)),
            ("mpi_scatters".into(), per_rank(|s| s.scatters)),
            ("mpi_reduces".into(), per_rank(|s| s.reduces)),
            ("mpi_alltoalls".into(), per_rank(|s| s.alltoalls)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::{RunConfig, Schedule};

    fn make_ctx(dim: usize, tile: usize, pattern: &str, threads: usize, ranks: usize) -> KernelCtx {
        let mut cfg = RunConfig::new("life")
            .size(dim)
            .tile(tile)
            .threads(threads)
            .schedule(Schedule::Dynamic(1));
        cfg.kernel_arg = Some(pattern.to_string());
        cfg.mpi_ranks = ranks;
        KernelCtx::new(cfg).unwrap()
    }

    fn run_variant(variant: &str, dim: usize, tile: usize, pattern: &str, iters: u32) -> (Life, Option<u32>) {
        let ranks = if variant == "mpi_omp" { 2 } else { 1 };
        let mut k = Life::default();
        let mut c = make_ctx(dim, tile, pattern, 2, ranks);
        k.init(&mut c).unwrap();
        let conv = k.compute(&mut c, variant, iters).unwrap();
        (k, conv)
    }

    /// Pins the PRNG-dependent `random` seeding: with the default seed
    /// (42), the first 16 live cells in row-major order must stay exactly
    /// here. If this test fails, the in-repo PRNG (or the seeding loop)
    /// changed and every recorded "random" run stops being reproducible.
    #[test]
    fn random_seeding_first_cells_are_pinned() {
        let mut k = Life::default();
        let mut c = make_ctx(64, 16, "random:0.3", 1, 1);
        k.init(&mut c).unwrap();
        let mut first = Vec::new();
        'scan: for y in 0..64 {
            for x in 0..64 {
                if k.board().get(x, y) {
                    first.push((x, y));
                    if first.len() == 16 {
                        break 'scan;
                    }
                }
            }
        }
        let expected = vec![
            (6, 0),
            (8, 0),
            (13, 0),
            (16, 0),
            (17, 0),
            (20, 0),
            (25, 0),
            (30, 0),
            (33, 0),
            (41, 0),
            (44, 0),
            (49, 0),
            (55, 0),
            (57, 0),
            (59, 0),
            (4, 1),
        ];
        assert_eq!(first, expected);
    }

    #[test]
    fn all_variants_agree_on_random_board() {
        let (seq, _) = run_variant("seq", 64, 16, "random:0.3", 6);
        for v in ["omp", "omp_tiled", "lazy", "mpi_omp"] {
            let (k, _) = run_variant(v, 64, 16, "random:0.3", 6);
            assert_eq!(k.board(), seq.board(), "variant {v} diverged from seq");
        }
    }

    #[test]
    fn glider_crosses_tile_and_rank_boundaries() {
        let (seq, _) = run_variant("seq", 48, 16, "gliders:16", 30);
        for v in ["lazy", "mpi_omp"] {
            let (k, _) = run_variant(v, 48, 16, "gliders:16", 30);
            assert_eq!(k.board(), seq.board(), "variant {v} broke the glider");
        }
    }

    #[test]
    fn still_life_converges_immediately() {
        for v in ["seq", "omp", "omp_tiled", "lazy", "mpi_omp"] {
            let (_, conv) = run_variant(v, 32, 8, "block", 10);
            assert_eq!(conv, Some(1), "variant {v} missed the still life");
        }
    }

    #[test]
    fn blinker_never_converges() {
        for v in ["seq", "lazy", "mpi_omp"] {
            let (_, conv) = run_variant(v, 16, 8, "blinker", 7);
            assert_eq!(conv, None, "variant {v} wrongly detected convergence");
        }
    }

    #[test]
    fn empty_board_converges_at_once() {
        let (k, conv) = run_variant("lazy", 32, 8, "empty", 5);
        assert_eq!(conv, Some(1));
        assert_eq!(k.board().live_count(), 0);
    }

    #[test]
    fn lazy_skips_steady_tiles() {
        // a block in one corner: after iteration 2, everything is steady;
        // until then only the corner neighbourhood is computed.
        let mut k = Life::default();
        let mut c = make_ctx(64, 16, "block", 2, 1);
        let monitor = std::sync::Arc::new(Monitor::new(2, c.grid));
        c = c.with_probe(monitor.clone());
        k.init(&mut c).unwrap();
        let conv = k.compute(&mut c, "lazy", 10).unwrap();
        assert_eq!(conv, Some(1));
        let report = monitor.report();
        // iteration 1 computed all 16 tiles (all flags start true)
        assert_eq!(report.tiling_snapshot(1).computed_tiles(), 16);
    }

    #[test]
    fn lazy_computes_only_active_neighbourhood_after_warmup() {
        // glider in the top-left: after warm-up, far-away tiles are skipped
        let mut k = Life::default();
        let mut c = make_ctx(96, 16, "empty", 2, 1);
        k.init(&mut c).unwrap();
        crate::shapes::stamp_glider(|x, y| k.cur.set(x, y, true), 4, 4);
        let monitor = std::sync::Arc::new(Monitor::new(2, c.grid));
        c = c.with_probe(monitor.clone());
        k.compute(&mut c, "lazy", 4).unwrap();
        let report = monitor.report();
        let computed: Vec<usize> = (2..=4)
            .map(|it| report.tiling_snapshot(it).computed_tiles())
            .collect();
        // 6x6 = 36 tiles; the active neighbourhood is at most 3x3 = 9
        for (i, &n) in computed.iter().enumerate() {
            assert!(n <= 9, "iteration {}: {} tiles computed, expected <= 9", i + 2, n);
            assert!(n > 0, "glider must keep some tiles active");
        }
    }

    #[test]
    fn mpi_reports_show_row_block_split() {
        let (k, _) = run_variant("mpi_omp", 64, 16, "random:0.3", 3);
        assert_eq!(k.last_mpi_reports.len(), 2);
        // rank 0 only touched tiles in the top half, rank 1 bottom half
        let top = k.last_mpi_reports[0].tiling_snapshot(1);
        let bottom = k.last_mpi_reports[1].tiling_snapshot(1);
        assert!(top.computed_tiles() > 0);
        assert!(bottom.computed_tiles() > 0);
        let grid = ezp_core::TileGrid::square(64, 16).unwrap();
        for ty in 0..grid.tiles_y() {
            for tx in 0..grid.tiles_x() {
                if ty < 2 {
                    assert!(bottom.owner(tx, ty).is_none(), "rank 1 computed a top tile");
                } else {
                    assert!(top.owner(tx, ty).is_none(), "rank 0 computed a bottom tile");
                }
            }
        }
    }

    #[test]
    fn diagonal_gliders_keep_activity_near_diagonals() {
        // the Fig. 13 check: with the sparse diagonal dataset, computed
        // tiles stay near the diagonals
        let (k, _) = run_variant("mpi_omp", 128, 16, "gliders:32", 3);
        let grid = ezp_core::TileGrid::square(128, 16).unwrap();
        let mut computed = 0;
        let mut near_diag = 0;
        for report in &k.last_mpi_reports {
            let snap = report.tiling_snapshot(3);
            for t in grid.iter() {
                if snap.owner(t.tx, t.ty).is_some() {
                    computed += 1;
                    let on_main = (t.tx as i64 - t.ty as i64).abs() <= 1;
                    let on_anti = (t.tx as i64 + t.ty as i64 - grid.tiles_x() as i64 + 1).abs() <= 2;
                    if on_main || on_anti {
                        near_diag += 1;
                    }
                }
            }
        }
        assert!(computed > 0);
        assert!(
            near_diag * 10 >= computed * 8,
            "only {near_diag}/{computed} computed tiles near diagonals"
        );
    }

    #[test]
    fn bad_patterns_are_rejected() {
        let mut k = Life::default();
        let mut c = make_ctx(16, 8, "warp-drive", 1, 1);
        assert!(k.init(&mut c).is_err());
        let mut c2 = make_ctx(16, 8, "random:notanumber", 1, 1);
        assert!(k.init(&mut c2).is_err());
    }

    #[test]
    fn refresh_image_paints_live_cells() {
        let mut k = Life::default();
        let mut c = make_ctx(16, 8, "block", 1, 1);
        k.init(&mut c).unwrap();
        let img = c.images.cur();
        assert_eq!(img.get(8, 8), LIVE);
        assert_eq!(img.get(0, 0), Rgba::TRANSPARENT);
        assert!(img.occupancy() > 0.0);
    }
}
