//! Bit-packed Game-of-Life boards.
//!
//! The paper asks students to use "their own, low memory footprint data
//! structures for computations" (§III-D). This board stores one cell per
//! bit (64× smaller than a pixel board) and steps whole 64-cell words at
//! a time with a bit-sliced neighbour counter — the carry-save adder
//! trick — while a per-cell path handles arbitrary tile rectangles. The
//! two paths are property-tested against each other.
//!
//! Words are `AtomicU64` so that tile-parallel variants can write
//! *disjoint column masks* of a shared word concurrently (the only
//! contended case is a tile boundary crossing a word); all accesses use
//! relaxed ordering — synchronization between iterations comes from the
//! scheduler's barriers, not from the board.

use ezp_core::{Img2D, Rgba, Tile};
use std::sync::atomic::{AtomicU64, Ordering};

/// A `width`×`height` one-bit-per-cell board. Cells outside the board
/// are permanently dead (no wrap-around).
pub struct BitBoard {
    width: usize,
    height: usize,
    words_per_row: usize,
    /// Cell storage. Tiles own disjoint rows within an iteration and
    /// cross-iteration ordering rides the scheduler's region barrier —
    /// synchronizing via the spine (via-the-spine), hence `Relaxed`.
    words: Vec<AtomicU64>,
}

impl Clone for BitBoard {
    fn clone(&self) -> Self {
        BitBoard {
            width: self.width,
            height: self.height,
            words_per_row: self.words_per_row,
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl std::fmt::Debug for BitBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitBoard({}x{}, {} live)", self.width, self.height, self.live_count())
    }
}

impl PartialEq for BitBoard {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width
            && self.height == other.height
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(a, b)| a.load(Ordering::Relaxed) == b.load(Ordering::Relaxed))
    }
}

impl BitBoard {
    /// An empty `width`×`height` board.
    pub fn new(width: usize, height: usize) -> Self {
        let words_per_row = width.div_ceil(64).max(1);
        BitBoard {
            width,
            height,
            words_per_row,
            words: (0..words_per_row * height.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// An empty square board — the EASYPAP default shape.
    pub fn square(dim: usize) -> Self {
        Self::new(dim, dim)
    }

    /// Board width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Board height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Words per row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    #[inline]
    fn idx(&self, y: usize, wx: usize) -> usize {
        y * self.words_per_row + wx
    }

    /// Mask of valid column bits for word `wx`.
    #[inline]
    fn col_mask(&self, wx: usize) -> u64 {
        let lo = wx * 64;
        if lo + 64 <= self.width {
            u64::MAX
        } else if lo >= self.width {
            0
        } else {
            (1u64 << (self.width - lo)) - 1
        }
    }

    /// Reads cell `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        debug_assert!(x < self.width && y < self.height);
        let w = self.words[self.idx(y, x / 64)].load(Ordering::Relaxed);
        (w >> (x % 64)) & 1 == 1
    }

    /// Like [`BitBoard::get`] but dead outside the board.
    #[inline]
    pub fn get_or_dead(&self, x: isize, y: isize) -> bool {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            false
        } else {
            self.get(x as usize, y as usize)
        }
    }

    /// Writes cell `(x, y)` (atomic RMW: safe for disjoint bits).
    #[inline]
    pub fn set(&self, x: usize, y: usize, alive: bool) {
        debug_assert!(x < self.width && y < self.height);
        let bit = 1u64 << (x % 64);
        let w = &self.words[self.idx(y, x / 64)];
        if alive {
            w.fetch_or(bit, Ordering::Relaxed);
        } else {
            w.fetch_and(!bit, Ordering::Relaxed);
        }
    }

    /// Reads the raw word `(row y, word wx)` (0 when out of range — the
    /// dead border).
    #[inline]
    pub fn word_or_zero(&self, y: isize, wx: isize) -> u64 {
        if y < 0 || wx < 0 || y as usize >= self.height || wx as usize >= self.words_per_row {
            0
        } else {
            self.words[self.idx(y as usize, wx as usize)].load(Ordering::Relaxed)
        }
    }

    /// Overwrites the masked bits of word `(y, wx)` with `bits` (only
    /// bits under `mask` are affected). Two RMWs; safe when no other
    /// thread touches the same mask bits.
    #[inline]
    pub fn store_masked(&self, y: usize, wx: usize, mask: u64, bits: u64) {
        let w = &self.words[self.idx(y, wx)];
        w.fetch_and(!mask, Ordering::Relaxed);
        w.fetch_or(bits & mask, Ordering::Relaxed);
    }

    /// Full-word store (row stepping owns whole rows).
    #[inline]
    pub fn store_word(&self, y: usize, wx: usize, bits: u64) {
        self.words[self.idx(y, wx)].store(bits & self.col_mask(wx), Ordering::Relaxed);
    }

    /// Number of live cells.
    pub fn live_count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Clears the board.
    pub fn clear(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Copies the full contents of `src` (same geometry required).
    pub fn copy_from(&self, src: &BitBoard) {
        assert_eq!((self.width, self.height), (src.width, src.height), "geometry mismatch");
        for (d, s) in self.words.iter().zip(&src.words) {
            d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Extracts row `y` as words (for MPI ghost exchange).
    pub fn row_words(&self, y: usize) -> Vec<u64> {
        (0..self.words_per_row)
            .map(|wx| self.words[self.idx(y, wx)].load(Ordering::Relaxed))
            .collect()
    }

    /// Overwrites row `y` from words.
    pub fn set_row_words(&self, y: usize, words: &[u64]) {
        assert_eq!(words.len(), self.words_per_row, "row width mismatch");
        for (wx, &w) in words.iter().enumerate() {
            self.store_word(y, wx, w);
        }
    }

    /// Paints the board into an RGBA image (live = `live_color`,
    /// dead = transparent) — the "update the current image when a
    /// graphical refresh is needed" hook.
    pub fn paint(&self, img: &mut Img2D<Rgba>, live_color: Rgba) {
        assert!(img.width() >= self.width && img.height() >= self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                img.set(x, y, if self.get(x, y) { live_color } else { Rgba::TRANSPARENT });
            }
        }
    }

    /// Steps rows `[y0, y1)` of `src` into `self` using the bit-sliced
    /// word-parallel rule; returns true when any cell changed. All
    /// columns are computed (whole rows).
    pub fn step_rows_from(&self, src: &BitBoard, y0: usize, y1: usize) -> bool {
        debug_assert_eq!((self.width, self.height), (src.width, src.height));
        let mut changed = false;
        for y in y0..y1.min(self.height) {
            for wx in 0..self.words_per_row {
                let new = step_word(src, y, wx) & self.col_mask(wx);
                let old = src.word_or_zero(y as isize, wx as isize);
                if new != old {
                    changed = true;
                }
                self.store_word(y, wx, new);
            }
        }
        changed
    }

    /// Steps the cells of `tile` from `src` into `self` (per-cell rule),
    /// returning true when any cell changed. Uses masked word stores, so
    /// concurrent calls on disjoint tiles are safe.
    pub fn step_tile_from(&self, src: &BitBoard, tile: Tile) -> bool {
        debug_assert_eq!((self.width, self.height), (src.width, src.height));
        let mut changed = false;
        for y in tile.y..(tile.y + tile.h).min(self.height) {
            let mut wx = tile.x / 64;
            let mut mask = 0u64;
            let mut bits = 0u64;
            for x in tile.x..(tile.x + tile.w).min(self.width) {
                if x / 64 != wx {
                    self.store_masked(y, wx, mask, bits);
                    wx = x / 64;
                    mask = 0;
                    bits = 0;
                }
                let mut neighbours = 0u8;
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        if (dx != 0 || dy != 0)
                            && src.get_or_dead(x as isize + dx, y as isize + dy)
                        {
                            neighbours += 1;
                        }
                    }
                }
                let cur = src.get(x, y);
                let alive = neighbours == 3 || (cur && neighbours == 2);
                let bit = 1u64 << (x % 64);
                mask |= bit;
                if alive {
                    bits |= bit;
                }
                if alive != cur {
                    changed = true;
                }
            }
            self.store_masked(y, wx, mask, bits);
        }
        changed
    }
}

/// Computes the next generation of word `(y, wx)` with the bit-sliced
/// carry-save neighbour counter (8 neighbour bitmaps summed in 4 bit
/// planes, ~40 logic ops for 64 cells).
#[inline]
fn step_word(src: &BitBoard, y: usize, wx: usize) -> u64 {
    let y = y as isize;
    let wx = wx as isize;
    // the three rows, with horizontal-shift neighbours (cross-word carry)
    let row = |dy: isize| -> (u64, u64, u64) {
        let c = src.word_or_zero(y + dy, wx);
        let prev = src.word_or_zero(y + dy, wx - 1);
        let next = src.word_or_zero(y + dy, wx + 1);
        let left = (c << 1) | (prev >> 63); // bit j = cell at column j-1
        let right = (c >> 1) | (next << 63); // bit j = cell at column j+1
        (left, c, right)
    };
    let (al, ac, ar) = row(-1);
    let (bl, b, br) = row(0);
    let (cl, cc, cr) = row(1);

    // carry-save accumulation of the 8 neighbour bitmaps
    let mut ones = 0u64;
    let mut twos = 0u64;
    let mut fours = 0u64;
    let mut add = |x: u64| {
        let c1 = ones & x;
        ones ^= x;
        let c2 = twos & c1;
        twos ^= c1;
        fours |= c2; // counts >= 8 impossible to matter: saturate at 4+
    };
    add(al);
    add(ac);
    add(ar);
    add(bl);
    add(br);
    add(cl);
    add(cc);
    add(cr);

    // exactly 3 = ones & twos & !fours ; exactly 2 = !ones & twos & !fours
    let three = ones & twos & !fours;
    let two = !ones & twos & !fours;
    three | (b & two)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::TileGrid;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::any_u64;
    use ezp_testkit::Rng;

    fn random_board(dim: usize, density: f64, seed: u64) -> BitBoard {
        let b = BitBoard::square(dim);
        let mut rng = Rng::seed(seed);
        for y in 0..dim {
            for x in 0..dim {
                if rng.gen_bool(density) {
                    b.set(x, y, true);
                }
            }
        }
        b
    }

    /// Reference implementation: textbook per-cell rule.
    fn reference_step(src: &BitBoard) -> BitBoard {
        let dim = src.width();
        let out = BitBoard::square(dim);
        for y in 0..dim {
            for x in 0..dim {
                let mut n = 0;
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        if (dx != 0 || dy != 0) && src.get_or_dead(x as isize + dx, y as isize + dy)
                        {
                            n += 1;
                        }
                    }
                }
                out.set(x, y, n == 3 || (src.get(x, y) && n == 2));
            }
        }
        out
    }

    #[test]
    fn get_set_round_trip() {
        let b = BitBoard::square(100);
        b.set(63, 0, true);
        b.set(64, 0, true);
        b.set(99, 99, true);
        assert!(b.get(63, 0) && b.get(64, 0) && b.get(99, 99));
        assert!(!b.get(0, 0));
        b.set(64, 0, false);
        assert!(!b.get(64, 0));
        assert_eq!(b.live_count(), 2);
        assert!(!b.get_or_dead(-1, 0));
        assert!(!b.get_or_dead(100, 5));
    }

    #[test]
    fn blinker_oscillates() {
        // vertical blinker at (5, 4..6) becomes horizontal (4..6, 5)
        let b = random_board(10, 0.0, 0);
        for y in 4..7 {
            b.set(5, y, true);
        }
        let next = BitBoard::square(10);
        next.step_rows_from(&b, 0, 10);
        assert_eq!(next.live_count(), 3);
        for x in 4..7 {
            assert!(next.get(x, 5), "expected horizontal blinker");
        }
        let back = BitBoard::square(10);
        back.step_rows_from(&next, 0, 10);
        assert_eq!(back, b, "blinker must have period 2");
    }

    #[test]
    fn block_is_still_life() {
        let b = BitBoard::square(8);
        for (x, y) in [(3, 3), (4, 3), (3, 4), (4, 4)] {
            b.set(x, y, true);
        }
        let next = BitBoard::square(8);
        let changed = next.step_rows_from(&b, 0, 8);
        assert!(!changed, "a block is a still life");
        assert_eq!(next, b);
    }

    #[test]
    fn glider_moves_down_right() {
        let b = BitBoard::square(16);
        crate::shapes::stamp_glider(|x, y| b.set(x, y, true), 2, 2);
        let mut cur = b.clone();
        for _ in 0..4 {
            let next = BitBoard::square(16);
            next.step_rows_from(&cur, 0, 16);
            cur = next;
        }
        // after 4 generations a glider translates by (1, 1)
        let expected = BitBoard::square(16);
        crate::shapes::stamp_glider(|x, y| expected.set(x, y, true), 3, 3);
        assert_eq!(cur, expected);
    }

    #[test]
    fn word_and_cell_paths_agree_across_word_boundaries() {
        // 130 columns -> 3 words, exercises both cross-word shifts
        let src = random_board(130, 0.35, 42);
        let by_words = BitBoard::square(130);
        by_words.step_rows_from(&src, 0, 130);
        let by_cells = BitBoard::square(130);
        let grid = TileGrid::square(130, 33).unwrap(); // deliberately unaligned tiles
        for t in grid.iter() {
            by_cells.step_tile_from(&src, t);
        }
        assert_eq!(by_words, by_cells);
        assert_eq!(by_words, reference_step(&src));
    }

    #[test]
    fn changed_flags_are_accurate() {
        let still = BitBoard::square(8);
        for (x, y) in [(3, 3), (4, 3), (3, 4), (4, 4)] {
            still.set(x, y, true);
        }
        let dst = BitBoard::square(8);
        assert!(!dst.step_rows_from(&still, 0, 8));
        let blinker = BitBoard::square(8);
        for y in 2..5 {
            blinker.set(4, y, true);
        }
        let dst2 = BitBoard::square(8);
        assert!(dst2.step_rows_from(&blinker, 0, 8));
        // tile path agrees
        let grid = TileGrid::square(8, 4).unwrap();
        let dst3 = BitBoard::square(8);
        let mut any = false;
        for t in grid.iter() {
            any |= dst3.step_tile_from(&still, t);
        }
        assert!(!any);
    }

    #[test]
    fn concurrent_tile_steps_are_race_free() {
        let src = random_board(128, 0.3, 7);
        let seq = BitBoard::square(128);
        seq.step_rows_from(&src, 0, 128);
        let par = BitBoard::square(128);
        let grid = TileGrid::square(128, 24).unwrap(); // unaligned -> shared words
        std::thread::scope(|s| {
            for t in grid.iter() {
                let src = &src;
                let par = &par;
                s.spawn(move || {
                    par.step_tile_from(src, t);
                });
            }
        });
        assert_eq!(par, seq);
    }

    #[test]
    fn row_words_round_trip() {
        let b = random_board(70, 0.5, 3);
        let row = b.row_words(10);
        assert_eq!(row.len(), 2);
        let c = BitBoard::square(70);
        c.set_row_words(10, &row);
        for x in 0..70 {
            assert_eq!(c.get(x, 10), b.get(x, 10));
        }
    }

    #[test]
    fn paint_marks_live_cells() {
        let b = BitBoard::square(4);
        b.set(1, 2, true);
        let mut img = Img2D::square(4);
        b.paint(&mut img, Rgba::YELLOW);
        assert_eq!(img.get(1, 2), Rgba::YELLOW);
        assert_eq!(img.get(0, 0), Rgba::TRANSPARENT);
    }

    #[test]
    fn edge_cells_have_dead_outside() {
        // a full 3x3 board: center survives? center has 8 neighbours ->
        // dies (overpopulation); corners have 3 -> live
        let b = BitBoard::square(3);
        for y in 0..3 {
            for x in 0..3 {
                b.set(x, y, true);
            }
        }
        let next = BitBoard::square(3);
        next.step_rows_from(&b, 0, 3);
        assert!(next.get(0, 0) && next.get(2, 0) && next.get(0, 2) && next.get(2, 2));
        assert!(!next.get(1, 1));
    }

    ezp_proptest! {
        #![cases(24)]

        fn prop_word_path_equals_reference(
            dim in 3usize..80,
            density in 0.05f64..0.6,
            seed in any_u64(),
        ) {
            let src = random_board(dim, density, seed);
            let fast = BitBoard::square(dim);
            fast.step_rows_from(&src, 0, dim);
            assert_eq!(&fast, &reference_step(&src));
        }

        fn prop_tile_path_equals_reference(
            dim in 3usize..70,
            tile in 1usize..40,
            density in 0.05f64..0.6,
            seed in any_u64(),
        ) {
            let tile = tile.min(dim);
            let src = random_board(dim, density, seed);
            let out = BitBoard::square(dim);
            let grid = TileGrid::square(dim, tile).unwrap();
            for t in grid.iter() {
                out.step_tile_from(&src, t);
            }
            assert_eq!(&out, &reference_step(&src));
        }
    }
}
