//! A 2D heat-diffusion kernel — the "simulations involving Stencil
//! computations" students are "quickly exposed to" (§III-B).
//!
//! Explicit Jacobi step over a double-buffered `f32` temperature field:
//! `T'(x,y) = T + k * (T_left + T_right + T_up + T_down - 4 T)` with
//! insulated borders (missing neighbours contribute the center value,
//! i.e. zero flux). Converges to the uniform average; `compute` detects
//! the steady state like the other simulation kernels.

use ezp_core::color::heat_color;
use ezp_core::error::{Error, Result};
use ezp_core::{Img2D, Kernel, KernelCtx};
use ezp_sched::{parallel_for_tiles_img, ImgCell};
use std::sync::atomic::{AtomicBool, Ordering};

/// Diffusion coefficient (stability requires `k <= 0.25`).
const K: f32 = 0.2;

/// Steady-state threshold on the per-step maximum temperature change.
const EPSILON: f32 = 1e-4;

/// One Jacobi update of pixel `(x, y)` with insulated borders.
#[inline]
fn diffuse(cur: &Img2D<f32>, x: usize, y: usize) -> f32 {
    let c = cur.get(x, y);
    let left = if x > 0 { cur.get(x - 1, y) } else { c };
    let right = if x + 1 < cur.width() { cur.get(x + 1, y) } else { c };
    let up = if y > 0 { cur.get(x, y - 1) } else { c };
    let down = if y + 1 < cur.height() { cur.get(x, y + 1) } else { c };
    c + K * (left + right + up + down - 4.0 * c)
}

/// The heat kernel: double-buffered temperature fields in `[0, 1]`.
pub struct Heat {
    cur: Img2D<f32>,
    next: Img2D<f32>,
}

impl Default for Heat {
    fn default() -> Self {
        Heat {
            cur: Img2D::new(0, 0),
            next: Img2D::new(0, 0),
        }
    }
}

impl Heat {
    /// Read access to the temperature field.
    pub fn field(&self) -> &Img2D<f32> {
        &self.cur
    }

    /// Total thermal energy (sum of temperatures) — conserved by the
    /// insulated-border scheme, which the tests verify.
    pub fn energy(&self) -> f64 {
        self.cur.as_slice().iter().map(|&t| t as f64).sum()
    }

    fn step_tile(cur: &Img2D<f32>, w: &ezp_sched::TileWriter<'_, '_, f32>) -> bool {
        let t = w.tile();
        let mut changed = false;
        for y in t.y..t.y + t.h {
            for x in t.x..t.x + t.w {
                let v = diffuse(cur, x, y);
                if (v - cur.get(x, y)).abs() > EPSILON {
                    changed = true;
                }
                w.set(x, y, v);
            }
        }
        changed
    }
}

impl Kernel for Heat {
    fn name(&self) -> &'static str {
        "heat"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp_tiled"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        let dim = ctx.dim();
        self.cur = Img2D::new(dim, dim);
        self.next = Img2D::new(dim, dim);
        // hot discs in two corners; --arg sets the initial temperature
        let temp: f32 = match &ctx.cfg.kernel_arg {
            Some(a) => a
                .parse()
                .map_err(|_| Error::Config(format!("heat: bad temperature `{a}`")))?,
            None => 1.0,
        };
        let r = (dim / 6).max(1);
        for (cx, cy) in [(dim / 4, dim / 4), (3 * dim / 4, 3 * dim / 4)] {
            for y in cy.saturating_sub(r)..(cy + r).min(dim) {
                for x in cx.saturating_sub(r)..(cx + r).min(dim) {
                    let dx = x as i64 - cx as i64;
                    let dy = y as i64 - cy as i64;
                    if dx * dx + dy * dy <= (r * r) as i64 {
                        self.cur.set(x, y, temp);
                    }
                }
            }
        }
        self.refresh_image(ctx)
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let grid = ctx.grid;
        match variant {
            "seq" => {
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    let mut changed = false;
                    {
                        let cell = ImgCell::new(&mut self.next);
                        for t in grid.iter() {
                            ctx.probe.start_tile(0);
                            if Self::step_tile(&self.cur, &cell.tile_writer(t)) {
                                changed = true;
                            }
                            ctx.probe.end_tile(t.x, t.y, t.w, t.h, 0);
                        }
                    }
                    std::mem::swap(&mut self.cur, &mut self.next);
                    ctx.probe.iteration_end(it);
                    if !changed {
                        return Ok(Some(it));
                    }
                }
                Ok(None)
            }
            "omp_tiled" => {
                let schedule = ctx.cfg.schedule;
                let mut pool = ezp_sched::acquire_pool(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    let changed = AtomicBool::new(false);
                    {
                        let cur = &self.cur;
                        parallel_for_tiles_img(
                            &mut pool,
                            &grid,
                            schedule,
                            &*ctx.probe,
                            &mut self.next,
                            |w, _| {
                                if Self::step_tile(cur, w) {
                                    changed.store(true, Ordering::Relaxed);
                                }
                            },
                        );
                    }
                    std::mem::swap(&mut self.cur, &mut self.next);
                    ctx.probe.iteration_end(it);
                    if !changed.load(Ordering::Relaxed) {
                        return Ok(Some(it));
                    }
                }
                Ok(None)
            }
            other => Err(Error::UnknownKernel {
                kernel: "heat".into(),
                variant: other.into(),
            }),
        }
    }

    fn refresh_image(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        let img = ctx.images.cur_mut();
        for y in 0..img.height() {
            for x in 0..img.width() {
                img.set(x, y, heat_color(self.cur.get(x, y).clamp(0.0, 1.0)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::{RunConfig, Schedule};

    fn run(variant: &str, dim: usize, iters: u32) -> (Heat, Option<u32>) {
        let mut ctx = KernelCtx::new(
            RunConfig::new("heat")
                .size(dim)
                .tile(16)
                .threads(3)
                .schedule(Schedule::Dynamic(1)),
        )
        .unwrap();
        let mut k = Heat::default();
        k.init(&mut ctx).unwrap();
        let conv = k.compute(&mut ctx, variant, iters).unwrap();
        (k, conv)
    }

    #[test]
    fn energy_is_conserved() {
        let (k0, _) = run("seq", 48, 0);
        let e0 = k0.energy();
        let (k, _) = run("seq", 48, 50);
        assert!((k.energy() - e0).abs() / e0 < 1e-3, "{} vs {e0}", k.energy());
    }

    #[test]
    fn heat_spreads_outward() {
        let (k, _) = run("seq", 48, 30);
        // a point between the discs warms up from zero
        assert!(k.field().get(24, 24) > 0.0);
        // the disc centers cool down from 1.0
        assert!(k.field().get(12, 12) < 1.0);
        // temperatures stay physical
        assert!(k.field().as_slice().iter().all(|&t| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn parallel_matches_seq_bitwise() {
        let (a, ca) = run("seq", 48, 25);
        let (b, cb) = run("omp_tiled", 48, 25);
        assert_eq!(a.field().as_slice(), b.field().as_slice());
        assert_eq!(ca, cb);
    }

    #[test]
    fn converges_to_uniform_average() {
        let (k, conv) = run("seq", 16, 50_000);
        assert!(conv.is_some(), "diffusion must reach steady state");
        let field = k.field();
        let mean = k.energy() as f32 / (16 * 16) as f32;
        for &t in field.as_slice() {
            assert!((t - mean).abs() < 0.01, "{} vs mean {}", t, mean);
        }
    }

    #[test]
    fn maximum_principle_holds() {
        // diffusion never exceeds the initial extremes
        let (k, _) = run("omp_tiled", 32, 100);
        assert!(k.field().as_slice().iter().all(|&t| (0.0..=1.0).contains(&t)));
    }
}
