//! # ezp-kernels — the kernel library (paper §II-A, §III)
//!
//! "EASYPAP comes with a large set of predefined kernels (e.g. Transpose,
//! Invert, Blur, Pixelize, Game Of Life, Mandelbrot, Abelian SandPile)."
//! This crate implements them all, each with several *variants* students
//! would write during the lab sessions the paper describes:
//!
//! | kernel | §      | variants |
//! |--------|--------|----------|
//! | [`mandel`]    | III-A | `seq`, `tiled`, `omp`, `omp_tiled`, `gpu` |
//! | [`blur`]      | III-B | `seq`, `omp_tiled` (border tests everywhere), `omp_tiled_opt` (specialized inner tiles) |
//! | [`life`]      | III-D | `seq`, `omp_tiled`, `lazy`, `mpi_omp` — bit-packed low-memory boards |
//! | [`ccomp`]     | III-C | `seq`, `taskdep` (OpenMP-style task dependencies, Fig. 11) |
//! | [`sandpile`]  | II-A  | `seq` (synchronous), `async` (Gauss-Seidel, abelian-equal), `omp_tiled` |
//! | [`heat`]      | III-B | `seq`, `omp_tiled` — f32 Jacobi diffusion stencil |
//! | [`rotate`]    | II-A  | `seq`, `omp_tiled` — quarter-turn per iteration |
//! | [`scrollup`]  | II-A  | `seq`, `omp_tiled` — the first-session animated kernel |
//! | [`transpose`] | II-A  | `seq`, `omp_tiled` |
//! | [`invert`]    | II-A  | `seq`, `omp`, `gpu` |
//! | [`pixelize`]  | II-A  | `seq`, `omp_tiled` |
//! | [`spin`]      | II-A  | `seq`, `omp` — compute-bound trigonometry |
//!
//! Variant names keep the paper's OpenMP-flavoured spelling (`omp`,
//! `omp_tiled`...) even though the runtime is this workspace's own
//! `ezp-sched` pool, so command lines from the paper work verbatim.
//!
//! Each module also exposes a *cost model* (`tile_cost`) used by
//! `ezp-simsched` to regenerate the paper's figures deterministically.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod blur;
pub mod ccomp;
pub mod heat;
pub mod invert;
pub mod life;
pub mod mandel;
pub mod pixelize;
pub mod rotate;
pub mod sandpile;
pub mod scrollup;
pub mod shapes;
pub mod spin;
pub mod transpose;

use ezp_core::Registry;

/// Builds the registry of every predefined kernel — the equivalent of
/// linking all kernels into the `easypap` binary.
pub fn registry() -> Registry {
    let mut reg = Registry::new();
    reg.register("mandel", || Box::new(mandel::Mandel::default()));
    reg.register("blur", || Box::new(blur::Blur));
    reg.register("life", || Box::new(life::Life::default()));
    reg.register("ccomp", || Box::new(ccomp::CComp::default()));
    reg.register("sandpile", || Box::new(sandpile::Sandpile::default()));
    reg.register("heat", || Box::new(heat::Heat::default()));
    reg.register("rotate90", || Box::new(rotate::Rotate90));
    reg.register("scrollup", || Box::new(scrollup::Scrollup));
    reg.register("transpose", || Box::new(transpose::Transpose));
    reg.register("invert", || Box::new(invert::Invert));
    reg.register("pixelize", || Box::new(pixelize::Pixelize));
    reg.register("spin", || Box::new(spin::Spin::default()));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_paper_kernels() {
        let reg = registry();
        for k in [
            "mandel",
            "blur",
            "life",
            "ccomp",
            "sandpile",
            "heat",
            "rotate90",
            "scrollup",
            "transpose",
            "invert",
            "pixelize",
            "spin",
        ] {
            assert!(reg.contains(k), "missing kernel {k}");
            let kernel = reg.create(k).unwrap();
            assert_eq!(kernel.name(), k);
            assert!(
                kernel.variants().contains(&"seq"),
                "{k} must have a seq variant"
            );
        }
    }
}
