//! The Mandelbrot kernel (paper Fig. 1/2, §III-A).
//!
//! `compute_color(y, x)` is the escape-time iteration; every frame the
//! viewport zooms slightly ("`zoom()`; // modify the viewpoint real
//! coordinates"). Work per pixel is wildly non-uniform — points inside
//! the set burn `max_iter` iterations, far-away points only a few — which
//! is exactly why this kernel is the paper's load-balancing teaching
//! vehicle: a static tile distribution starves most CPUs (Fig. 3) and
//! students must find the right `schedule`/tile-size combination
//! (Fig. 4/6).

use ezp_core::color::mandel_color;
use ezp_core::error::{Error, Result};
use ezp_core::{Kernel, KernelCtx, Rgba, Tile, TileGrid};
use ezp_gpu::{NdRange, VirtualDevice};
use ezp_sched::parallel_for_tiles_img;

/// Default escape-time iteration cap. Large enough to show the black
/// interior, small enough for laptop-scale runs.
pub const DEFAULT_MAX_ITER: u32 = 256;

/// Per-frame zoom factor (the paper zooms in slightly every iteration).
const ZOOM_FACTOR: f64 = 0.96;

/// The complex-plane viewport.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Viewport {
    /// Left real coordinate.
    pub xmin: f64,
    /// Right real coordinate.
    pub xmax: f64,
    /// Top imaginary coordinate.
    pub ymin: f64,
    /// Bottom imaginary coordinate.
    pub ymax: f64,
}

impl Default for Viewport {
    fn default() -> Self {
        // the classic full-set view, centered like EASYPAP's
        Viewport {
            xmin: -2.05,
            xmax: 0.75,
            ymin: -1.4,
            ymax: 1.4,
        }
    }
}

impl Viewport {
    /// Zooms toward a fixed interesting point on the set's boundary, so
    /// that the zoomed view keeps a mix of cheap and expensive areas.
    pub fn zoom(&mut self) {
        const CX: f64 = -0.743_643_887_037;
        const CY: f64 = 0.131_825_904_205;
        self.xmin = CX + (self.xmin - CX) * ZOOM_FACTOR;
        self.xmax = CX + (self.xmax - CX) * ZOOM_FACTOR;
        self.ymin = CY + (self.ymin - CY) * ZOOM_FACTOR;
        self.ymax = CY + (self.ymax - CY) * ZOOM_FACTOR;
    }

    /// The complex coordinate of pixel `(x, y)` in a `dim`×`dim` image.
    #[inline]
    pub fn pixel_to_complex(&self, x: usize, y: usize, dim: usize) -> (f64, f64) {
        let fx = self.xmin + (self.xmax - self.xmin) * (x as f64 + 0.5) / dim as f64;
        let fy = self.ymin + (self.ymax - self.ymin) * (y as f64 + 0.5) / dim as f64;
        (fx, fy)
    }
}

/// Escape-time iteration count for the complex point `(cx, cy)`.
#[inline]
pub fn escape_iterations(cx: f64, cy: f64, max_iter: u32) -> u32 {
    // cardioid / period-2 bulb shortcut: the expensive interior answered
    // in O(1), like production Mandelbrot renderers
    let q = (cx - 0.25) * (cx - 0.25) + cy * cy;
    if q * (q + (cx - 0.25)) <= 0.25 * cy * cy || (cx + 1.0) * (cx + 1.0) + cy * cy <= 0.0625 {
        return max_iter;
    }
    let mut zx = 0.0f64;
    let mut zy = 0.0f64;
    let mut it = 0;
    while zx * zx + zy * zy < 4.0 && it < max_iter {
        let t = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = t;
        it += 1;
    }
    it
}

/// Four-lane escape-time iteration: computes [`escape_iterations`] for
/// four points at once with a lane mask, the structure a SIMD
/// implementation (the paper mentions "intrinsics instructions" as one
/// of the supported paradigms) would use — written so LLVM can
/// vectorize the lane operations. Value-identical to the scalar path
/// (property-tested): the scalar cardioid shortcut only answers
/// `max_iter` early for points the iteration would also grade
/// `max_iter`, so skipping it changes speed, never results.
pub fn escape_iterations_x4(cx: [f64; 4], cy: [f64; 4], max_iter: u32) -> [u32; 4] {
    let mut zx = [0.0f64; 4];
    let mut zy = [0.0f64; 4];
    let mut iters = [max_iter; 4];
    let mut active = [true; 4];
    for it in 0..max_iter {
        let mut any = false;
        for l in 0..4 {
            if !active[l] {
                continue;
            }
            let x2 = zx[l] * zx[l];
            let y2 = zy[l] * zy[l];
            if x2 + y2 >= 4.0 {
                iters[l] = it;
                active[l] = false;
                continue;
            }
            let t = x2 - y2 + cx[l];
            zy[l] = 2.0 * zx[l] * zy[l] + cy[l];
            zx[l] = t;
            any = true;
        }
        if !any {
            break;
        }
    }
    iters
}

/// Scalar escape time without the cardioid/bulb shortcut — the exact
/// reference for [`escape_iterations_x4`].
pub fn escape_iterations_noshortcut(cx: f64, cy: f64, max_iter: u32) -> u32 {
    let mut zx = 0.0f64;
    let mut zy = 0.0f64;
    let mut it = 0;
    while zx * zx + zy * zy < 4.0 && it < max_iter {
        let t = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = t;
        it += 1;
    }
    it
}

/// Exact number of escape-time iterations needed by every pixel of
/// `tile` — the deterministic cost model handed to `ezp-simsched` (one
/// virtual ns per inner-loop iteration).
pub fn tile_cost(view: &Viewport, tile: Tile, dim: usize, max_iter: u32) -> u64 {
    let mut total = 0u64;
    for y in tile.y..tile.y + tile.h {
        for x in tile.x..tile.x + tile.w {
            let (cx, cy) = view.pixel_to_complex(x, y, dim);
            total += escape_iterations(cx, cy, max_iter) as u64;
        }
    }
    total
}

/// The Mandelbrot kernel state.
pub struct Mandel {
    /// Current viewport (zooms every iteration).
    pub view: Viewport,
    /// Escape-time cap.
    pub max_iter: u32,
}

impl Default for Mandel {
    fn default() -> Self {
        Mandel {
            view: Viewport::default(),
            max_iter: DEFAULT_MAX_ITER,
        }
    }
}

impl Mandel {
    #[inline]
    fn color_at(&self, x: usize, y: usize, dim: usize) -> Rgba {
        let (cx, cy) = self.view.pixel_to_complex(x, y, dim);
        mandel_color(escape_iterations(cx, cy, self.max_iter), self.max_iter)
    }

    /// `mandel_compute_seq` (paper Fig. 1): plain nested loops.
    fn compute_seq(&mut self, ctx: &mut KernelCtx, nb_iter: u32) {
        let dim = ctx.dim();
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            ctx.probe.start_tile(0);
            for y in 0..dim {
                for x in 0..dim {
                    let c = self.color_at(x, y, dim);
                    ctx.images.cur_mut().set(x, y, c);
                }
            }
            ctx.probe.end_tile(0, 0, dim, dim, 0);
            self.view.zoom();
            ctx.probe.iteration_end(it);
        }
    }

    /// Sequential tiled variant: same computation, per-tile monitoring.
    fn compute_tiled(&mut self, ctx: &mut KernelCtx, nb_iter: u32) {
        let dim = ctx.dim();
        let grid = ctx.grid;
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            for tile in grid.iter() {
                ctx.probe.start_tile(0);
                for y in tile.y..tile.y + tile.h {
                    for x in tile.x..tile.x + tile.w {
                        let c = self.color_at(x, y, dim);
                        ctx.images.cur_mut().set(x, y, c);
                    }
                }
                ctx.probe.end_tile(tile.x, tile.y, tile.w, tile.h, 0);
            }
            self.view.zoom();
            ctx.probe.iteration_end(it);
        }
    }

    /// `mandel_compute_omp_tiled` (paper Fig. 2): a parallel scheduled
    /// loop over tiles per iteration, `zoom()` in a single region.
    /// `row_tiles` makes tiles row-shaped — the plain `omp` variant.
    fn compute_parallel(&mut self, ctx: &mut KernelCtx, nb_iter: u32, row_tiles: bool) -> Result<()> {
        let dim = ctx.dim();
        let grid = if row_tiles {
            TileGrid::new(dim, dim, dim, 1)?
        } else {
            ctx.grid
        };
        let mut pool = ezp_sched::acquire_pool(ctx.threads());
        let schedule = ctx.cfg.schedule;
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            let view = self.view; // copy for the workers
            let max_iter = self.max_iter;
            parallel_for_tiles_img(
                &mut pool,
                &grid,
                schedule,
                &*ctx.probe,
                ctx.images.cur_mut(),
                |w, _rank| {
                    let t = w.tile();
                    for y in t.y..t.y + t.h {
                        for x in t.x..t.x + t.w {
                            let (cx, cy) = view.pixel_to_complex(x, y, dim);
                            let c = mandel_color(escape_iterations(cx, cy, max_iter), max_iter);
                            w.set(x, y, c);
                        }
                    }
                },
            );
            self.view.zoom();
            ctx.probe.iteration_end(it);
        }
        Ok(())
    }

    /// Four-pixel-at-a-time tiled variant — the lane-parallel inner loop
    /// a SIMD/intrinsics port would use, teaching the same lesson as the
    /// paper's "intrinsics instructions" paradigm. Produces the exact
    /// image of the scalar variants.
    fn compute_parallel_x4(&mut self, ctx: &mut KernelCtx, nb_iter: u32) -> Result<()> {
        let dim = ctx.dim();
        let grid = ctx.grid;
        let mut pool = ezp_sched::acquire_pool(ctx.threads());
        let schedule = ctx.cfg.schedule;
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            let view = self.view;
            let max_iter = self.max_iter;
            parallel_for_tiles_img(
                &mut pool,
                &grid,
                schedule,
                &*ctx.probe,
                ctx.images.cur_mut(),
                |w, _rank| {
                    let t = w.tile();
                    for y in t.y..t.y + t.h {
                        let mut x = t.x;
                        // 4-wide main loop
                        while x + 4 <= t.x + t.w {
                            let mut cx = [0.0; 4];
                            let mut cy = [0.0; 4];
                            for l in 0..4 {
                                let (a, b) = view.pixel_to_complex(x + l, y, dim);
                                cx[l] = a;
                                cy[l] = b;
                            }
                            let iters = escape_iterations_x4(cx, cy, max_iter);
                            for (l, &n) in iters.iter().enumerate() {
                                w.set(x + l, y, mandel_color(n, max_iter));
                            }
                            x += 4;
                        }
                        // scalar tail
                        while x < t.x + t.w {
                            let (a, b) = view.pixel_to_complex(x, y, dim);
                            w.set(x, y, mandel_color(escape_iterations(a, b, max_iter), max_iter));
                            x += 1;
                        }
                    }
                },
            );
            self.view.zoom();
            ctx.probe.iteration_end(it);
        }
        Ok(())
    }

    /// OpenCL-style variant on the virtual device (one work-item per
    /// pixel, work-groups = tiles).
    fn compute_gpu(&mut self, ctx: &mut KernelCtx, nb_iter: u32) -> Result<()> {
        let dim = ctx.dim();
        let device = VirtualDevice::new(ctx.threads());
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            let view = self.view;
            let max_iter = self.max_iter;
            let range = NdRange {
                global: (dim, dim),
                local: (ctx.cfg.tile_size, ctx.cfg.tile_size),
            };
            let (out, _profile) = device.launch(range, ctx.images.cur(), |x, y, _| {
                let (cx, cy) = view.pixel_to_complex(x, y, dim);
                mandel_color(escape_iterations(cx, cy, max_iter), max_iter)
            })?;
            ctx.images.cur_mut().copy_from(&out);
            self.view.zoom();
            ctx.probe.iteration_end(it);
        }
        Ok(())
    }
}

impl Kernel for Mandel {
    fn name(&self) -> &'static str {
        "mandel"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "tiled", "omp", "omp_tiled", "omp_tiled_x4", "gpu"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        if let Some(arg) = &ctx.cfg.kernel_arg {
            self.max_iter = arg
                .parse()
                .map_err(|_| Error::Config(format!("mandel: bad max_iter `{arg}`")))?;
        }
        ctx.images.cur_mut().fill(Rgba::BLACK);
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        match variant {
            "seq" => self.compute_seq(ctx, nb_iter),
            "tiled" => self.compute_tiled(ctx, nb_iter),
            "omp" => self.compute_parallel(ctx, nb_iter, true)?,
            "omp_tiled" => self.compute_parallel(ctx, nb_iter, false)?,
            "omp_tiled_x4" => self.compute_parallel_x4(ctx, nb_iter)?,
            "gpu" => self.compute_gpu(ctx, nb_iter)?,
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "mandel".into(),
                    variant: other.into(),
                })
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::RunConfig;
    use ezp_core::Schedule;

    fn ctx(dim: usize, tile: usize, threads: usize) -> KernelCtx {
        KernelCtx::new(
            RunConfig::new("mandel")
                .size(dim)
                .tile(tile)
                .threads(threads)
                .schedule(Schedule::Dynamic(1)),
        )
        .unwrap()
    }

    fn render(variant: &str, iters: u32) -> Vec<Rgba> {
        let mut k = Mandel::default();
        let mut c = ctx(64, 16, 3);
        k.init(&mut c).unwrap();
        k.compute(&mut c, variant, iters).unwrap();
        c.images.cur().as_slice().to_vec()
    }

    #[test]
    fn escape_is_bounded_and_interior_maxes() {
        assert_eq!(escape_iterations(0.0, 0.0, 100), 100); // origin is in the set
        assert_eq!(escape_iterations(-1.0, 0.0, 100), 100); // period-2 bulb
        assert!(escape_iterations(2.0, 2.0, 100) < 5); // far outside escapes fast
        for &(cx, cy) in &[(0.3, 0.5), (-0.7, 0.3), (1.5, 0.0)] {
            assert!(escape_iterations(cx, cy, 64) <= 64);
        }
    }

    #[test]
    fn cardioid_shortcut_matches_iteration() {
        // points the shortcut claims are inside must not escape
        for &(cx, cy) in &[(0.1, 0.1), (-0.2, 0.0), (-1.05, 0.05)] {
            let q = (cx - 0.25f64) * (cx - 0.25) + cy * cy;
            let inside_shortcut = q * (q + (cx - 0.25)) <= 0.25 * cy * cy
                || (cx + 1.0) * (cx + 1.0) + cy * cy <= 0.0625;
            if inside_shortcut {
                assert_eq!(escape_iterations(cx, cy, 512), 512);
            }
        }
    }

    #[test]
    fn all_variants_agree_with_seq() {
        let reference = render("seq", 2);
        for variant in ["tiled", "omp", "omp_tiled", "omp_tiled_x4", "gpu"] {
            assert_eq!(render(variant, 2), reference, "variant {variant} diverged");
        }
    }

    #[test]
    fn lane_parallel_escape_matches_scalar() {
        let view = Viewport::default();
        for y in (0..64).step_by(3) {
            for x0 in (0..60).step_by(4) {
                let mut cx = [0.0; 4];
                let mut cy = [0.0; 4];
                for l in 0..4 {
                    let (a, b) = view.pixel_to_complex(x0 + l, y, 64);
                    cx[l] = a;
                    cy[l] = b;
                }
                let lanes = escape_iterations_x4(cx, cy, 200);
                for l in 0..4 {
                    assert_eq!(
                        lanes[l],
                        escape_iterations_noshortcut(cx[l], cy[l], 200),
                        "lane {l} diverged at ({},{y})", x0 + l
                    );
                    assert_eq!(lanes[l], escape_iterations(cx[l], cy[l], 200));
                }
            }
        }
    }

    #[test]
    fn zoom_shrinks_viewport() {
        let mut v = Viewport::default();
        let w0 = v.xmax - v.xmin;
        v.zoom();
        let w1 = v.xmax - v.xmin;
        assert!(w1 < w0);
        assert!(w1 > 0.9 * w0);
    }

    #[test]
    fn image_contains_set_and_exterior() {
        let img = render("seq", 1);
        let black = img.iter().filter(|&&p| p == Rgba::BLACK).count();
        assert!(black > 0, "no interior pixels rendered");
        assert!(black < img.len(), "everything is interior?");
    }

    #[test]
    fn tile_cost_is_heavier_on_the_set() {
        let view = Viewport::default();
        let grid = TileGrid::square(64, 16).unwrap();
        // a tile containing part of the interior vs the top-left corner
        // (far exterior): interior must cost much more
        let costs: Vec<u64> = grid.iter().map(|t| tile_cost(&view, t, 64, 256)).collect();
        let max = *costs.iter().max().unwrap();
        let min = *costs.iter().min().unwrap();
        assert!(max > 20 * min, "expected strong cost imbalance, got {min}..{max}");
        // total cost equals the sum over pixels (spot check one tile)
        let t = grid.tile(0, 0);
        let manual: u64 = (0..16)
            .flat_map(|y| (0..16).map(move |x| (x, y)))
            .map(|(x, y)| {
                let (cx, cy) = view.pixel_to_complex(x, y, 64);
                escape_iterations(cx, cy, 256) as u64
            })
            .sum();
        assert_eq!(tile_cost(&view, t, 64, 256), manual);
    }

    #[test]
    fn kernel_arg_sets_max_iter() {
        let mut k = Mandel::default();
        let mut cfg = RunConfig::new("mandel").size(32).tile(8);
        cfg.kernel_arg = Some("64".into());
        let mut c = KernelCtx::new(cfg).unwrap();
        k.init(&mut c).unwrap();
        assert_eq!(k.max_iter, 64);
        let mut bad = KernelCtx::new({
            let mut cfg = RunConfig::new("mandel").size(32).tile(8);
            cfg.kernel_arg = Some("not-a-number".into());
            cfg
        })
        .unwrap();
        assert!(k.init(&mut bad).is_err());
    }

    #[test]
    fn unknown_variant_is_rejected() {
        let mut k = Mandel::default();
        let mut c = ctx(32, 8, 1);
        k.init(&mut c).unwrap();
        assert!(k.compute(&mut c, "cuda", 1).is_err());
    }
}
