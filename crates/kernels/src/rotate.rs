//! The Rotate90 kernel: `next(x, y) = cur(y, DIM-1-x)` — a quarter-turn
//! clockwise per iteration. Like `transpose`, its parallel interest is
//! the mismatch between read and write tile footprints.

use ezp_core::error::{Error, Result};
use ezp_core::{Kernel, KernelCtx};
use ezp_sched::{parallel_for_tiles, ImgCell};

/// The rotate90 kernel.
#[derive(Default)]
pub struct Rotate90;

impl Kernel for Rotate90 {
    fn name(&self) -> &'static str {
        "rotate90"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp_tiled"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        crate::shapes::test_card(ctx.images.cur_mut());
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let dim = ctx.dim();
        match variant {
            "seq" => {
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    ctx.probe.start_tile(0);
                    {
                        let (src, dst) = ctx.images.rw();
                        for y in 0..dim {
                            for x in 0..dim {
                                dst.set(x, y, src.get(y, dim - 1 - x));
                            }
                        }
                    }
                    ctx.probe.end_tile(0, 0, dim, dim, 0);
                    ctx.images.swap();
                    ctx.probe.iteration_end(it);
                }
            }
            "omp_tiled" => {
                let grid = ctx.grid;
                let schedule = ctx.cfg.schedule;
                let mut pool = ezp_sched::acquire_pool(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    {
                        let (src, dst) = ctx.images.rw();
                        let cell = ImgCell::new(dst);
                        parallel_for_tiles(&mut pool, &grid, schedule, &*ctx.probe, |t, _| {
                            let w = cell.tile_writer(t);
                            for y in t.y..t.y + t.h {
                                for x in t.x..t.x + t.w {
                                    w.set(x, y, src.get(y, dim - 1 - x));
                                }
                            }
                        });
                    }
                    ctx.images.swap();
                    ctx.probe.iteration_end(it);
                }
            }
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "rotate90".into(),
                    variant: other.into(),
                })
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::{Rgba, RunConfig};

    fn run(variant: &str, dim: usize, tile: usize, iters: u32) -> Vec<Rgba> {
        let mut ctx =
            KernelCtx::new(RunConfig::new("rotate90").size(dim).tile(tile).threads(3)).unwrap();
        let mut k = Rotate90;
        k.init(&mut ctx).unwrap();
        k.compute(&mut ctx, variant, iters).unwrap();
        ctx.images.cur().as_slice().to_vec()
    }

    #[test]
    fn single_rotation_moves_corners() {
        let dim = 16;
        let out = run("seq", dim, 8, 1);
        let mut original = ezp_core::Img2D::square(dim);
        crate::shapes::test_card(&mut original);
        // clockwise: the top-left corner goes to the top-right
        assert_eq!(out[dim - 1], original.get(0, 0));
        // and every pixel follows next(x,y) = cur(y, dim-1-x)
        for y in 0..dim {
            for x in 0..dim {
                assert_eq!(out[y * dim + x], original.get(y, dim - 1 - x));
            }
        }
    }

    #[test]
    fn four_rotations_are_identity() {
        let dim = 20;
        let out = run("omp_tiled", dim, 8, 4);
        let mut original = ezp_core::Img2D::square(dim);
        crate::shapes::test_card(&mut original);
        assert_eq!(out, original.as_slice());
    }

    #[test]
    fn two_rotations_are_point_reflection() {
        let dim = 12;
        let out = run("seq", dim, 4, 2);
        let mut original = ezp_core::Img2D::square(dim);
        crate::shapes::test_card(&mut original);
        for y in 0..dim {
            for x in 0..dim {
                assert_eq!(out[y * dim + x], original.get(dim - 1 - x, dim - 1 - y));
            }
        }
    }

    #[test]
    fn tiled_matches_seq_on_ragged_grid() {
        assert_eq!(run("omp_tiled", 28, 8, 3), run("seq", 28, 8, 3));
    }
}
