//! Connected-components detection (paper §III-C, Fig. 11/12).
//!
//! "The proposed algorithm first reassigns each pixel a unique color and
//! then propagates the maximum between neighbours until reaching a
//! steady state. The sequential implementation uses a sequence of two
//! phases per iteration: the first phase propagates local maxima to the
//! right and to the bottom, and the second one proceeds to an up-left
//! propagation."
//!
//! The parallel variant tiles the image and turns the scan-order
//! constraints into task dependencies: "during the bottom-right phase a
//! tile cannot be executed until its left and upper neighbours have
//! completed" — exactly [`ezp_sched::TaskGraph::down_right_wavefront`].
//! EASYVIEW shows the resulting diagonal wave of tasks (Fig. 12).

use ezp_core::error::{Error, Result};
use ezp_core::{Kernel, KernelCtx, Rgba, Tile, TileGrid};
use ezp_sched::{TaskGraph, WorkerPool};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Label buffer: one `u32` label per pixel, 0 = transparent background.
/// Atomic so that wavefront tasks can share it; the task dependencies
/// (plus the scheduler's synchronization) order all conflicting
/// accesses — synchronizing via the spine (via-the-spine), so the
/// cells themselves stay `Relaxed`.
pub struct Labels {
    dim: usize,
    cells: Vec<AtomicU32>,
}

impl Labels {
    /// Initial labels from an image: opaque pixel `(x, y)` gets the
    /// unique label `y*dim + x + 1`, transparent pixels get 0.
    pub fn from_image(img: &ezp_core::Img2D<Rgba>) -> Self {
        let dim = img.width();
        let cells = (0..dim * img.height())
            .map(|i| {
                let (x, y) = (i % dim, i / dim);
                AtomicU32::new(if img.get(x, y).is_transparent() {
                    0
                } else {
                    (i + 1) as u32
                })
            })
            .collect();
        Labels { dim, cells }
    }

    /// Label of `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u32 {
        self.cells[y * self.dim + x].load(Ordering::Relaxed)
    }

    #[inline]
    fn set(&self, x: usize, y: usize, v: u32) {
        self.cells[y * self.dim + x].store(v, Ordering::Relaxed);
    }

    /// The set of distinct non-zero labels — one per component once the
    /// propagation has converged.
    pub fn distinct_labels(&self) -> std::collections::BTreeSet<u32> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .filter(|&v| v != 0)
            .collect()
    }

    /// Down-right propagation over one tile (scan order: y then x
    /// ascending): `label = max(self, left, up)`. Returns true when any
    /// label changed.
    fn down_right_tile(&self, t: Tile) -> bool {
        let mut changed = false;
        for y in t.y..t.y + t.h {
            for x in t.x..t.x + t.w {
                let cur = self.get(x, y);
                if cur == 0 {
                    continue;
                }
                let mut v = cur;
                if x > 0 {
                    let l = self.get(x - 1, y);
                    if l > v {
                        v = l;
                    }
                }
                if y > 0 {
                    let u = self.get(x, y - 1);
                    if u > v {
                        v = u;
                    }
                }
                if v != cur {
                    self.set(x, y, v);
                    changed = true;
                }
            }
        }
        changed
    }

    /// Up-left propagation (scan order: y then x descending):
    /// `label = max(self, right, down)`.
    fn up_left_tile(&self, t: Tile) -> bool {
        let mut changed = false;
        for y in (t.y..t.y + t.h).rev() {
            for x in (t.x..t.x + t.w).rev() {
                let cur = self.get(x, y);
                if cur == 0 {
                    continue;
                }
                let mut v = cur;
                if x + 1 < self.dim {
                    let r = self.get(x + 1, y);
                    if r > v {
                        v = r;
                    }
                }
                if y + 1 < self.cells.len() / self.dim {
                    let d = self.get(x, y + 1);
                    if d > v {
                        v = d;
                    }
                }
                if v != cur {
                    self.set(x, y, v);
                    changed = true;
                }
            }
        }
        changed
    }
}

/// Deterministic color for a component label, bright and saturated so
/// distinct components are visually distinct.
pub fn label_color(label: u32) -> Rgba {
    if label == 0 {
        return Rgba::TRANSPARENT;
    }
    ezp_core::color::hsv_to_rgba((label.wrapping_mul(2654435761) % 360) as f32, 0.8, 0.95)
}

/// The connected-components kernel.
#[derive(Default)]
pub struct CComp {
    labels: Option<Labels>,
    /// Number of shapes drawn by the generated scene (ground truth).
    pub expected_components: usize,
}

impl CComp {
    fn labels(&self) -> &Labels {
        self.labels.as_ref().expect("init() must run first")
    }

    /// One full iteration (both phases) sequentially, whole image.
    fn iterate_seq(&self, dim: usize) -> bool {
        let whole = Tile {
            x: 0,
            y: 0,
            w: dim,
            h: dim,
            tx: 0,
            ty: 0,
        };
        let a = self.labels().down_right_tile(whole);
        let b = self.labels().up_left_tile(whole);
        a || b
    }

    /// One full iteration with tiled wavefronts on the pool, with
    /// per-tile monitoring brackets so traces show the wave (Fig. 12).
    fn iterate_taskdep_monitored(
        &self,
        ctx: &KernelCtx,
        grid: &TileGrid,
        pool: &mut WorkerPool,
    ) -> Result<bool> {
        let labels = self.labels();
        let changed = AtomicBool::new(false);
        let probe = &*ctx.probe;
        let down = TaskGraph::down_right_wavefront(grid);
        down.run_probed(pool, probe, |task, rank| {
            let t = grid.tile_at(task);
            probe.start_tile(rank);
            if labels.down_right_tile(t) {
                changed.store(true, Ordering::Relaxed);
            }
            probe.end_tile(t.x, t.y, t.w, t.h, rank);
        })?;
        let up = TaskGraph::up_left_wavefront(grid);
        up.run_probed(pool, probe, |task, rank| {
            let t = grid.tile_at(task);
            probe.start_tile(rank);
            if labels.up_left_tile(t) {
                changed.store(true, Ordering::Relaxed);
            }
            probe.end_tile(t.x, t.y, t.w, t.h, rank);
        })?;
        Ok(changed.load(Ordering::Relaxed))
    }
}

impl Kernel for CComp {
    fn name(&self) -> &'static str {
        "ccomp"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "taskdep"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        let img = ctx.images.cur_mut();
        self.expected_components = crate::shapes::ccomp_scene(img, ctx.cfg.seed);
        self.labels = Some(Labels::from_image(img));
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let dim = ctx.dim();
        let grid = ctx.grid;
        match variant {
            "seq" => {
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    ctx.probe.start_tile(0);
                    let changed = self.iterate_seq(dim);
                    ctx.probe.end_tile(0, 0, dim, dim, 0);
                    ctx.probe.iteration_end(it);
                    if !changed {
                        return Ok(Some(it));
                    }
                }
                Ok(None)
            }
            "taskdep" => {
                let mut pool = ezp_sched::acquire_pool(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    let changed = self.iterate_taskdep_monitored(ctx, &grid, &mut pool)?;
                    ctx.probe.iteration_end(it);
                    if !changed {
                        return Ok(Some(it));
                    }
                }
                Ok(None)
            }
            other => Err(Error::UnknownKernel {
                kernel: "ccomp".into(),
                variant: other.into(),
            }),
        }
    }

    fn refresh_image(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        let labels = self.labels();
        let img = ctx.images.cur_mut();
        for y in 0..img.height() {
            for x in 0..img.width() {
                img.set(x, y, label_color(labels.get(x, y)));
            }
        }
        Ok(())
    }
}

/// Reference component labeling by BFS flood fill (4-connectivity over
/// opaque pixels): returns per-pixel component ids and the component
/// count.
pub fn reference_components(img: &ezp_core::Img2D<Rgba>) -> (Vec<u32>, usize) {
    let (w, h) = (img.width(), img.height());
    let mut comp = vec![0u32; w * h];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..w * h {
        let (sx, sy) = (start % w, start / w);
        if comp[start] != 0 || img.get(sx, sy).is_transparent() {
            continue;
        }
        count += 1;
        comp[start] = count;
        queue.push_back((sx, sy));
        while let Some((x, y)) = queue.pop_front() {
            for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx < 0 || ny < 0 || nx as usize >= w || ny as usize >= h {
                    continue;
                }
                let (nx, ny) = (nx as usize, ny as usize);
                let i = ny * w + nx;
                if comp[i] == 0 && !img.get(nx, ny).is_transparent() {
                    comp[i] = count;
                    queue.push_back((nx, ny));
                }
            }
        }
    }
    (comp, count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::{Img2D, RunConfig};

    fn run(variant: &str, dim: usize, tile: usize, seed: u64) -> (CComp, KernelCtx, Option<u32>) {
        let mut cfg = RunConfig::new("ccomp").size(dim).tile(tile).threads(3);
        cfg.seed = seed;
        let mut ctx = KernelCtx::new(cfg).unwrap();
        let mut k = CComp::default();
        k.init(&mut ctx).unwrap();
        let conv = k.compute(&mut ctx, variant, 500).unwrap();
        (k, ctx, conv)
    }

    /// The correctness oracle: after convergence, (a) every component is
    /// uniformly labeled, (b) distinct components have distinct labels,
    /// (c) the label count matches a reference BFS.
    fn check_labels(k: &CComp, ctx: &KernelCtx) {
        let mut scene = Img2D::square(ctx.dim());
        crate::shapes::ccomp_scene(&mut scene, ctx.cfg.seed);
        let (reference, count) = reference_components(&scene);
        let labels = k.labels();
        assert_eq!(labels.distinct_labels().len(), count, "component count mismatch");
        // uniform labeling within each reference component
        let mut label_of_comp = std::collections::HashMap::new();
        for y in 0..ctx.dim() {
            for x in 0..ctx.dim() {
                let c = reference[y * ctx.dim() + x];
                let l = labels.get(x, y);
                if c == 0 {
                    assert_eq!(l, 0, "background pixel got labeled at ({x},{y})");
                } else {
                    let expected = *label_of_comp.entry(c).or_insert(l);
                    assert_eq!(l, expected, "component {c} not uniform at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn seq_labels_components_correctly() {
        let (k, ctx, conv) = run("seq", 64, 16, 3);
        assert!(conv.is_some(), "must converge");
        check_labels(&k, &ctx);
    }

    #[test]
    fn taskdep_matches_reference_on_multiple_seeds() {
        for seed in [1, 7, 42] {
            let (k, ctx, conv) = run("taskdep", 64, 16, seed);
            assert!(conv.is_some(), "seed {seed} did not converge");
            check_labels(&k, &ctx);
        }
    }

    #[test]
    fn taskdep_converges_in_same_iterations_as_seq() {
        // tiled wavefront with intra-tile scan order is work-equivalent
        // to the sequential pass, so iteration counts match ("without
        // introducing extra iterations", §III-C)
        let (_, _, conv_seq) = run("seq", 64, 16, 9);
        let (_, _, conv_task) = run("taskdep", 64, 16, 9);
        assert_eq!(conv_seq, conv_task);
    }

    #[test]
    fn empty_scene_converges_immediately() {
        let mut cfg = RunConfig::new("ccomp").size(16, ).tile(8).threads(2);
        cfg.seed = 0;
        let mut ctx = KernelCtx::new(cfg).unwrap();
        // force an empty image regardless of the seed
        ctx.images.cur_mut().fill(Rgba::TRANSPARENT);
        let mut k = CComp {
            labels: Some(Labels::from_image(ctx.images.cur())),
            ..Default::default()
        };
        let conv = k.compute(&mut ctx, "seq", 10).unwrap();
        assert_eq!(conv, Some(1));
        assert!(k.labels().distinct_labels().is_empty());
    }

    #[test]
    fn single_shape_gets_single_label() {
        let mut img = Img2D::square(32);
        crate::shapes::fill_rect(&mut img, 5, 5, 10, 8, Rgba::RED);
        let labels = Labels::from_image(&img);
        let whole = Tile { x: 0, y: 0, w: 32, h: 32, tx: 0, ty: 0 };
        for _ in 0..50 {
            let a = labels.down_right_tile(whole);
            let b = labels.up_left_tile(whole);
            if !a && !b {
                break;
            }
        }
        assert_eq!(labels.distinct_labels().len(), 1);
        // the label is the max initial label = bottom-right pixel of the rect
        let expect = (12u32 * 32 + 14) + 1;
        assert_eq!(labels.get(5, 5), expect);
    }

    #[test]
    fn refresh_image_colors_components() {
        let (mut k, mut ctx, _) = run("seq", 64, 16, 3);
        k.refresh_image(&mut ctx).unwrap();
        let img = ctx.images.cur();
        // background stays transparent, shapes get opaque colors
        let opaque = img.as_slice().iter().filter(|p| !p.is_transparent()).count();
        assert!(opaque > 0);
        assert_eq!(label_color(0), Rgba::TRANSPARENT);
        assert_ne!(label_color(1), label_color(2));
    }

    #[test]
    fn spiral_needs_many_iterations_but_converges() {
        // a C-shaped (concave) component: propagation needs several
        // iterations to travel around the bend
        let mut cfg = RunConfig::new("ccomp").size(32).tile(8).threads(2);
        cfg.seed = 0;
        let mut ctx = KernelCtx::new(cfg).unwrap();
        let img = ctx.images.cur_mut();
        img.fill(Rgba::TRANSPARENT);
        crate::shapes::fill_rect(img, 4, 4, 20, 3, Rgba::RED); // top bar
        crate::shapes::fill_rect(img, 4, 7, 3, 14, Rgba::RED); // left leg
        crate::shapes::fill_rect(img, 4, 21, 20, 3, Rgba::RED); // bottom bar
        let mut k = CComp {
            labels: Some(Labels::from_image(ctx.images.cur())),
            ..Default::default()
        };
        let conv = k.compute(&mut ctx, "taskdep", 500).unwrap();
        assert!(conv.is_some());
        assert_eq!(k.labels().distinct_labels().len(), 1);
    }
}
