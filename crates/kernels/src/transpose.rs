//! The Transpose kernel (paper §II-A): `next(x, y) = cur(y, x)`.
//!
//! The interesting parallel aspect is memory access: a tile `(tx, ty)`
//! of the destination reads tile `(ty, tx)` of the source, so tiled
//! execution turns a strided full-image sweep into cache-friendly
//! blocked accesses (which `ezp-cache` can quantify).

use ezp_core::error::{Error, Result};
use ezp_core::{Kernel, KernelCtx};
use ezp_sched::{parallel_for_tiles, ImgCell};

/// The transpose kernel.
#[derive(Default)]
pub struct Transpose;

impl Kernel for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp_tiled"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        crate::shapes::test_card(ctx.images.cur_mut());
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let dim = ctx.dim();
        match variant {
            "seq" => {
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    ctx.probe.start_tile(0);
                    {
                        let (src, dst) = ctx.images.rw();
                        for y in 0..dim {
                            for x in 0..dim {
                                dst.set(x, y, src.get(y, x));
                            }
                        }
                    }
                    ctx.probe.end_tile(0, 0, dim, dim, 0);
                    ctx.images.swap();
                    ctx.probe.iteration_end(it);
                }
            }
            "omp_tiled" => {
                let grid = ctx.grid;
                let schedule = ctx.cfg.schedule;
                let mut pool = ezp_sched::acquire_pool(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    {
                        let (src, dst) = ctx.images.rw();
                        let cell = ImgCell::new(dst);
                        parallel_for_tiles(&mut pool, &grid, schedule, &*ctx.probe, |t, _| {
                            let w = cell.tile_writer(t);
                            for y in t.y..t.y + t.h {
                                for x in t.x..t.x + t.w {
                                    w.set(x, y, src.get(y, x));
                                }
                            }
                        });
                    }
                    ctx.images.swap();
                    ctx.probe.iteration_end(it);
                }
            }
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "transpose".into(),
                    variant: other.into(),
                })
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::{Rgba, RunConfig};

    fn run(variant: &str, dim: usize, tile: usize, iters: u32) -> Vec<Rgba> {
        let mut ctx = KernelCtx::new(RunConfig::new("transpose").size(dim).tile(tile).threads(3)).unwrap();
        let mut k = Transpose;
        k.init(&mut ctx).unwrap();
        k.compute(&mut ctx, variant, iters).unwrap();
        ctx.images.cur().as_slice().to_vec()
    }

    #[test]
    fn single_transpose_flips_coordinates() {
        let dim = 32;
        let out = run("seq", dim, 8, 1);
        let mut original = ezp_core::Img2D::square(dim);
        crate::shapes::test_card(&mut original);
        for y in 0..dim {
            for x in 0..dim {
                assert_eq!(out[y * dim + x], original.get(y, x));
            }
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let dim = 24;
        let out = run("omp_tiled", dim, 8, 2);
        let mut original = ezp_core::Img2D::square(dim);
        crate::shapes::test_card(&mut original);
        assert_eq!(out, original.as_slice());
    }

    #[test]
    fn tiled_matches_seq_with_ragged_tiles() {
        assert_eq!(run("omp_tiled", 30, 7, 3), run("seq", 30, 7, 3));
    }
}
