//! Deterministic input generators for kernels and tests.
//!
//! EASYPAP ships images and datasets with its kernels (the transparent
//! shapes `ccomp` labels, the sparse spaceship dataset of Fig. 13);
//! these generators produce equivalent inputs procedurally so every run
//! is reproducible from a seed.

use ezp_core::{Img2D, Rgba};
use ezp_testkit::Rng;

/// Paints a colorful deterministic test card: RGB gradients with a
/// bright disc and a dark square, exercising every channel.
pub fn test_card(img: &mut Img2D<Rgba>) {
    let w = img.width().max(1);
    let h = img.height().max(1);
    img.for_each_mut(|x, y, p| {
        let r = (255 * x / w) as u8;
        let g = (255 * y / h) as u8;
        let b = (255 * (x + y) / (w + h)) as u8;
        *p = Rgba::new(r, g, b, 255);
    });
    // bright disc in the upper-left quadrant
    let (cx, cy, rad) = (w / 4, h / 4, (w.min(h) / 6).max(1));
    fill_disc(img, cx, cy, rad, Rgba::WHITE);
    // dark square in the lower-right quadrant
    let side = (w.min(h) / 5).max(1);
    fill_rect(img, 3 * w / 5, 3 * h / 5, side, side, Rgba::new(10, 10, 10, 255));
}

/// Fills the disc of radius `r` centered at `(cx, cy)`.
pub fn fill_disc(img: &mut Img2D<Rgba>, cx: usize, cy: usize, r: usize, color: Rgba) {
    let r2 = (r * r) as i64;
    let (w, h) = (img.width() as i64, img.height() as i64);
    for y in (cy as i64 - r as i64).max(0)..(cy as i64 + r as i64 + 1).min(h) {
        for x in (cx as i64 - r as i64).max(0)..(cx as i64 + r as i64 + 1).min(w) {
            let dx = x - cx as i64;
            let dy = y - cy as i64;
            if dx * dx + dy * dy <= r2 {
                img.set(x as usize, y as usize, color);
            }
        }
    }
}

/// Fills the axis-aligned rectangle (clipped to the image).
pub fn fill_rect(img: &mut Img2D<Rgba>, x0: usize, y0: usize, w: usize, h: usize, color: Rgba) {
    for y in y0..(y0 + h).min(img.height()) {
        for x in x0..(x0 + w).min(img.width()) {
            img.set(x, y, color);
        }
    }
}

/// The `ccomp` input: a transparent background with opaque shapes
/// (discs and rectangles) — "separated by transparent pixels" (§III-C).
/// Returns the number of shapes drawn.
pub fn ccomp_scene(img: &mut Img2D<Rgba>, seed: u64) -> usize {
    img.fill(Rgba::TRANSPARENT);
    let dim = img.width().min(img.height());
    if dim < 8 {
        return 0;
    }
    let mut rng = Rng::seed(seed);
    // place non-overlapping discs on a coarse grid so components stay
    // separated (a margin of >= 1 transparent pixel between shapes)
    let cells = (dim / 8).clamp(2, 8);
    let cell = dim / cells;
    let mut shapes = 0;
    for gy in 0..cells {
        for gx in 0..cells {
            if !rng.gen_bool(0.5) {
                continue;
            }
            let r = cell / 4;
            if r == 0 {
                continue;
            }
            let cx = gx * cell + cell / 2;
            let cy = gy * cell + cell / 2;
            let color = Rgba::new(
                rng.gen_range(30u8..=255),
                rng.gen_range(30u8..=255),
                rng.gen_range(30u8..=255),
                255,
            );
            if rng.gen_bool(0.5) {
                fill_disc(img, cx, cy, r, color);
            } else {
                fill_rect(img, cx - r, cy - r, 2 * r, 2 * r, color);
            }
            shapes += 1;
        }
    }
    shapes
}

/// A glider (the classic 5-cell spaceship) stamped with its top-left
/// corner at `(x, y)`, travelling down-right.
pub const GLIDER: [(usize, usize); 5] = [(1, 0), (2, 1), (0, 2), (1, 2), (2, 2)];

/// Stamps a glider into a boolean cell closure (used by `life`).
pub fn stamp_glider(mut set: impl FnMut(usize, usize), x: usize, y: usize) {
    for &(dx, dy) in &GLIDER {
        set(x + dx, y + dy);
    }
}

/// Positions for the Fig. 13 dataset: gliders "evolving along the
/// diagonals of the image" — one every `spacing` cells down both
/// diagonals of a `dim`×`dim` board.
pub fn diagonal_glider_positions(dim: usize, spacing: usize) -> Vec<(usize, usize)> {
    let spacing = spacing.max(8);
    let mut out = Vec::new();
    let mut d = spacing / 2;
    while d + 8 < dim {
        out.push((d, d)); // main diagonal
        if dim - d >= 12 && d + 8 < dim {
            out.push((dim - d - 10, d)); // anti-diagonal
        }
        d += spacing;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_card_fills_every_pixel_opaquely() {
        let mut img = Img2D::square(32);
        test_card(&mut img);
        assert!(img.as_slice().iter().all(|p| p.a() == 255));
        // gradients: corners differ
        assert_ne!(img.get(0, 0), img.get(31, 31));
    }

    #[test]
    fn disc_is_inside_bounding_box_and_filled() {
        let mut img = Img2D::square(32);
        fill_disc(&mut img, 16, 16, 5, Rgba::RED);
        assert_eq!(img.get(16, 16), Rgba::RED);
        assert_eq!(img.get(16, 11), Rgba::RED); // on the radius
        assert_eq!(img.get(25, 16), Rgba::TRANSPARENT);
        // clipping: disc at the border must not panic
        fill_disc(&mut img, 0, 0, 10, Rgba::BLUE);
        assert_eq!(img.get(0, 0), Rgba::BLUE);
    }

    #[test]
    fn rect_clips_to_image() {
        let mut img = Img2D::square(16);
        fill_rect(&mut img, 12, 12, 100, 100, Rgba::GREEN);
        assert_eq!(img.get(15, 15), Rgba::GREEN);
        assert_eq!(img.get(11, 11), Rgba::TRANSPARENT);
    }

    #[test]
    fn ccomp_scene_is_reproducible_and_sparse() {
        let mut a = Img2D::square(64);
        let mut b = Img2D::square(64);
        let na = ccomp_scene(&mut a, 7);
        let nb = ccomp_scene(&mut b, 7);
        assert_eq!(na, nb);
        assert_eq!(a, b);
        assert!(na > 0, "seed 7 must draw something");
        let occ = a.occupancy();
        assert!(occ > 0.0 && occ < 0.5, "scene should be sparse, got {occ}");
        // a different seed gives a different scene
        let mut c = Img2D::square(64);
        ccomp_scene(&mut c, 8);
        assert_ne!(a, c);
    }

    /// Pins the PRNG-dependent output of the seeded scene generator: the
    /// first 16 opaque pixels (in row-major order) of `ccomp_scene` with
    /// the default seed must never change, or saved traces and recorded
    /// benchmarks stop being comparable across versions.
    #[test]
    fn ccomp_scene_first_cells_are_pinned() {
        let mut img = Img2D::square(64);
        ccomp_scene(&mut img, 42);
        let mut first: Vec<(usize, usize, [u8; 4])> = Vec::new();
        'scan: for y in 0..64 {
            for x in 0..64 {
                let p = img.get(x, y);
                if p.a() != 0 {
                    first.push((x, y, [p.r(), p.g(), p.b(), p.a()]));
                    if first.len() == 16 {
                        break 'scan;
                    }
                }
            }
        }
        let expected = vec![
            (10, 2, [116, 40, 159, 255]),
            (11, 2, [116, 40, 159, 255]),
            (12, 2, [116, 40, 159, 255]),
            (13, 2, [116, 40, 159, 255]),
            (18, 2, [224, 189, 62, 255]),
            (19, 2, [224, 189, 62, 255]),
            (20, 2, [224, 189, 62, 255]),
            (21, 2, [224, 189, 62, 255]),
            (44, 2, [95, 228, 254, 255]),
            (58, 2, [220, 189, 201, 255]),
            (59, 2, [220, 189, 201, 255]),
            (60, 2, [220, 189, 201, 255]),
            (61, 2, [220, 189, 201, 255]),
            (10, 3, [116, 40, 159, 255]),
            (11, 3, [116, 40, 159, 255]),
            (12, 3, [116, 40, 159, 255]),
        ];
        assert_eq!(first, expected);
    }

    #[test]
    fn tiny_ccomp_scene_is_empty_not_panicking() {
        let mut img = Img2D::square(4);
        assert_eq!(ccomp_scene(&mut img, 1), 0);
    }

    #[test]
    fn glider_positions_stay_in_bounds() {
        for dim in [64, 128, 256] {
            let pos = diagonal_glider_positions(dim, 16);
            assert!(!pos.is_empty());
            for &(x, y) in &pos {
                assert!(x + 3 <= dim && y + 3 <= dim, "glider at ({x},{y}) exceeds {dim}");
            }
        }
    }

    #[test]
    fn glider_positions_follow_diagonals() {
        let dim = 128;
        for &(x, y) in &diagonal_glider_positions(dim, 16) {
            let on_main = x == y;
            let on_anti = (x as i64 - (dim as i64 - y as i64 - 10)).abs() <= 1;
            assert!(on_main || on_anti, "({x},{y}) is on neither diagonal");
        }
    }

    #[test]
    fn stamp_glider_sets_five_cells() {
        let mut cells = std::collections::HashSet::new();
        stamp_glider(|x, y| {
            cells.insert((x, y));
        }, 10, 20);
        assert_eq!(cells.len(), 5);
        assert!(cells.contains(&(11, 20)));
        assert!(cells.contains(&(12, 22)));
    }
}
