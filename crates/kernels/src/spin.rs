//! The Spin kernel — EASYPAP's compute-bound demo: a color wheel whose
//! hue field rotates a little every iteration. Every pixel costs the
//! same (pure trigonometry, no memory traffic to speak of), making spin
//! the *balanced* counterpoint to `mandel`: static scheduling is already
//! optimal here, which students discover by comparing the two.

use ezp_core::color::hsv_to_rgba;
use ezp_core::error::{Error, Result};
use ezp_core::{Kernel, KernelCtx, Rgba};
use ezp_sched::parallel_for_tiles_img;

/// Pixel color for rotation angle `base_angle` (degrees).
#[inline]
pub fn spin_color(x: usize, y: usize, dim: usize, base_angle: f32) -> Rgba {
    let cx = x as f32 - dim as f32 / 2.0;
    let cy = y as f32 - dim as f32 / 2.0;
    let angle = cy.atan2(cx).to_degrees() + base_angle;
    let radius = (cx * cx + cy * cy).sqrt() / (dim as f32 / 2.0);
    hsv_to_rgba(angle, radius.clamp(0.0, 1.0), 1.0)
}

/// Rotation speed in degrees per iteration.
const SPEED: f32 = 5.0;

/// The spin kernel.
#[derive(Default)]
pub struct Spin {
    angle: f32,
}

impl Kernel for Spin {
    fn name(&self) -> &'static str {
        "spin"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "omp_tiled"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        self.angle = 0.0;
        ctx.images.cur_mut().fill(Rgba::BLACK);
        Ok(())
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        let dim = ctx.dim();
        match variant {
            "seq" => {
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    ctx.probe.start_tile(0);
                    let angle = self.angle;
                    ctx.images
                        .cur_mut()
                        .for_each_mut(|x, y, p| *p = spin_color(x, y, dim, angle));
                    ctx.probe.end_tile(0, 0, dim, dim, 0);
                    self.angle += SPEED;
                    ctx.probe.iteration_end(it);
                }
            }
            "omp_tiled" => {
                let grid = ctx.grid;
                let schedule = ctx.cfg.schedule;
                let mut pool = ezp_sched::acquire_pool(ctx.threads());
                for it in 1..=nb_iter {
                    ctx.probe.iteration_start(it);
                    let angle = self.angle;
                    parallel_for_tiles_img(
                        &mut pool,
                        &grid,
                        schedule,
                        &*ctx.probe,
                        ctx.images.cur_mut(),
                        |w, _| {
                            let t = w.tile();
                            for y in t.y..t.y + t.h {
                                for x in t.x..t.x + t.w {
                                    w.set(x, y, spin_color(x, y, dim, angle));
                                }
                            }
                        },
                    );
                    self.angle += SPEED;
                    ctx.probe.iteration_end(it);
                }
            }
            other => {
                return Err(Error::UnknownKernel {
                    kernel: "spin".into(),
                    variant: other.into(),
                })
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::RunConfig;

    fn run(variant: &str, iters: u32) -> Vec<Rgba> {
        let mut ctx = KernelCtx::new(RunConfig::new("spin").size(32).tile(8).threads(3)).unwrap();
        let mut k = Spin::default();
        k.init(&mut ctx).unwrap();
        k.compute(&mut ctx, variant, iters).unwrap();
        ctx.images.cur().as_slice().to_vec()
    }

    #[test]
    fn variants_agree() {
        assert_eq!(run("seq", 3), run("omp_tiled", 3));
    }

    #[test]
    fn image_rotates_between_iterations() {
        assert_ne!(run("seq", 1), run("seq", 2));
    }

    #[test]
    fn center_is_unsaturated_border_saturated() {
        let out = run("seq", 1);
        let center = out[16 * 32 + 16];
        // near-zero radius -> near-white (saturation ~ 0)
        assert!(center.r() > 200 && center.g() > 200 && center.b() > 200);
        let corner = out[0];
        let spread = corner.r().abs_diff(corner.g()).max(corner.g().abs_diff(corner.b()));
        assert!(spread > 50, "corner should be saturated, got {corner:?}");
    }
}
