//! The Abelian sandpile kernel (paper §II-A).
//!
//! Cells hold grains of sand; any cell with 4 or more grains topples,
//! sending one grain to each 4-neighbour. The synchronous (Jacobi)
//! update used here double-buffers the grain counts, so tiles can be
//! computed in parallel without ordering constraints; the final stable
//! configuration of the abelian sandpile is famously independent of the
//! toppling order, which the tests exploit.

use ezp_core::error::{Error, Result};
use ezp_core::{Img2D, Kernel, KernelCtx, Rgba};
use ezp_sched::parallel_for_tiles_img;

/// Synchronous sandpile step of one tile: `next = cur - 4*(cur>=4) +
/// incoming topples`. Returns true when the tile changed.
fn step_tile(cur: &Img2D<u32>, w: &ezp_sched::TileWriter<'_, '_, u32>) -> bool {
    let t = w.tile();
    let (width, height) = (cur.width(), cur.height());
    let mut changed = false;
    for y in t.y..t.y + t.h {
        for x in t.x..t.x + t.w {
            let mut v = cur.get(x, y);
            if v >= 4 {
                v -= 4;
            }
            let mut incoming = 0;
            if x > 0 && cur.get(x - 1, y) >= 4 {
                incoming += 1;
            }
            if x + 1 < width && cur.get(x + 1, y) >= 4 {
                incoming += 1;
            }
            if y > 0 && cur.get(x, y - 1) >= 4 {
                incoming += 1;
            }
            if y + 1 < height && cur.get(x, y + 1) >= 4 {
                incoming += 1;
            }
            let new = v + incoming;
            if new != cur.get(x, y) {
                changed = true;
            }
            w.set(x, y, new);
        }
    }
    changed
}

/// Grain count → display color (0..3 stable shades, ≥4 bright red).
pub fn grain_color(grains: u32) -> Rgba {
    match grains {
        0 => Rgba::BLACK,
        1 => Rgba::new(40, 40, 120, 255),
        2 => Rgba::new(60, 120, 180, 255),
        3 => Rgba::new(220, 200, 80, 255),
        _ => Rgba::new(255, 60, 40, 255),
    }
}

/// The sandpile kernel: double-buffered grain grids.
pub struct Sandpile {
    cur: Img2D<u32>,
    next: Img2D<u32>,
}

impl Default for Sandpile {
    fn default() -> Self {
        Sandpile {
            cur: Img2D::new(0, 0),
            next: Img2D::new(0, 0),
        }
    }
}

impl Sandpile {
    /// Read access to the grain grid (tests, examples).
    pub fn grains(&self) -> &Img2D<u32> {
        &self.cur
    }

    /// True when no cell can topple.
    pub fn is_stable(&self) -> bool {
        self.cur.as_slice().iter().all(|&v| v < 4)
    }

    fn compute_seq(&mut self, ctx: &mut KernelCtx, nb_iter: u32) -> Option<u32> {
        let dim = ctx.dim();
        let grid = ctx.grid;
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            let mut changed = false;
            {
                let cell = ezp_sched::ImgCell::new(&mut self.next);
                for t in grid.iter() {
                    ctx.probe.start_tile(0);
                    if step_tile(&self.cur, &cell.tile_writer(t)) {
                        changed = true;
                    }
                    ctx.probe.end_tile(t.x, t.y, t.w, t.h, 0);
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            ctx.probe.iteration_end(it);
            let _ = dim;
            if !changed {
                return Some(it);
            }
        }
        None
    }

    /// Asynchronous (Gauss-Seidel) toppling: cells topple *in place*
    /// during the sweep, so an avalanche can travel the whole grid in
    /// one iteration. The abelian property of the sandpile guarantees
    /// the same final stable configuration as the synchronous scheme —
    /// a striking invariant the tests pin down (EASYPAP ships the same
    /// pair as `ssandPile` / `asandPile`).
    fn compute_async(&mut self, ctx: &mut KernelCtx, nb_iter: u32) -> Option<u32> {
        let dim = ctx.dim();
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            ctx.probe.start_tile(0);
            let mut changed = false;
            for y in 0..dim {
                for x in 0..dim {
                    let v = self.cur.get(x, y);
                    if v >= 4 {
                        let q = v / 4;
                        self.cur.set(x, y, v % 4);
                        if x > 0 {
                            self.cur.set(x - 1, y, self.cur.get(x - 1, y) + q);
                        }
                        if x + 1 < dim {
                            self.cur.set(x + 1, y, self.cur.get(x + 1, y) + q);
                        }
                        if y > 0 {
                            self.cur.set(x, y - 1, self.cur.get(x, y - 1) + q);
                        }
                        if y + 1 < dim {
                            self.cur.set(x, y + 1, self.cur.get(x, y + 1) + q);
                        }
                        changed = true;
                    }
                }
            }
            ctx.probe.end_tile(0, 0, dim, dim, 0);
            ctx.probe.iteration_end(it);
            if !changed {
                return Some(it);
            }
        }
        None
    }

    fn compute_tiled(&mut self, ctx: &mut KernelCtx, nb_iter: u32) -> Option<u32> {
        let grid = ctx.grid;
        let schedule = ctx.cfg.schedule;
        let mut pool = ezp_sched::acquire_pool(ctx.threads());
        for it in 1..=nb_iter {
            ctx.probe.iteration_start(it);
            let changed = std::sync::atomic::AtomicBool::new(false);
            {
                let cur = &self.cur;
                parallel_for_tiles_img(
                    &mut pool,
                    &grid,
                    schedule,
                    &*ctx.probe,
                    &mut self.next,
                    |w, _| {
                        if step_tile(cur, w) {
                            changed.store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                    },
                );
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            ctx.probe.iteration_end(it);
            if !changed.load(std::sync::atomic::Ordering::Relaxed) {
                return Some(it);
            }
        }
        None
    }
}

impl Kernel for Sandpile {
    fn name(&self) -> &'static str {
        "sandpile"
    }

    fn variants(&self) -> Vec<&'static str> {
        vec!["seq", "async", "omp_tiled"]
    }

    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        let dim = ctx.dim();
        self.cur = Img2D::new(dim, dim);
        self.next = Img2D::new(dim, dim);
        // --arg N drops N grains in the center (default: a big central pile)
        let grains: u32 = match &ctx.cfg.kernel_arg {
            Some(a) => a
                .parse()
                .map_err(|_| Error::Config(format!("sandpile: bad grain count `{a}`")))?,
            None => (dim * dim / 4) as u32,
        };
        self.cur.set(dim / 2, dim / 2, grains);
        self.refresh_image(ctx)
    }

    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>> {
        match variant {
            "seq" => Ok(self.compute_seq(ctx, nb_iter)),
            "async" => Ok(self.compute_async(ctx, nb_iter)),
            "omp_tiled" => Ok(self.compute_tiled(ctx, nb_iter)),
            other => Err(Error::UnknownKernel {
                kernel: "sandpile".into(),
                variant: other.into(),
            }),
        }
    }

    fn refresh_image(&mut self, ctx: &mut KernelCtx) -> Result<()> {
        let img = ctx.images.cur_mut();
        for y in 0..img.height() {
            for x in 0..img.width() {
                img.set(x, y, grain_color(self.cur.get(x, y)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::RunConfig;

    fn run(variant: &str, dim: usize, grains: u32, iters: u32) -> (Sandpile, Option<u32>) {
        let mut cfg = RunConfig::new("sandpile").size(dim).tile(8).threads(3);
        cfg.kernel_arg = Some(grains.to_string());
        let mut ctx = KernelCtx::new(cfg).unwrap();
        let mut k = Sandpile::default();
        k.init(&mut ctx).unwrap();
        let conv = k.compute(&mut ctx, variant, iters).unwrap();
        (k, conv)
    }

    #[test]
    fn grains_are_conserved_on_interior_topples() {
        // few grains, nothing reaches the border: total is conserved
        let (k, conv) = run("seq", 32, 100, 1000);
        assert!(conv.is_some(), "small pile must stabilize");
        let total: u32 = k.grains().as_slice().iter().sum();
        assert_eq!(total, 100);
        assert!(k.is_stable());
    }

    #[test]
    fn stable_configuration_has_no_cell_above_3() {
        let (k, conv) = run("seq", 32, 500, 5000);
        assert!(conv.is_some());
        assert!(k.grains().as_slice().iter().all(|&v| v < 4));
    }

    #[test]
    fn parallel_matches_seq() {
        let (a, ca) = run("seq", 32, 300, 200);
        let (b, cb) = run("omp_tiled", 32, 300, 200);
        assert_eq!(a.grains(), b.grains());
        assert_eq!(ca, cb);
    }

    #[test]
    fn final_pile_is_symmetric() {
        // the sandpile identity: a centered pile stabilizes to a
        // 4-fold-symmetric pattern
        let (k, conv) = run("seq", 33, 400, 5000); // odd dim: exact center
        assert!(conv.is_some());
        let g = k.grains();
        for y in 0..33 {
            for x in 0..33 {
                assert_eq!(g.get(x, y), g.get(32 - x, y));
                assert_eq!(g.get(x, y), g.get(x, 32 - y));
            }
        }
    }

    #[test]
    fn abelian_property_async_equals_sync() {
        // the final stable configuration is independent of toppling
        // order — Gauss-Seidel and Jacobi agree exactly
        let (sync, cs) = run("seq", 33, 400, 5000);
        let (asynchronous, ca) = run("async", 33, 400, 5000);
        assert!(cs.is_some() && ca.is_some());
        assert_eq!(sync.grains(), asynchronous.grains());
        // and the async scheme needs (far) fewer iterations
        assert!(ca.unwrap() <= cs.unwrap());
    }

    #[test]
    fn async_conserves_interior_grains() {
        let (k, conv) = run("async", 32, 100, 1000);
        assert!(conv.is_some());
        let total: u32 = k.grains().as_slice().iter().sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn zero_grains_converges_immediately() {
        let (_, conv) = run("omp_tiled", 16, 0, 10);
        assert_eq!(conv, Some(1));
    }

    #[test]
    fn grain_colors_are_distinct() {
        let colors: Vec<Rgba> = (0..5).map(grain_color).collect();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(colors[i], colors[j]);
            }
        }
    }
}
