//! Minimal JSON emit/parse, replacing `serde`/`serde_json` for the
//! workspace's needs: trace metadata, `.ezv` JSON export, `easyview`
//! input, and the simulated-MPI message payloads.
//!
//! Design notes:
//!
//! * Integers keep their exact width: [`Json::UInt`] covers `0..=u64::MAX`
//!   and [`Json::Int`] negative values. This matters because open iteration
//!   spans use `end_ns == u64::MAX` as a sentinel, which a single-f64
//!   number representation would silently corrupt.
//! * Object fields preserve insertion order (a `Vec` of pairs, not a map),
//!   so emitted documents are stable and diffable.
//! * [`ToJson`] / [`FromJson`] play the role of `Serialize` /
//!   `DeserializeOwned` in generic bounds (see `ezp-mpi`).

use crate::error::{Error, Result};
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (also produced for `0`).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Number with a fractional part or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Decode a required object field into a concrete type.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T> {
        let v = self
            .get(key)
            .ok_or_else(|| Error::Json(format!("missing field `{key}`")))?;
        T::from_json(v).map_err(|e| Error::Json(format!("field `{key}`: {e}")))
    }

    /// View as an array.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(Error::Json(format!("expected array, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) | Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Serialize without whitespace.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that parses
                    // back to the same f64; force a fractional marker so the
                    // value re-parses as Float, not UInt.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // NaN/inf are not representable
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl)
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, level, '{', '}', fields.len(), |out, i, lvl| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, lvl)
                });
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(level + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Json(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: expect \uDC00..\uDFFF next
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else if let Some(neg) = text.strip_prefix('-') {
            // parse the magnitude as u64 then negate, so i64::MIN works
            let mag: u64 = neg.parse().map_err(|_| self.err("integer out of range"))?;
            if mag > i64::MAX as u64 + 1 {
                return Err(self.err("integer out of range"));
            }
            Ok(Json::Int((-(mag as i128)) as i64))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson — the serde replacement for generic payload bounds
// ---------------------------------------------------------------------------

/// Types that can be represented as a [`Json`] value.
pub trait ToJson {
    /// Convert `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Build `Self` from a JSON value.
    fn from_json(v: &Json) -> Result<Self>;
}

fn type_err(expected: &str, got: &Json) -> Error {
    Error::Json(format!("expected {expected}, got {}", got.kind()))
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<$ty> {
                let n = match v {
                    Json::UInt(n) => *n,
                    Json::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(type_err("unsigned integer", other)),
                };
                <$ty>::try_from(n)
                    .map_err(|_| Error::Json(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::UInt(v as u64) } else { Json::Int(v) }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<$ty> {
                let n: i64 = match v {
                    Json::Int(n) => *n,
                    Json::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::Json(format!("{n} out of range for i64")))?,
                    other => return Err(type_err("integer", other)),
                };
                <$ty>::try_from(n)
                    .map_err(|_| Error::Json(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64> {
        match v {
            Json::Float(x) => Ok(*x),
            Json::UInt(n) => Ok(*n as f64),
            Json::Int(n) => Ok(*n as f64),
            other => Err(type_err("number", other)),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(type_err("string", other)),
        }
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl ToJson for () {
    fn to_json(&self) -> Json {
        Json::Null
    }
}

impl FromJson for () {
    fn from_json(v: &Json) -> Result<()> {
        match v {
            Json::Null => Ok(()),
            other => Err(type_err("null", other)),
        }
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Json> {
        Ok(v.clone())
    }
}

macro_rules! impl_json_tuple {
    ($(($len:literal: $($T:ident . $idx:tt),+))*) => {$(
        impl<$($T: ToJson),+> ToJson for ($($T,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($T: FromJson),+> FromJson for ($($T,)+) {
            fn from_json(v: &Json) -> Result<Self> {
                let items = v.as_arr()?;
                if items.len() != $len {
                    return Err(Error::Json(format!(
                        "expected {}-tuple, got array of {}", $len, items.len()
                    )));
                }
                Ok(($($T::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_json_tuple! {
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        Json::parse(&v.dump()).unwrap()
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        // regression: `busy_ratio()` is INFINITY when a worker sat fully
        // idle; bare `inf`/`NaN` tokens would make --stats=json invalid
        for x in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(Json::Float(x).dump(), "null", "{x}");
        }
        // and a document containing one stays parseable
        let doc = Json::obj([("busy_ratio", Json::Float(f64::INFINITY))]);
        let back = Json::parse(&doc.dump()).unwrap();
        assert_eq!(back.get("busy_ratio"), Some(&Json::Null));
    }

    #[test]
    fn boundary_integers_round_trip_exactly() {
        for n in [0u64, 1, u64::MAX, u64::MAX - 1, i64::MAX as u64] {
            assert_eq!(round_trip(&Json::UInt(n)), Json::UInt(n), "u64 {n}");
        }
        for n in [-1i64, i64::MIN, i64::MIN + 1] {
            assert_eq!(round_trip(&Json::Int(n)), Json::Int(n), "i64 {n}");
        }
    }

    #[test]
    fn empty_containers_round_trip() {
        assert_eq!(round_trip(&Json::Arr(vec![])), Json::Arr(vec![]));
        assert_eq!(round_trip(&Json::Obj(vec![])), Json::Obj(vec![]));
    }

    #[test]
    fn nested_records_round_trip() {
        let v = Json::obj([
            ("name", Json::Str("mandel".into())),
            (
                "spans",
                Json::Arr(vec![
                    Json::obj([("start", Json::UInt(0)), ("end", Json::UInt(u64::MAX))]),
                    Json::obj([("start", Json::UInt(1)), ("end", Json::Null)]),
                ]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(round_trip(&v), v);
        // and through the pretty printer too
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        for s in ["", "plain", "with \"quotes\"", "tab\there\nnewline", "uni: é λ 🚀", "back\\slash"] {
            let v = Json::Str(s.to_string());
            assert_eq!(round_trip(&v), v, "string {s:?}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""Aé😀""#).unwrap(),
            Json::Str("Aé😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn floats_keep_fractional_marker() {
        let v = Json::Float(2.0);
        let text = v.dump();
        assert!(text.contains('.'), "got {text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Float(1500.0));
        assert_eq!(Json::parse("-0.25").unwrap(), Json::Float(-0.25));
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push('[');
        }
        assert!(Json::parse(&s).is_err());
    }

    #[test]
    fn object_field_access() {
        let v = Json::obj([("dim", Json::UInt(512)), ("label", Json::Null)]);
        assert_eq!(v.field::<usize>("dim").unwrap(), 512);
        assert_eq!(v.field::<Option<String>>("label").unwrap(), None);
        assert!(v.field::<usize>("missing").is_err());
        assert!(v.field::<String>("dim").is_err());
    }

    #[test]
    fn derived_impls_round_trip() {
        let pairs: (u32, Vec<bool>) = (7, vec![true, false, true]);
        assert_eq!(
            <(u32, Vec<bool>)>::from_json(&pairs.to_json()).unwrap(),
            pairs
        );
        let triple: (usize, u32, usize) = (1, 2, 3);
        assert_eq!(
            <(usize, u32, usize)>::from_json(&triple.to_json()).unwrap(),
            triple
        );
        let nested: Vec<Vec<u64>> = vec![vec![], vec![u64::MAX]];
        assert_eq!(Vec::<Vec<u64>>::from_json(&nested.to_json()).unwrap(), nested);
        assert_eq!(i32::from_json(&(-5i32).to_json()).unwrap(), -5);
        assert_eq!(f64::from_json(&1.25f64.to_json()).unwrap(), 1.25);
    }

    #[test]
    fn uint_int_cross_acceptance() {
        // A non-negative Int is acceptable where a UInt is expected and
        // vice versa, as long as the value fits.
        assert_eq!(u64::from_json(&Json::Int(5)).unwrap(), 5);
        assert_eq!(i64::from_json(&Json::UInt(5)).unwrap(), 5);
        assert!(u32::from_json(&Json::UInt(1 << 40)).is_err());
        assert!(i64::from_json(&Json::UInt(u64::MAX)).is_err());
        assert!(u64::from_json(&Json::Int(-1)).is_err());
    }
}
