//! Error type shared across the workspace.

use std::fmt;

/// Convenience alias used throughout `ezp-*` crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the framework.
#[derive(Debug)]
pub enum Error {
    /// Command-line / configuration problem (unknown option, bad value...).
    Config(String),
    /// A `(kernel, variant)` pair that is not registered.
    UnknownKernel {
        /// The requested kernel name.
        kernel: String,
        /// The requested variant name (`*` when the kernel itself is unknown).
        variant: String,
    },
    /// Geometry problem: tile size or dimensions are invalid.
    Geometry(String),
    /// Trace file is corrupt, truncated or has an unsupported version.
    TraceFormat(String),
    /// JSON text could not be parsed or mapped onto the expected shape.
    Json(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A worker thread panicked during a parallel section.
    WorkerPanic(String),
    /// MPI-simulation failure (rank out of range, type mismatch...).
    Mpi(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::UnknownKernel { kernel, variant } => {
                write!(f, "no variant `{variant}` registered for kernel `{kernel}`")
            }
            Error::Geometry(msg) => write!(f, "geometry error: {msg}"),
            Error::TraceFormat(msg) => write!(f, "trace format error: {msg}"),
            Error::Json(msg) => write!(f, "JSON error: {msg}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::WorkerPanic(msg) => write!(f, "worker thread panicked: {msg}"),
            Error::Mpi(msg) => write!(f, "MPI simulation error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::UnknownKernel {
            kernel: "mandel".into(),
            variant: "omp".into(),
        };
        let s = e.to_string();
        assert!(s.contains("mandel") && s.contains("omp"));

        assert!(Error::Config("bad".into()).to_string().contains("bad"));
        assert!(Error::Geometry("g".into()).to_string().contains("g"));
        assert!(Error::TraceFormat("t".into()).to_string().contains("t"));
        assert!(Error::Json("brace".into()).to_string().contains("brace"));
        assert!(Error::Mpi("rank".into()).to_string().contains("rank"));
    }

    #[test]
    fn io_error_round_trips_through_from() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let e = Error::Config("x".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
