//! # ezp-core — the EASYPAP framework spine
//!
//! This crate provides the pieces every other crate of the workspace builds
//! on: square (and rectangular) 2D image buffers with double buffering, the
//! tile-grid geometry used to decompose images into units of parallel work,
//! run-time configuration mirroring the `easypap` command line of the paper,
//! the kernel/variant registry, the performance-mode timing and CSV output,
//! and small shared vocabulary types (`Schedule`, `WorkerId`, colors).
//!
//! The original EASYPAP is a C framework where `easypap --kernel mandel
//! --variant omp_tiled --tile-size 16 --iterations 50 --no-display` runs a
//! kernel variant to completion and reports wall-clock time plus a CSV row.
//! `ezp-core` reproduces that contract as a library: [`RunConfig`] is the
//! parsed command line, [`registry::Registry`] maps `(kernel, variant)`
//! pairs to implementations, and [`perf`] produces the same observable
//! output (`50 iterations completed in 579 ms` + CSV).

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod color;
pub mod csv;
pub mod error;
pub mod grid;
pub mod img;
pub mod json;
pub mod kernel;
pub mod log;
pub mod park;
pub mod params;
pub mod perf;
pub mod registry;
#[cfg(feature = "ezp-check")]
pub mod shadow;
pub mod svg;
pub mod time;

pub use color::Rgba;
pub use error::{Error, Result};
pub use grid::{Tile, TileGrid};
pub use img::{Img2D, ImagePair};
pub use kernel::{Kernel, KernelCtx};
pub use params::{ChanBackendKind, ChanTuning, EmitMode, RunConfig, Schedule, WaitPolicy};
pub use registry::Registry;

/// Rank of a worker thread (0-based), mirroring `omp_get_thread_num()` in
/// the paper's instrumented `do_tile` function.
pub type WorkerId = usize;

/// Default image dimension when `--size` is not given, as in EASYPAP.
pub const DEFAULT_DIM: usize = 1024;

/// Default tile edge when `--tile-size` is not given.
pub const DEFAULT_TILE_SIZE: usize = 32;
