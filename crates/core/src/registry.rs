//! The kernel/variant registry.
//!
//! EASYPAP discovers `<kernel>_compute_<variant>` symbols at link time;
//! the Rust equivalent is an explicit registry mapping kernel names to
//! factories. "New kernels can obviously be easily added" (§II-A):
//! register a factory and the CLI, the sweep runner and the examples can
//! all reach it by name.

use crate::error::{Error, Result};
use crate::kernel::Kernel;
use std::collections::BTreeMap;

/// Factory producing a fresh kernel instance for one run.
pub type KernelFactory = fn() -> Box<dyn Kernel>;

/// Maps `--kernel` names to kernel factories.
#[derive(Default)]
pub struct Registry {
    factories: BTreeMap<String, KernelFactory>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `factory` under `name`, replacing any previous entry.
    pub fn register(&mut self, name: &str, factory: KernelFactory) -> &mut Self {
        self.factories.insert(name.to_string(), factory);
        self
    }

    /// Instantiates the kernel registered under `name`.
    pub fn create(&self, name: &str) -> Result<Box<dyn Kernel>> {
        self.factories
            .get(name)
            .map(|f| f())
            .ok_or_else(|| Error::UnknownKernel {
                kernel: name.to_string(),
                variant: "*".to_string(),
            })
    }

    /// Instantiates a kernel and checks that it offers `variant`.
    pub fn create_variant(&self, name: &str, variant: &str) -> Result<Box<dyn Kernel>> {
        let k = self.create(name)?;
        if !k.variants().contains(&variant) {
            return Err(Error::UnknownKernel {
                kernel: name.to_string(),
                variant: variant.to_string(),
            });
        }
        Ok(k)
    }

    /// Registered kernel names, sorted.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelCtx;

    struct Dummy;

    impl Kernel for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn variants(&self) -> Vec<&'static str> {
            vec!["seq", "par"]
        }
        fn init(&mut self, _ctx: &mut KernelCtx) -> Result<()> {
            Ok(())
        }
        fn compute(&mut self, _ctx: &mut KernelCtx, _v: &str, _n: u32) -> Result<Option<u32>> {
            Ok(None)
        }
    }

    fn make_dummy() -> Box<dyn Kernel> {
        Box::new(Dummy)
    }

    #[test]
    fn register_and_create() {
        let mut reg = Registry::new();
        reg.register("dummy", make_dummy);
        assert!(reg.contains("dummy"));
        assert_eq!(reg.kernel_names(), vec!["dummy"]);
        let k = reg.create("dummy").unwrap();
        assert_eq!(k.name(), "dummy");
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        let reg = Registry::new();
        assert!(matches!(
            reg.create("mandel"),
            Err(Error::UnknownKernel { .. })
        ));
    }

    #[test]
    fn variant_checking() {
        let mut reg = Registry::new();
        reg.register("dummy", make_dummy);
        assert!(reg.create_variant("dummy", "seq").is_ok());
        assert!(reg.create_variant("dummy", "par").is_ok());
        let err = match reg.create_variant("dummy", "gpu") {
            Err(e) => e,
            Ok(_) => panic!("expected UnknownKernel error"),
        };
        assert!(err.to_string().contains("gpu"));
    }

    #[test]
    fn names_are_sorted() {
        let mut reg = Registry::new();
        reg.register("zeta", make_dummy).register("alpha", make_dummy);
        assert_eq!(reg.kernel_names(), vec!["alpha", "zeta"]);
    }
}
