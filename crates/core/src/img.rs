//! 2D image buffers and the double-buffering scheme used by stencil kernels.
//!
//! EASYPAP exposes images through the `cur_img(y, x)` / `next_img(y, x)`
//! macros and swaps the two buffers between iterations (see the `blur`
//! kernel, §III-B of the paper). [`Img2D`] is the generic buffer and
//! [`ImagePair`] is the swap-able current/next pair.

use crate::color::Rgba;
use crate::error::{Error, Result};

/// A dense row-major 2D buffer of `T`.
///
/// EASYPAP "works on square shape images" but nothing in the framework
/// actually requires squareness, so width and height are kept separate;
/// the [`Img2D::square`] constructor covers the common case.
#[derive(Clone, PartialEq, Eq)]
pub struct Img2D<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for Img2D<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Img2D({}x{})", self.width, self.height)
    }
}

impl<T: Copy + Default> Img2D<T> {
    /// Creates a `width`×`height` buffer filled with `T::default()`.
    pub fn new(width: usize, height: usize) -> Self {
        Img2D {
            width,
            height,
            data: vec![T::default(); width * height],
        }
    }

    /// Creates a `dim`×`dim` buffer, the shape used by every paper kernel.
    pub fn square(dim: usize) -> Self {
        Self::new(dim, dim)
    }

    /// Creates a buffer filled with `value`.
    pub fn filled(width: usize, height: usize, value: T) -> Self {
        Img2D {
            width,
            height,
            data: vec![value; width * height],
        }
    }
}

impl<T: Copy> Img2D<T> {
    /// Builds an image from an existing row-major vector.
    ///
    /// Returns [`Error::Geometry`] when `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != width * height {
            return Err(Error::Geometry(format!(
                "buffer length {} does not match {}x{}",
                data.len(),
                width,
                height
            )));
        }
        Ok(Img2D { width, height, data })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// For square images, the dimension (`DIM` in the paper). Panics in
    /// debug builds when the image is not square.
    #[inline]
    pub fn dim(&self) -> usize {
        debug_assert_eq!(self.width, self.height, "dim() on a non-square image");
        self.width
    }

    /// Reads pixel `(x, y)` — column then row, like `cur_img(y, x)` reversed.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Writes pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Bounds-checked read returning `None` outside the image. Handy for
    /// stencil border handling ("pixels located on the borders have less
    /// than 9 neighbours", §III-B).
    #[inline]
    pub fn try_get(&self, x: isize, y: isize) -> Option<T> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            None
        } else {
            Some(self.data[y as usize * self.width + x as usize])
        }
    }

    /// Borrow of row `y`.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutable borrow of row `y`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [T] {
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// The whole buffer in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the whole buffer in row-major order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Fills the whole image with `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Copies the contents of `src` (same geometry required).
    pub fn copy_from(&mut self, src: &Img2D<T>) {
        assert_eq!(
            (self.width, self.height),
            (src.width, src.height),
            "copy_from: geometry mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Splits the image into non-overlapping mutable horizontal bands of
    /// `rows_per_band` rows (the last band may be shorter). This is the
    /// safe entry point for row-parallel kernels: each band can be handed
    /// to a different worker.
    pub fn bands_mut(&mut self, rows_per_band: usize) -> Vec<&mut [T]> {
        assert!(rows_per_band > 0, "bands_mut: zero rows per band");
        self.data.chunks_mut(rows_per_band * self.width).collect()
    }

    /// Applies `f` to every pixel coordinate in row-major order.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(usize, usize, &mut T)) {
        for y in 0..self.height {
            for x in 0..self.width {
                f(x, y, &mut self.data[y * self.width + x]);
            }
        }
    }
}

impl Img2D<Rgba> {
    /// Encodes the image as a binary PPM (P6) byte stream, dropping alpha.
    /// This replaces the SDL window of the original framework: examples
    /// and the CLI dump frames to `.ppm` files instead of a screen.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 3 + 32);
        out.extend_from_slice(format!("P6\n{} {}\n255\n", self.width, self.height).as_bytes());
        for px in &self.data {
            out.extend_from_slice(&[px.r(), px.g(), px.b()]);
        }
        out
    }

    /// Fraction of non-transparent pixels, used by sparse `life` datasets.
    pub fn occupancy(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let live = self.data.iter().filter(|p| !p.is_transparent()).count();
        live as f64 / self.data.len() as f64
    }
}

/// The current/next image pair with O(1) swap, mirroring EASYPAP's
/// `cur_img`/`next_img` globals and the inter-iteration swap of the
/// `blur` kernel.
#[derive(Clone, Debug)]
pub struct ImagePair {
    cur: Img2D<Rgba>,
    next: Img2D<Rgba>,
}

impl ImagePair {
    /// Creates a pair of `dim`×`dim` transparent images.
    pub fn square(dim: usize) -> Self {
        ImagePair {
            cur: Img2D::square(dim),
            next: Img2D::square(dim),
        }
    }

    /// Creates a pair whose *current* image is `cur`; the next image
    /// starts out as an identical copy so that untouched border pixels
    /// stay meaningful after a swap.
    pub fn from_image(cur: Img2D<Rgba>) -> Self {
        let next = cur.clone();
        ImagePair { cur, next }
    }

    /// Current image (what the display would show).
    #[inline]
    pub fn cur(&self) -> &Img2D<Rgba> {
        &self.cur
    }

    /// Mutable current image (for in-place kernels like `mandel`).
    #[inline]
    pub fn cur_mut(&mut self) -> &mut Img2D<Rgba> {
        &mut self.cur
    }

    /// Next image (what stencil kernels write).
    #[inline]
    pub fn next(&self) -> &Img2D<Rgba> {
        &self.next
    }

    /// Mutable next image.
    #[inline]
    pub fn next_mut(&mut self) -> &mut Img2D<Rgba> {
        &mut self.next
    }

    /// Simultaneous `(read, write)` borrow used by stencil kernels:
    /// reads come from `cur`, writes go to `next`.
    #[inline]
    pub fn rw(&mut self) -> (&Img2D<Rgba>, &mut Img2D<Rgba>) {
        (&self.cur, &mut self.next)
    }

    /// Swaps current and next in O(1) ("the two images are swapped
    /// between iterations", §III-B).
    #[inline]
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Dimension of the (square) pair.
    #[inline]
    pub fn dim(&self) -> usize {
        self.cur.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_default_filled() {
        let img: Img2D<u32> = Img2D::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert!(img.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn get_set_round_trip() {
        let mut img: Img2D<u32> = Img2D::square(8);
        img.set(3, 5, 42);
        assert_eq!(img.get(3, 5), 42);
        assert_eq!(img.get(5, 3), 0, "x/y must not be transposed");
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Img2D::from_vec(2, 2, vec![1u8; 4]).is_ok());
        assert!(matches!(
            Img2D::from_vec(2, 2, vec![1u8; 5]),
            Err(Error::Geometry(_))
        ));
    }

    #[test]
    fn try_get_handles_borders() {
        let img: Img2D<u8> = Img2D::filled(2, 2, 7);
        assert_eq!(img.try_get(0, 0), Some(7));
        assert_eq!(img.try_get(-1, 0), None);
        assert_eq!(img.try_get(0, -1), None);
        assert_eq!(img.try_get(2, 0), None);
        assert_eq!(img.try_get(0, 2), None);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut img: Img2D<u16> = Img2D::new(3, 2);
        img.row_mut(1).copy_from_slice(&[4, 5, 6]);
        assert_eq!(img.row(0), &[0, 0, 0]);
        assert_eq!(img.row(1), &[4, 5, 6]);
        assert_eq!(img.get(0, 1), 4);
    }

    #[test]
    fn bands_mut_partitions_rows() {
        let mut img: Img2D<u8> = Img2D::new(4, 10);
        let bands = img.bands_mut(4);
        assert_eq!(bands.len(), 3); // 4 + 4 + 2 rows
        assert_eq!(bands[0].len(), 16);
        assert_eq!(bands[2].len(), 8);
    }

    #[test]
    fn for_each_mut_visits_every_pixel_once() {
        let mut img: Img2D<u32> = Img2D::new(5, 7);
        img.for_each_mut(|_, _, p| *p += 1);
        assert!(img.as_slice().iter().all(|&v| v == 1));
        let mut count = 0;
        img.for_each_mut(|_, _, _| count += 1);
        assert_eq!(count, 35);
    }

    #[test]
    fn ppm_header_and_size() {
        let img: Img2D<Rgba> = Img2D::filled(2, 2, Rgba::RED);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n2 2\n255\n".len() + 4 * 3);
        assert_eq!(&ppm[ppm.len() - 3..], &[255, 0, 0]);
    }

    #[test]
    fn occupancy_counts_opaque_pixels() {
        let mut img: Img2D<Rgba> = Img2D::square(2);
        assert_eq!(img.occupancy(), 0.0);
        img.set(0, 0, Rgba::WHITE);
        assert_eq!(img.occupancy(), 0.25);
        let empty: Img2D<Rgba> = Img2D::new(0, 0);
        assert_eq!(empty.occupancy(), 0.0);
    }

    #[test]
    fn pair_swap_is_o1_and_correct() {
        let mut pair = ImagePair::square(2);
        pair.cur_mut().set(0, 0, Rgba::RED);
        pair.next_mut().set(0, 0, Rgba::BLUE);
        pair.swap();
        assert_eq!(pair.cur().get(0, 0), Rgba::BLUE);
        assert_eq!(pair.next().get(0, 0), Rgba::RED);
        pair.swap();
        assert_eq!(pair.cur().get(0, 0), Rgba::RED);
    }

    #[test]
    fn pair_rw_gives_disjoint_views() {
        let mut pair = ImagePair::square(2);
        pair.cur_mut().set(1, 1, Rgba::GREEN);
        let (r, w) = pair.rw();
        let v = r.get(1, 1);
        w.set(0, 0, v);
        assert_eq!(pair.next().get(0, 0), Rgba::GREEN);
    }

    #[test]
    fn from_image_clones_into_next() {
        let mut img = Img2D::square(2);
        img.set(0, 1, Rgba::YELLOW);
        let pair = ImagePair::from_image(img);
        assert_eq!(pair.next().get(0, 1), Rgba::YELLOW);
    }

    #[test]
    fn copy_from_copies_everything() {
        let src: Img2D<u8> = Img2D::filled(3, 3, 9);
        let mut dst: Img2D<u8> = Img2D::new(3, 3);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn copy_from_rejects_mismatched_geometry() {
        let src: Img2D<u8> = Img2D::new(2, 3);
        let mut dst: Img2D<u8> = Img2D::new(3, 2);
        dst.copy_from(&src);
    }
}
