//! Performance mode: run a kernel to completion, time it, report it.
//!
//! This is §II-C of the paper: with `--no-display` EASYPAP "runs silently
//! and reports the overall wall clock time after completion of the
//! requested number of iterations", prints
//! `50 iterations completed in 579 ms`, and appends the completion time
//! together with all execution/configuration parameters to a CSV file
//! that `easyplot` consumes.

use crate::csv::CsvTable;
use crate::error::Result;
use crate::kernel::{KernelCtx, Probe};
use crate::params::RunConfig;
use crate::registry::Registry;
use crate::time::Stopwatch;
use std::path::Path;
use std::sync::Arc;

/// The CSV schema of performance records. Matches the parameters shown in
/// the caption of the paper's Fig. 6 (`machine=... dim=... kernel=...
/// variant=... iterations=...` plus the swept ones).
pub const CSV_HEADER: [&str; 10] = [
    "machine",
    "kernel",
    "variant",
    "dim",
    "tile",
    "threads",
    "schedule",
    "iterations",
    "time_us",
    "run",
];

/// Outcome of one timed kernel run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The configuration that produced this outcome.
    pub cfg: RunConfig,
    /// Total wall-clock time in nanoseconds.
    pub elapsed_ns: u64,
    /// Iterations actually executed (may be less than requested when the
    /// kernel reports a steady state).
    pub completed_iterations: u32,
    /// `Some(it)` when the kernel converged at iteration `it`.
    pub converged_at: Option<u32>,
}

impl RunOutcome {
    /// Wall-clock time in microseconds (the CSV unit; the paper's
    /// `refTime=669009` is µs).
    pub fn time_us(&self) -> u64 {
        self.elapsed_ns / 1_000
    }

    /// The console line of the performance mode:
    /// `50 iterations completed in 579 ms`.
    pub fn summary(&self) -> String {
        format!(
            "{} iterations completed in {} ms",
            self.completed_iterations,
            self.elapsed_ns / 1_000_000
        )
    }

    /// This outcome as a CSV row under [`CSV_HEADER`]. `run` numbers
    /// repeated identical configurations (0-based).
    pub fn csv_row(&self, run: usize) -> Vec<String> {
        vec![
            machine_name(),
            self.cfg.kernel.clone(),
            self.cfg.variant.clone(),
            self.cfg.dim.to_string(),
            self.cfg.tile_size.to_string(),
            self.cfg.threads.to_string(),
            self.cfg.schedule.as_omp_str(),
            self.cfg.iterations.to_string(),
            self.time_us().to_string(),
            run.to_string(),
        ]
    }

    /// Appends this outcome to `path`, creating the file (with header) on
    /// first use.
    pub fn append_csv(&self, path: impl AsRef<Path>, run: usize) -> Result<()> {
        CsvTable::append_row_to_file(path, &CSV_HEADER, &self.csv_row(run))
    }
}

/// The machine identifier stored in the CSV `machine` column.
pub fn machine_name() -> String {
    std::env::var("EZP_MACHINE")
        .or_else(|_| std::env::var("HOSTNAME"))
        .unwrap_or_else(|_| "unknown".to_string())
}

/// Runs one kernel variant to completion under `cfg` and measures it.
///
/// This is EASYPAP's hidden main loop: instantiate the kernel, `init` it,
/// hand the whole iteration budget to the variant, stop the clock, then
/// refresh the image once so callers can inspect/dump the final frame.
/// Returns the outcome together with the final context (for image
/// inspection) — callers that only want numbers can drop it.
pub fn run_kernel(
    registry: &Registry,
    cfg: RunConfig,
    probe: Arc<dyn Probe>,
) -> Result<(RunOutcome, KernelCtx)> {
    run_kernel_boxed(registry, cfg, probe).map(|(outcome, ctx, _)| (outcome, ctx))
}

/// [`run_kernel`], additionally returning the kernel instance so callers
/// can query post-run state (e.g. [`crate::Kernel::stats_counters`]).
pub fn run_kernel_boxed(
    registry: &Registry,
    cfg: RunConfig,
    probe: Arc<dyn Probe>,
) -> Result<(RunOutcome, KernelCtx, Box<dyn crate::Kernel>)> {
    cfg.validate()?;
    let mut kernel = registry.create_variant(&cfg.kernel, &cfg.variant)?;
    let iterations = cfg.iterations;
    let variant = cfg.variant.clone();
    let mut ctx = KernelCtx::new(cfg.clone())?.with_probe(probe);
    kernel.init(&mut ctx)?;
    crate::time::init_clock();
    let sw = Stopwatch::start();
    let converged_at = kernel.compute(&mut ctx, &variant, iterations)?;
    let elapsed_ns = sw.elapsed_ns();
    kernel.refresh_image(&mut ctx)?;
    let completed_iterations = converged_at.unwrap_or(iterations);
    Ok((
        RunOutcome {
            cfg,
            elapsed_ns,
            completed_iterations,
            converged_at,
        },
        ctx,
        kernel,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Result as EzpResult;
    use crate::kernel::{Kernel, NullProbe};
    use crate::Rgba;

    /// A kernel that paints each pixel with the iteration count.
    struct Painter;

    impl Kernel for Painter {
        fn name(&self) -> &'static str {
            "painter"
        }
        fn variants(&self) -> Vec<&'static str> {
            vec!["seq", "half"]
        }
        fn init(&mut self, ctx: &mut KernelCtx) -> EzpResult<()> {
            ctx.images.cur_mut().fill(Rgba::BLACK);
            Ok(())
        }
        fn compute(
            &mut self,
            ctx: &mut KernelCtx,
            variant: &str,
            nb_iter: u32,
        ) -> EzpResult<Option<u32>> {
            let stop = if variant == "half" { nb_iter / 2 } else { nb_iter };
            for it in 1..=stop {
                ctx.probe.iteration_start(it);
                ctx.images.cur_mut().fill(Rgba(it));
                ctx.probe.iteration_end(it);
            }
            Ok(if stop < nb_iter { Some(stop) } else { None })
        }
    }

    fn reg() -> Registry {
        let mut r = Registry::new();
        r.register("painter", || Box::new(Painter));
        r
    }

    #[test]
    fn run_reports_iterations_and_time() {
        let cfg = RunConfig::new("painter").size(16).tile(8).iterations(10);
        let (out, ctx) = run_kernel(&reg(), cfg, Arc::new(NullProbe)).unwrap();
        assert_eq!(out.completed_iterations, 10);
        assert!(out.converged_at.is_none());
        assert_eq!(ctx.images.cur().get(0, 0), Rgba(10));
        let s = out.summary();
        assert!(s.starts_with("10 iterations completed in"));
        assert!(s.ends_with("ms"));
    }

    #[test]
    fn early_convergence_is_reported() {
        let cfg = RunConfig::new("painter")
            .variant("half")
            .size(16)
            .tile(8)
            .iterations(10);
        let (out, _) = run_kernel(&reg(), cfg, Arc::new(NullProbe)).unwrap();
        assert_eq!(out.converged_at, Some(5));
        assert_eq!(out.completed_iterations, 5);
    }

    #[test]
    fn unknown_variant_fails_before_running() {
        let cfg = RunConfig::new("painter").variant("gpu").size(16).tile(8);
        assert!(run_kernel(&reg(), cfg, Arc::new(NullProbe)).is_err());
    }

    #[test]
    fn csv_row_matches_header() {
        let cfg = RunConfig::new("painter").size(16).tile(8).iterations(3);
        let (out, _) = run_kernel(&reg(), cfg, Arc::new(NullProbe)).unwrap();
        let row = out.csv_row(2);
        assert_eq!(row.len(), CSV_HEADER.len());
        assert_eq!(row[1], "painter");
        assert_eq!(row[7], "3");
        assert_eq!(row[9], "2");
        assert_eq!(row[8], out.time_us().to_string());
    }

    #[test]
    fn csv_append_accumulates_runs() {
        let dir = std::env::temp_dir().join(format!("ezp_perf_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.csv");
        let _ = std::fs::remove_file(&path);
        let cfg = RunConfig::new("painter").size(16).tile(8).iterations(2);
        for run in 0..3 {
            let (out, _) = run_kernel(&reg(), cfg.clone(), Arc::new(NullProbe)).unwrap();
            out.append_csv(&path, run).unwrap();
        }
        let table = CsvTable::load(&path).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.column("run").unwrap(), vec!["0", "1", "2"]);
        std::fs::remove_file(&path).unwrap();
    }
}
