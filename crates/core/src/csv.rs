//! Minimal CSV reading/writing for the performance mode.
//!
//! EASYPAP's performance mode appends "the completion time, together with
//! all execution and configuration parameters" to a CSV file (§II-C) which
//! `easyplot` later filters and plots. This module provides the shared
//! table representation: a header row plus string cells, with semicolon
//! escaping kept deliberately simple (values are written quoted only when
//! they contain a separator).

use crate::error::{Error, Result};
use std::io::{BufRead, Write};
use std::path::Path;

/// Field separator. EASYPAP uses `;` in its CSV output? It actually uses
/// commas; we do the same.
const SEP: char = ',';

/// An in-memory CSV table: one header row and any number of data rows,
/// all cells kept as strings (types are the consumer's business, exactly
/// like a pandas `read_csv` in the original Python tooling).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsvTable {
    /// Column names.
    pub header: Vec<String>,
    /// Data rows; every row has `header.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates an empty table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Returns an error when the arity does not match the
    /// header — the "silently mixed experiments" mistake the paper's
    /// easyplot guards against.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) -> Result<()> {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        if row.len() != self.header.len() {
            return Err(Error::Config(format!(
                "CSV row has {} cells, header has {}",
                row.len(),
                self.header.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Index of column `name`.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// All values of column `name`, in row order.
    pub fn column(&self, name: &str) -> Option<Vec<&str>> {
        let i = self.col(name)?;
        Some(self.rows.iter().map(|r| r[i].as_str()).collect())
    }

    /// Serializes the table to CSV text.
    #[allow(clippy::inherent_to_string)] // CSV text, not a Display format
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&join_row(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&join_row(row));
            out.push('\n');
        }
        out
    }

    /// Parses CSV text. The first line is the header.
    pub fn parse(text: &str) -> Result<Self> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines
            .next()
            .ok_or_else(|| Error::Config("empty CSV input".into()))?;
        let header = split_row(header_line);
        let mut table = CsvTable {
            header,
            rows: Vec::new(),
        };
        for line in lines {
            let row = split_row(line);
            if row.len() != table.header.len() {
                return Err(Error::Config(format!(
                    "CSV row `{line}` has {} cells, expected {}",
                    row.len(),
                    table.header.len()
                )));
            }
            table.rows.push(row);
        }
        Ok(table)
    }

    /// Loads a table from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse(&text)
    }

    /// Writes the whole table to a file, replacing any previous content.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_string())?;
        Ok(())
    }

    /// Appends one row to a CSV file, writing the header first when the
    /// file does not exist yet — the exact behaviour of EASYPAP's
    /// performance mode across repeated runs.
    pub fn append_row_to_file(
        path: impl AsRef<Path>,
        header: &[&str],
        row: &[String],
    ) -> Result<()> {
        let path = path.as_ref();
        if row.len() != header.len() {
            return Err(Error::Config(format!(
                "CSV row has {} cells, header has {}",
                row.len(),
                header.len()
            )));
        }
        let exists = path.exists();
        if exists {
            // verify the on-disk header matches, so that runs with a
            // different schema never get silently mixed
            let file = std::fs::File::open(path)?;
            let mut first = String::new();
            std::io::BufReader::new(file).read_line(&mut first)?;
            let on_disk = split_row(first.trim_end());
            if on_disk != header {
                return Err(Error::Config(format!(
                    "CSV file {} has header {:?}, expected {:?}",
                    path.display(),
                    on_disk,
                    header
                )));
            }
        }
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        if !exists {
            writeln!(file, "{}", header.join(&SEP.to_string()))?;
        }
        writeln!(file, "{}", join_row(row))?;
        Ok(())
    }

    /// Keeps only the rows for which `pred` returns true.
    pub fn filter(&self, mut pred: impl FnMut(&CsvRowView<'_>) -> bool) -> CsvTable {
        CsvTable {
            header: self.header.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| {
                    pred(&CsvRowView {
                        header: &self.header,
                        cells: r,
                    })
                })
                .cloned()
                .collect(),
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row `i` as a name-addressable view.
    pub fn row(&self, i: usize) -> CsvRowView<'_> {
        CsvRowView {
            header: &self.header,
            cells: &self.rows[i],
        }
    }
}

/// A borrowed row with access by column name.
#[derive(Clone, Copy)]
pub struct CsvRowView<'a> {
    header: &'a [String],
    cells: &'a [String],
}

impl<'a> CsvRowView<'a> {
    /// Cell under column `name`.
    pub fn get(&self, name: &str) -> Option<&'a str> {
        let i = self.header.iter().position(|h| h == name)?;
        Some(self.cells[i].as_str())
    }

    /// Cell parsed as `T`.
    pub fn get_as<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.get(name)?.parse().ok()
    }
}

fn needs_quoting(cell: &str) -> bool {
    cell.contains(SEP) || cell.contains('"') || cell.contains('\n')
}

fn join_row<S: AsRef<str>>(cells: &[S]) -> String {
    cells
        .iter()
        .map(|c| {
            let c = c.as_ref();
            if needs_quoting(c) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(&SEP.to_string())
}

fn split_row(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            c if c == SEP && !in_quotes => {
                cells.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    cells.push(cur);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsvTable {
        let mut t = CsvTable::new(vec!["kernel", "threads", "time_us"]);
        t.push_row(vec!["mandel", "4", "1000"]).unwrap();
        t.push_row(vec!["mandel", "8", "600"]).unwrap();
        t
    }

    #[test]
    fn round_trip_through_text() {
        let t = sample();
        let parsed = CsvTable::parse(&t.to_string()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn quoting_round_trip() {
        let mut t = CsvTable::new(vec!["a", "b"]);
        t.push_row(vec!["has,comma", "has\"quote"]).unwrap();
        let parsed = CsvTable::parse(&t.to_string()).unwrap();
        assert_eq!(parsed.rows[0][0], "has,comma");
        assert_eq!(parsed.rows[0][1], "has\"quote");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        assert!(t.push_row(vec!["x"]).is_err());
        assert!(CsvTable::parse("a,b\n1,2,3\n").is_err());
        assert!(CsvTable::parse("").is_err());
    }

    #[test]
    fn column_access() {
        let t = sample();
        assert_eq!(t.column("threads").unwrap(), vec!["4", "8"]);
        assert!(t.column("nope").is_none());
        assert_eq!(t.row(1).get("time_us"), Some("600"));
        assert_eq!(t.row(1).get_as::<u64>("time_us"), Some(600));
        assert_eq!(t.row(0).get_as::<u64>("kernel"), None);
    }

    #[test]
    fn filter_by_predicate() {
        let t = sample();
        let fast = t.filter(|r| r.get_as::<u64>("time_us").unwrap() < 800);
        assert_eq!(fast.len(), 1);
        assert_eq!(fast.rows[0][1], "8");
    }

    #[test]
    fn append_creates_header_once() {
        let dir = std::env::temp_dir().join(format!("ezp_csv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.csv");
        let _ = std::fs::remove_file(&path);
        let header = ["kernel", "time_us"];
        CsvTable::append_row_to_file(&path, &header, &["mandel".into(), "10".into()]).unwrap();
        CsvTable::append_row_to_file(&path, &header, &["blur".into(), "20".into()]).unwrap();
        let t = CsvTable::load(&path).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.header, vec!["kernel", "time_us"]);
        // schema drift is rejected
        let bad = CsvTable::append_row_to_file(&path, &["other"], &["x".into()]);
        assert!(bad.is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parse_skips_blank_lines() {
        let t = CsvTable::parse("a,b\n\n1,2\n\n").unwrap();
        assert_eq!(t.len(), 1);
    }
}
