//! The kernel abstraction: computations over 2D images, organized in
//! variants, with monitoring hooks.
//!
//! In EASYPAP "functions performing computations on images are called
//! kernels" and every kernel comes in several *variants* (`seq`, `omp`,
//! `omp_tiled`, `mpi_omp`...) that students compare against each other
//! (§II-A). A [`Kernel`] owns whatever state the computation needs
//! (possibly "their own, low memory footprint data structures", §III-D)
//! and exposes its variants by name; [`KernelCtx`] carries the image
//! pair, the tile grid and the instrumentation probe.

use crate::error::Result;
use crate::grid::TileGrid;
use crate::img::ImagePair;
use crate::params::RunConfig;
use crate::WorkerId;
use std::sync::Arc;

/// The class of data race flagged by the `ezp-check` shadow-write
/// detector (see `ezp_core::shadow`, feature `ezp-check`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two concurrently-runnable writers (chunks or tasks with no
    /// dependency path between them) wrote the same pixel.
    OverlappingWrite,
    /// A reader observed a pixel whose last writer it is not ordered
    /// after — a missing dependency edge, the lost-update pattern.
    LostUpdate,
}

/// Why a worker was idle — the cause tag carried by
/// [`RuntimeEvent::IdleNs`].
///
/// The paper's monitor shows *that* a worker idled (a dark stripe); the
/// cause tag says *why*, which is what turns the timeline into a
/// diagnosis: a dependency stall wants a wider DAG, a barrier wait wants
/// a better schedule, backpressure wants a wider farm stage. Each cause
/// maps to one `idle_ns{cause="..."}` counter and one `idle:...` span
/// family in `ezp-perf`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IdleCause {
    /// A task-graph worker found every deque empty: its next task's
    /// dependencies had not released yet.
    DepStall,
    /// Time inside a dispenser acquiring the next chunk — lock-free CAS
    /// retries and steal scans on range-scheduled loops.
    Steal,
    /// Out of work at the end-of-loop barrier, waiting for stragglers.
    Barrier,
    /// Blocked in the worker pool's spin-then-park region protocol
    /// (between parallel regions, not inside one).
    PoolPark,
    /// A streamed frame was data-ready but a bounded inter-stage buffer
    /// or stage-width limit held it back (`ezp-stream` backpressure).
    Backpressure,
}

impl IdleCause {
    /// Every cause, in stable index order.
    pub const ALL: [IdleCause; 5] = [
        IdleCause::DepStall,
        IdleCause::Steal,
        IdleCause::Barrier,
        IdleCause::PoolPark,
        IdleCause::Backpressure,
    ];

    /// Stable dense index (`0..IdleCause::ALL.len()`), for per-cause
    /// counter tables.
    pub fn index(self) -> usize {
        match self {
            IdleCause::DepStall => 0,
            IdleCause::Steal => 1,
            IdleCause::Barrier => 2,
            IdleCause::PoolPark => 3,
            IdleCause::Backpressure => 4,
        }
    }

    /// The `cause` label value used in counter names and reports.
    pub fn label(self) -> &'static str {
        match self {
            IdleCause::DepStall => "dep_stall",
            IdleCause::Steal => "steal",
            IdleCause::Barrier => "barrier",
            IdleCause::PoolPark => "pool_park",
            IdleCause::Backpressure => "backpressure",
        }
    }
}

/// The dependency-edge families a task graph distinguishes, recorded
/// into traces so a run replays as a timed DAG (see
/// `ezp_sched::skeleton` for the streaming semantics of each family).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// A true data dependency: the consumer reads what the producer
    /// wrote (wavefront neighbors, a frame flowing stage to stage).
    Data,
    /// A stage-width (replication-limit) edge: at most `w` frames inside
    /// a streaming stage concurrently.
    Width,
    /// A bounded-buffer capacity edge: backpressure as graph structure.
    Capacity,
}

impl EdgeKind {
    /// Stable wire encoding (trace format v2).
    pub fn as_u8(self) -> u8 {
        match self {
            EdgeKind::Data => 0,
            EdgeKind::Width => 1,
            EdgeKind::Capacity => 2,
        }
    }

    /// Inverse of [`EdgeKind::as_u8`].
    pub fn from_u8(v: u8) -> Option<EdgeKind> {
        match v {
            0 => Some(EdgeKind::Data),
            1 => Some(EdgeKind::Width),
            2 => Some(EdgeKind::Capacity),
            _ => None,
        }
    }

    /// Human-readable family name.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Data => "data",
            EdgeKind::Width => "width",
            EdgeKind::Capacity => "capacity",
        }
    }
}

/// A scheduler/runtime event reported through [`Probe::runtime_event`].
///
/// These are the counter-shaped observations the scheduling layer can
/// make but has nowhere to store: how work was carved up, how long a
/// worker waited for its next chunk, whether it had to steal. Probes
/// that care (the `ezp-perf` counter probe) accumulate them into named
/// per-worker counters; everyone else inherits the no-op default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeEvent {
    /// A dispenser handed `len` iterations to the worker in one chunk.
    ChunkDispensed {
        /// Number of loop iterations in the chunk.
        len: usize,
    },
    /// Work-stealing activity of the worker over one parallel loop
    /// (reported once per loop, after the dispenser is drained).
    Steals {
        /// Times the worker entered steal mode (local range empty).
        attempted: u64,
        /// Steals that actually obtained work from a victim.
        succeeded: u64,
    },
    /// Nanoseconds the worker spent waiting instead of computing, tagged
    /// with *why* it waited. Every wait site in the scheduling layer
    /// (dispenser acquisition, task-graph stalls, barriers, pool parks,
    /// stream backpressure) reports through this one variant, so the
    /// per-cause counters always sum to the total idle time.
    IdleNs {
        /// Wait duration in nanoseconds.
        ns: u64,
        /// Why the worker was idle.
        cause: IdleCause,
    },
    /// The worker ran out of work and reached the end-of-loop barrier.
    BarrierWait,
    /// The worker waited for ready tasks in a task-graph run.
    TaskWait,
    /// A successful steal from another worker's ready deque in a
    /// task-graph run (the deque analogue of [`RuntimeEvent::Steals`],
    /// which covers range dispensers).
    DequeSteal,
    /// Blocking-fallback activity of the worker pool's lock-free epoch
    /// protocol over one parallel region: spin iterations burned and
    /// condvar parks taken while waiting for a region to open or close.
    /// Reported once per probed region, as a delta.
    PoolSync {
        /// Condvar parks (threads that genuinely blocked).
        parks: u64,
        /// Spin-phase iterations before the condition held.
        spins: u64,
    },
    /// The `ezp-check` shadow-write detector flagged a data race at pixel
    /// `(x, y)`: `writer` (a chunk or task id) conflicted with
    /// `prev_writer`, which last touched the pixel in the same parallel
    /// region. Emitted only by the feature-gated checking layer — normal
    /// runs never produce it.
    ShadowRace {
        /// Pixel column of the conflicting access.
        x: usize,
        /// Pixel row of the conflicting access.
        y: usize,
        /// Chunk/task id that previously wrote the pixel.
        prev_writer: usize,
        /// Chunk/task id of the conflicting access.
        writer: usize,
        /// Overlapping write or lost update.
        kind: RaceKind,
    },
    /// A streamed frame became data-ready but could not start its next
    /// stage because a bounded inter-stage buffer (or a stage's width
    /// limit) was full — one backpressure stall in an `ezp-stream`
    /// pipeline.
    StreamStall,
    /// A streamed frame left the pipeline's final stage and was handed
    /// to the output sink.
    StreamFrameEmitted,
    /// High-water-mark gauge: `frames` frames were simultaneously in
    /// flight inside a streaming pipeline. Counter probes fold this
    /// with `max`, not `add`.
    StreamInFlight {
        /// Concurrent frames observed at this instant.
        frames: usize,
    },
    /// High-water-mark gauge: the ordered-emission reorder buffer held
    /// `depth` completed frames waiting for an earlier frame to finish.
    StreamReorderDepth {
        /// Completed-but-unemitted frames at this instant.
        depth: usize,
    },
    /// High-water-mark gauge: some single stage had `depth` frames in
    /// service at once (its observed occupancy, bounded by the stage
    /// width).
    StreamStageOccupancy {
        /// Frames concurrently inside one stage at this instant.
        depth: usize,
    },
    /// Channel activity of an `ezp-chan` channel (or its `mpsc`
    /// baseline), reported as a delta snapshot by whoever owns the
    /// channel (the streaming engine per run, the MPI world at
    /// shutdown). Stall counts tally *episodes* — one per time an
    /// endpoint found the ring full/empty and had to wait — not retries.
    ChanOps {
        /// Items successfully sent.
        sends: u64,
        /// Items successfully received.
        recvs: u64,
        /// Times a sender found the channel full and had to wait.
        full_stalls: u64,
        /// Times a receiver found the channel empty and had to wait.
        empty_stalls: u64,
    },
}

/// Instrumentation hooks — the Rust face of the paper's
/// `monitoring_start_tile` / `monitoring_end_tile` calls (§II-B).
///
/// Implementations (the live monitor, the tracer, composites) are free to
/// record timestamps, update per-CPU activity, or do nothing at all
/// ([`NullProbe`]). Methods take `&self` because they are invoked
/// concurrently from worker threads; implementations use interior
/// mutability with per-worker slots.
pub trait Probe: Send + Sync {
    /// A new iteration begins.
    fn iteration_start(&self, _iteration: u32) {}
    /// The current iteration is complete.
    fn iteration_end(&self, _iteration: u32) {}
    /// Worker `worker` starts computing a tile (timestamp taken here).
    fn start_tile(&self, _worker: WorkerId) {}
    /// Worker `worker` finished the tile with the given pixel rectangle.
    fn end_tile(&self, _x: usize, _y: usize, _w: usize, _h: usize, _worker: WorkerId) {}
    /// A scheduler event occurred on `worker` (see [`RuntimeEvent`]).
    fn runtime_event(&self, _worker: WorkerId, _event: RuntimeEvent) {}
    /// Whether this probe consumes [`RuntimeEvent`]s. The scheduling
    /// layer checks this once per parallel loop and skips the clock
    /// reads that feed `IdleNs` when nobody is listening, keeping the
    /// uninstrumented hot path free of timer calls.
    fn wants_runtime_events(&self) -> bool {
        false
    }
    /// A dependency edge `from → to` (node ids of the executing task
    /// graph) of kind `kind` exists in the current region's DAG.
    /// Reported once per probed task-graph run, before execution starts,
    /// so tracers can record edge provenance alongside the task events.
    fn dep_edge(&self, _from: usize, _to: usize, _kind: EdgeKind) {}
    /// Whether this probe records [`Probe::dep_edge`] calls. Gated
    /// separately from `wants_runtime_events` because edge enumeration
    /// is O(edges) per region — only tracers should pay it.
    fn wants_dep_edges(&self) -> bool {
        false
    }
}

/// A probe that records nothing — used by the performance mode, where
/// "we need to completely eliminate the overhead of graphical updates".
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Broadcasts every event to several probes (e.g. live monitoring *and*
/// trace recording in the same run).
pub struct MultiProbe {
    probes: Vec<Arc<dyn Probe>>,
}

impl MultiProbe {
    /// Builds a composite over `probes`.
    pub fn new(probes: Vec<Arc<dyn Probe>>) -> Self {
        MultiProbe { probes }
    }
}

impl Probe for MultiProbe {
    fn iteration_start(&self, iteration: u32) {
        for p in &self.probes {
            p.iteration_start(iteration);
        }
    }
    fn iteration_end(&self, iteration: u32) {
        for p in &self.probes {
            p.iteration_end(iteration);
        }
    }
    fn start_tile(&self, worker: WorkerId) {
        for p in &self.probes {
            p.start_tile(worker);
        }
    }
    fn end_tile(&self, x: usize, y: usize, w: usize, h: usize, worker: WorkerId) {
        for p in &self.probes {
            p.end_tile(x, y, w, h, worker);
        }
    }
    fn runtime_event(&self, worker: WorkerId, event: RuntimeEvent) {
        for p in &self.probes {
            p.runtime_event(worker, event);
        }
    }
    fn wants_runtime_events(&self) -> bool {
        self.probes.iter().any(|p| p.wants_runtime_events())
    }
    fn dep_edge(&self, from: usize, to: usize, kind: EdgeKind) {
        for p in &self.probes {
            p.dep_edge(from, to, kind);
        }
    }
    fn wants_dep_edges(&self) -> bool {
        self.probes.iter().any(|p| p.wants_dep_edges())
    }
}

/// Everything a kernel variant needs at run time.
pub struct KernelCtx {
    /// The parsed command line.
    pub cfg: RunConfig,
    /// Tile decomposition implied by `--size` / `--tile-size`.
    pub grid: TileGrid,
    /// Current/next image pair.
    pub images: ImagePair,
    /// Instrumentation sink (never null — use [`NullProbe`]).
    pub probe: Arc<dyn Probe>,
}

impl KernelCtx {
    /// Builds a context from a validated configuration with a no-op probe.
    pub fn new(cfg: RunConfig) -> Result<Self> {
        let grid = cfg.grid()?;
        let images = ImagePair::square(cfg.dim);
        Ok(KernelCtx {
            cfg,
            grid,
            images,
            probe: Arc::new(NullProbe),
        })
    }

    /// Replaces the probe (builder style).
    pub fn with_probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = probe;
        self
    }

    /// Image dimension (`DIM`).
    #[inline]
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Worker count for parallel variants.
    #[inline]
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }
}

/// A 2D computation kernel with named variants.
///
/// `compute` runs `nb_iter` iterations of the requested variant in a row
/// (EASYPAP hands the whole iteration budget to the variant, which owns
/// the outer loop — see Fig. 1). The return value is `Some(it)` when the
/// computation reached a steady state at iteration `it < nb_iter`
/// (EASYPAP's early-termination convention, used by `ccomp` and lazy
/// `life`), `None` when all iterations were executed.
pub trait Kernel: Send {
    /// Kernel name as used by `--kernel`.
    fn name(&self) -> &'static str;

    /// Variant names accepted by `--variant`, for error messages and
    /// discovery (`easypap --kernel k --variant list` in the original).
    fn variants(&self) -> Vec<&'static str>;

    /// One-time initialization: fill the initial image, allocate kernel
    /// state. Called once before the first `compute`.
    fn init(&mut self, ctx: &mut KernelCtx) -> Result<()>;

    /// Runs `nb_iter` iterations of `variant`.
    fn compute(&mut self, ctx: &mut KernelCtx, variant: &str, nb_iter: u32) -> Result<Option<u32>>;

    /// For kernels computing in their own data structures: repaint
    /// `ctx.images` from that state ("such kernels simply have to update
    /// the current image when a graphical refresh is needed", §III-D).
    fn refresh_image(&mut self, _ctx: &mut KernelCtx) -> Result<()> {
        Ok(())
    }

    /// Extra named counters collected during `compute`, as
    /// `(name, per_worker_values)` rows — e.g. the per-rank MPI
    /// communication counts of a distributed variant. `--stats` merges
    /// them into the run's counter snapshot; most kernels have none.
    fn stats_counters(&self) -> Vec<(String, Vec<u64>)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    struct CountingProbe {
        starts: AtomicUsize,
        ends: AtomicUsize,
        iters: AtomicUsize,
    }

    impl Probe for CountingProbe {
        fn iteration_start(&self, _: u32) {
            self.iters.fetch_add(1, Ordering::Relaxed);
        }
        fn start_tile(&self, _: WorkerId) {
            self.starts.fetch_add(1, Ordering::Relaxed);
        }
        fn end_tile(&self, _: usize, _: usize, _: usize, _: usize, _: WorkerId) {
            self.ends.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn ctx_from_config() {
        let cfg = RunConfig::new("mandel").size(64).tile(16);
        let ctx = KernelCtx::new(cfg).unwrap();
        assert_eq!(ctx.dim(), 64);
        assert_eq!(ctx.grid.len(), 16);
        assert_eq!(ctx.images.dim(), 64);
    }

    #[test]
    fn null_probe_is_silent() {
        let p = NullProbe;
        p.iteration_start(0);
        p.start_tile(3);
        p.end_tile(0, 0, 4, 4, 3);
        p.iteration_end(0);
    }

    #[test]
    fn multi_probe_fans_out() {
        let a = Arc::new(CountingProbe::default());
        let b = Arc::new(CountingProbe::default());
        let multi = MultiProbe::new(vec![a.clone(), b.clone()]);
        multi.iteration_start(1);
        multi.start_tile(0);
        multi.end_tile(0, 0, 1, 1, 0);
        multi.iteration_end(1);
        for p in [&a, &b] {
            assert_eq!(p.iters.load(Ordering::Relaxed), 1);
            assert_eq!(p.starts.load(Ordering::Relaxed), 1);
            assert_eq!(p.ends.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn runtime_events_fan_out_and_gate() {
        struct EventProbe(AtomicUsize);
        impl Probe for EventProbe {
            fn runtime_event(&self, _: WorkerId, _: RuntimeEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn wants_runtime_events(&self) -> bool {
                true
            }
        }
        // a composite of silent probes stays silent...
        let silent = MultiProbe::new(vec![Arc::new(CountingProbe::default())]);
        assert!(!silent.wants_runtime_events());
        // ...one listener flips the gate for the whole stack
        let loud = Arc::new(EventProbe(AtomicUsize::new(0)));
        let multi = MultiProbe::new(vec![Arc::new(CountingProbe::default()), loud.clone()]);
        assert!(multi.wants_runtime_events());
        multi.runtime_event(0, RuntimeEvent::BarrierWait);
        multi.runtime_event(1, RuntimeEvent::ChunkDispensed { len: 4 });
        assert_eq!(loud.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn dep_edges_fan_out_and_gate() {
        struct EdgeProbe(AtomicUsize);
        impl Probe for EdgeProbe {
            fn dep_edge(&self, _: usize, _: usize, _: EdgeKind) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn wants_dep_edges(&self) -> bool {
                true
            }
        }
        let silent = MultiProbe::new(vec![Arc::new(CountingProbe::default())]);
        assert!(!silent.wants_dep_edges());
        let tracer = Arc::new(EdgeProbe(AtomicUsize::new(0)));
        let multi = MultiProbe::new(vec![Arc::new(CountingProbe::default()), tracer.clone()]);
        assert!(multi.wants_dep_edges());
        multi.dep_edge(0, 1, EdgeKind::Data);
        multi.dep_edge(3, 5, EdgeKind::Capacity);
        assert_eq!(tracer.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn idle_cause_and_edge_kind_encodings_are_stable() {
        for (i, c) in IdleCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        let labels: Vec<&str> = IdleCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["dep_stall", "steal", "barrier", "pool_park", "backpressure"]);
        for k in [EdgeKind::Data, EdgeKind::Width, EdgeKind::Capacity] {
            assert_eq!(EdgeKind::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(EdgeKind::from_u8(3), None);
    }

    #[test]
    fn with_probe_replaces_sink() {
        let cfg = RunConfig::new("mandel").size(32).tile(8);
        let probe = Arc::new(CountingProbe::default());
        let ctx = KernelCtx::new(cfg).unwrap().with_probe(probe.clone());
        ctx.probe.start_tile(0);
        assert_eq!(probe.starts.load(Ordering::Relaxed), 1);
    }
}
