//! Shadow-write race detection for tile grids (`ezp-check`).
//!
//! Every EASYPAP variant is supposed to partition the image into
//! disjoint writes — tiles for `parallel for` kernels, dependency-ordered
//! tiles for task graphs. This module checks that claim instead of
//! trusting it: a [`ShadowGrid`] keeps one epoch-tagged word per pixel,
//! and every checked access records *who* (which chunk or task id)
//! touched the pixel *when* (which parallel region). Two accesses to the
//! same pixel in the same region by writers with no happens-before path
//! between them are a data race, reported both as a [`ShadowRace`] value
//! and through the ordinary [`Probe::runtime_event`] channel as
//! [`RuntimeEvent::ShadowRace`] — so the same observability stack that
//! shows steals and idle time also shows races.
//!
//! Two race classes are distinguished (see [`RaceKind`]):
//!
//! * **overlapping write** — two concurrently-runnable writers wrote the
//!   same pixel. For a `parallel for`, "concurrently runnable" means
//!   *different chunks* (a chunk is sequential within itself); for a task
//!   graph it means no dependency path connects the two tasks.
//! * **lost update** — a reader consumed a pixel whose last writer it is
//!   not ordered after. In a task graph this is precisely a missing
//!   `depend` edge: the read may see the old or the new value depending
//!   on scheduling.
//!
//! Happens-before is supplied by the caller as a predicate
//! `precedes(a, b)` over writer ids, because only the caller knows the
//! structure: `ezp-check`'s virtual executor passes DAG reachability for
//! task graphs and the always-false oracle for loop chunks.
//!
//! The whole module is compiled only under the `ezp-check` feature; the
//! production scheduling path never sees a shadow word.

use crate::kernel::{Probe, RaceKind, RuntimeEvent};
use crate::WorkerId;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// One detected race: where, who, and what class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowRace {
    /// Pixel column.
    pub x: usize,
    /// Pixel row.
    pub y: usize,
    /// Writer id that last touched the pixel.
    pub prev_writer: usize,
    /// Writer/reader id of the conflicting access.
    pub writer: usize,
    /// Overlapping write or lost update.
    pub kind: RaceKind,
}

/// Epoch-tagged per-pixel write log.
///
/// Each pixel holds one `u64` tag: the high 32 bits are the epoch (the
/// parallel region number), the low 32 bits the writer id plus one
/// (zero means "never written"). Tags from earlier epochs are stale and
/// ignored, so one grid serves a whole multi-iteration run — call
/// [`ShadowGrid::begin_epoch`] at each region boundary instead of
/// reallocating.
pub struct ShadowGrid {
    width: usize,
    height: usize,
    // Both atomics are synchronizing via the spine, not locally
    // (via-the-spine): conflicting tag accesses are ordered by the
    // scheduler's region synchronization, and `begin_epoch` runs in
    // the single-threaded gap between regions; `Relaxed` only keeps
    // torn writes impossible so a true race stays a *detected* race.
    epoch: AtomicU32,
    tags: Vec<AtomicU64>,
}

impl ShadowGrid {
    /// A shadow log for a `width`×`height` image, starting in epoch 1.
    pub fn new(width: usize, height: usize) -> Self {
        ShadowGrid {
            width,
            height,
            epoch: AtomicU32::new(1),
            tags: (0..width * height).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Opens a new epoch (parallel region); previous epochs' writes no
    /// longer conflict with new ones. Returns the new epoch number.
    pub fn begin_epoch(&self) -> u32 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    #[inline]
    fn tag_of(epoch: u32, writer: usize) -> u64 {
        debug_assert!(writer < u32::MAX as usize, "writer id out of tag range");
        ((epoch as u64) << 32) | (writer as u64 + 1)
    }

    #[inline]
    fn split(tag: u64) -> Option<(u32, usize)> {
        let w = (tag & 0xFFFF_FFFF) as u32;
        if w == 0 {
            None
        } else {
            Some(((tag >> 32) as u32, w as usize - 1))
        }
    }

    /// Records that `writer` wrote pixel `(x, y)` in the current epoch.
    ///
    /// Returns the race if the pixel was already written this epoch by a
    /// different writer that `precedes` does not order before this one.
    /// Re-writes by the same writer are always allowed (a chunk/task is
    /// sequential within itself).
    pub fn record_write(
        &self,
        x: usize,
        y: usize,
        writer: usize,
        precedes: &dyn Fn(usize, usize) -> bool,
    ) -> Option<ShadowRace> {
        assert!(x < self.width && y < self.height, "shadow write out of image");
        let epoch = self.epoch.load(Ordering::Relaxed);
        let prev = self.tags[y * self.width + x].swap(Self::tag_of(epoch, writer), Ordering::Relaxed);
        match Self::split(prev) {
            Some((e, prev_writer))
                if e == epoch && prev_writer != writer && !precedes(prev_writer, writer) =>
            {
                Some(ShadowRace {
                    x,
                    y,
                    prev_writer,
                    writer,
                    kind: RaceKind::OverlappingWrite,
                })
            }
            _ => None,
        }
    }

    /// Records that `reader` read pixel `(x, y)` in the current epoch.
    ///
    /// Returns a [`RaceKind::LostUpdate`] race when the pixel's current
    /// value was produced this epoch by a writer the reader is not
    /// ordered after — i.e. the dependency edge that should make the
    /// value stable is missing.
    pub fn record_read(
        &self,
        x: usize,
        y: usize,
        reader: usize,
        precedes: &dyn Fn(usize, usize) -> bool,
    ) -> Option<ShadowRace> {
        assert!(x < self.width && y < self.height, "shadow read out of image");
        let epoch = self.epoch.load(Ordering::Relaxed);
        let tag = self.tags[y * self.width + x].load(Ordering::Relaxed);
        match Self::split(tag) {
            Some((e, writer)) if e == epoch && writer != reader && !precedes(writer, reader) => {
                Some(ShadowRace {
                    x,
                    y,
                    prev_writer: writer,
                    writer: reader,
                    kind: RaceKind::LostUpdate,
                })
            }
            _ => None,
        }
    }
}

/// One checked parallel region: a [`ShadowGrid`] plus the happens-before
/// oracle and the probe races are reported to.
///
/// The session hands out per-writer [`ShadowWriter`] handles; every
/// write/read goes through the grid, and detected races are both
/// accumulated (for assertions) and forwarded as
/// [`RuntimeEvent::ShadowRace`] (for observability).
pub struct ShadowSession<'a> {
    grid: &'a ShadowGrid,
    probe: &'a dyn Probe,
    precedes: Box<dyn Fn(usize, usize) -> bool + Sync + 'a>,
    races: Mutex<Vec<ShadowRace>>,
}

impl<'a> ShadowSession<'a> {
    /// Opens a checking session over `grid`. `precedes(a, b)` must return
    /// true when writer `a` is guaranteed to happen before writer `b`.
    pub fn new(
        grid: &'a ShadowGrid,
        probe: &'a dyn Probe,
        precedes: impl Fn(usize, usize) -> bool + Sync + 'a,
    ) -> Self {
        ShadowSession {
            grid,
            probe,
            precedes: Box::new(precedes),
            races: Mutex::new(Vec::new()),
        }
    }

    /// A session for `parallel for` chunks: distinct chunks are never
    /// ordered, so any cross-chunk same-pixel access races.
    pub fn for_chunks(grid: &'a ShadowGrid, probe: &'a dyn Probe) -> Self {
        ShadowSession::new(grid, probe, |_, _| false)
    }

    /// The access handle for writer `id` running on `rank`.
    pub fn writer(&self, id: usize, rank: WorkerId) -> ShadowWriter<'_, 'a> {
        ShadowWriter {
            session: self,
            id,
            rank,
        }
    }

    /// Races detected so far, in detection order.
    pub fn races(&self) -> Vec<ShadowRace> {
        self.races.lock().unwrap().clone()
    }

    fn report(&self, rank: WorkerId, race: ShadowRace) {
        self.races.lock().unwrap().push(race);
        self.probe.runtime_event(
            rank,
            RuntimeEvent::ShadowRace {
                x: race.x,
                y: race.y,
                prev_writer: race.prev_writer,
                writer: race.writer,
                kind: race.kind,
            },
        );
    }
}

/// Checked pixel access on behalf of one writer id (a chunk or task).
pub struct ShadowWriter<'s, 'a> {
    session: &'s ShadowSession<'a>,
    id: usize,
    rank: WorkerId,
}

impl ShadowWriter<'_, '_> {
    /// The writer id this handle records under.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Records a write to `(x, y)`, reporting any race it exposes.
    pub fn write(&self, x: usize, y: usize) {
        if let Some(race) =
            self.session
                .grid
                .record_write(x, y, self.id, &*self.session.precedes)
        {
            self.session.report(self.rank, race);
        }
    }

    /// Records a read of `(x, y)`, reporting any lost update it exposes.
    pub fn read(&self, x: usize, y: usize) {
        if let Some(race) =
            self.session
                .grid
                .record_read(x, y, self.id, &*self.session.precedes)
        {
            self.session.report(self.rank, race);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::NullProbe;
    use std::sync::atomic::AtomicUsize;

    const UNORDERED: fn(usize, usize) -> bool = |_, _| false;

    #[test]
    fn disjoint_writes_are_silent() {
        let g = ShadowGrid::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                // writer = column, so each writer owns a disjoint column
                assert_eq!(g.record_write(x, y, x, &UNORDERED), None);
            }
        }
    }

    #[test]
    fn overlapping_writers_race_same_writer_does_not() {
        let g = ShadowGrid::new(4, 4);
        assert_eq!(g.record_write(1, 2, 7, &UNORDERED), None);
        // same writer re-writes: sequential within itself
        assert_eq!(g.record_write(1, 2, 7, &UNORDERED), None);
        let race = g.record_write(1, 2, 9, &UNORDERED).expect("race expected");
        assert_eq!(
            race,
            ShadowRace {
                x: 1,
                y: 2,
                prev_writer: 7,
                writer: 9,
                kind: RaceKind::OverlappingWrite,
            }
        );
    }

    #[test]
    fn happens_before_suppresses_the_race() {
        let g = ShadowGrid::new(4, 4);
        let hb: fn(usize, usize) -> bool = |a, b| a < b; // chain order
        assert_eq!(g.record_write(0, 0, 1, &hb), None);
        assert_eq!(g.record_write(0, 0, 2, &hb), None); // 1 ≺ 2: ordered
        assert!(g.record_write(0, 0, 1, &hb).is_some()); // 2 ⊀ 1: race
    }

    #[test]
    fn new_epoch_forgets_old_writes() {
        let g = ShadowGrid::new(4, 4);
        assert_eq!(g.record_write(3, 3, 1, &UNORDERED), None);
        g.begin_epoch();
        // same pixel, different writer, new region: no conflict
        assert_eq!(g.record_write(3, 3, 2, &UNORDERED), None);
    }

    #[test]
    fn unordered_read_is_a_lost_update() {
        let g = ShadowGrid::new(4, 4);
        let hb: fn(usize, usize) -> bool = |a, b| a + 1 == b; // only direct edges
        assert_eq!(g.record_write(2, 2, 5, &hb), None);
        assert_eq!(g.record_read(2, 2, 6, &hb), None); // 5 → 6 edge exists
        let race = g.record_read(2, 2, 9, &hb).expect("missing edge");
        assert_eq!(race.kind, RaceKind::LostUpdate);
        assert_eq!((race.prev_writer, race.writer), (5, 9));
        // reading an untouched pixel is always fine
        assert_eq!(g.record_read(0, 0, 9, &hb), None);
        // reading your own write too (writer == reader)
        assert_eq!(g.record_read(2, 2, 5, &hb), None);
    }

    #[test]
    fn session_reports_through_probe_and_accumulates() {
        struct CountRaces(AtomicUsize);
        impl Probe for CountRaces {
            fn runtime_event(&self, _: WorkerId, event: RuntimeEvent) {
                if let RuntimeEvent::ShadowRace { .. } = event {
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
            fn wants_runtime_events(&self) -> bool {
                true
            }
        }
        let g = ShadowGrid::new(8, 8);
        let probe = CountRaces(AtomicUsize::new(0));
        let session = ShadowSession::for_chunks(&g, &probe);
        session.writer(0, 0).write(4, 4);
        session.writer(1, 1).write(4, 4); // overlap
        session.writer(1, 1).write(5, 4); // fine
        assert_eq!(probe.0.load(Ordering::Relaxed), 1);
        let races = session.races();
        assert_eq!(races.len(), 1);
        assert_eq!((races[0].x, races[0].y), (4, 4));
        assert_eq!(races[0].kind, RaceKind::OverlappingWrite);
    }

    #[test]
    fn session_is_safe_from_real_threads() {
        // writers on 2 threads hammer disjoint halves: no races
        let g = ShadowGrid::new(32, 32);
        let session = ShadowSession::for_chunks(&g, &NullProbe);
        std::thread::scope(|s| {
            for half in 0..2 {
                let session = &session;
                s.spawn(move || {
                    let w = session.writer(half, half);
                    for y in (half * 16)..(half * 16 + 16) {
                        for x in 0..32 {
                            w.write(x, y);
                        }
                    }
                });
            }
        });
        assert!(session.races().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of image")]
    fn out_of_bounds_shadow_write_panics() {
        let g = ShadowGrid::new(4, 4);
        let _ = g.record_write(4, 0, 0, &UNORDERED);
    }
}
