//! Run-time configuration: the `easypap` command line and OpenMP-style
//! scheduling policies.
//!
//! The paper drives every experiment through command lines such as
//! `easypap --kernel mandel --variant omp_tiled --tile-size 16
//! --iterations 50 --no-display` plus the `OMP_NUM_THREADS` /
//! `OMP_SCHEDULE` internal control variables. [`RunConfig`] is the parsed
//! form of all of that, and [`Schedule`] is the loop-scheduling policy
//! vocabulary shared by the real thread pool (`ezp-sched`) and the
//! virtual-time simulator (`ezp-simsched`).

use crate::error::{Error, Result};
use crate::{DEFAULT_DIM, DEFAULT_TILE_SIZE};

/// An OpenMP-style loop scheduling policy (paper Fig. 4).
///
/// The chunk parameter follows OpenMP semantics: for `Dynamic(k)` idle
/// threads grab `k` consecutive iterations at a time; for `Guided(k)`
/// chunk sizes decay proportionally to the remaining work but never drop
/// below `k`; `NonmonotonicDynamic` models the OpenMP 5
/// `nonmonotonic:dynamic` behaviour the paper highlights — an initial
/// static distribution corrected by work stealing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Contiguous blocks, one per thread (`schedule(static)`).
    #[default]
    Static,
    /// Round-robin blocks of `k` iterations (`schedule(static, k)`).
    StaticChunk(usize),
    /// First-come first-served chunks of `k` (`schedule(dynamic, k)`).
    Dynamic(usize),
    /// Exponentially decreasing chunks, minimum `k` (`schedule(guided, k)`).
    Guided(usize),
    /// Static distribution + work stealing (`schedule(nonmonotonic:dynamic)`).
    NonmonotonicDynamic(usize),
}

impl Schedule {
    /// Parses the `OMP_SCHEDULE` syntax used in the paper's Fig. 5 sweep
    /// script: `static`, `static,4`, `dynamic`, `dynamic,2`, `guided`,
    /// `nonmonotonic:dynamic`, ...
    pub fn parse(s: &str) -> Result<Schedule> {
        let (kind, chunk) = match s.split_once(',') {
            Some((k, c)) => {
                let chunk: usize = c
                    .trim()
                    .parse()
                    .map_err(|_| Error::Config(format!("bad schedule chunk in `{s}`")))?;
                if chunk == 0 {
                    return Err(Error::Config(format!("schedule chunk must be > 0 in `{s}`")));
                }
                (k.trim(), Some(chunk))
            }
            None => (s.trim(), None),
        };
        match kind {
            "static" => Ok(match chunk {
                None => Schedule::Static,
                Some(k) => Schedule::StaticChunk(k),
            }),
            "dynamic" => Ok(Schedule::Dynamic(chunk.unwrap_or(1))),
            "guided" => Ok(Schedule::Guided(chunk.unwrap_or(1))),
            "nonmonotonic:dynamic" => Ok(Schedule::NonmonotonicDynamic(chunk.unwrap_or(1))),
            _ => Err(Error::Config(format!("unknown schedule `{s}`"))),
        }
    }

    /// The canonical `OMP_SCHEDULE` spelling, inverse of [`Schedule::parse`].
    pub fn as_omp_str(&self) -> String {
        match self {
            Schedule::Static => "static".to_string(),
            Schedule::StaticChunk(k) => format!("static,{k}"),
            Schedule::Dynamic(1) => "dynamic".to_string(),
            Schedule::Dynamic(k) => format!("dynamic,{k}"),
            Schedule::Guided(1) => "guided".to_string(),
            Schedule::Guided(k) => format!("guided,{k}"),
            Schedule::NonmonotonicDynamic(1) => "nonmonotonic:dynamic".to_string(),
            Schedule::NonmonotonicDynamic(k) => format!("nonmonotonic:dynamic,{k}"),
        }
    }

    /// The four policies compared in Fig. 4 and Fig. 6 of the paper.
    pub fn paper_policies() -> [Schedule; 4] {
        [
            Schedule::Static,
            Schedule::Dynamic(2),
            Schedule::NonmonotonicDynamic(1),
            Schedule::Guided(1),
        ]
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_omp_str())
    }
}

/// How much graphical/monitoring output the run produces — the
/// `--no-display` / default / `--monitoring` trio from §II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisplayMode {
    /// `--no-display`: silent performance mode (§II-C).
    None,
    /// Default: frames are rendered (here: dumped on request).
    Display,
    /// `--monitoring`: display plus Activity Monitor and Tiling windows.
    Monitoring,
}

/// Output format of the `--stats` runtime-counter report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StatsFormat {
    /// Prometheus-style text exposition (`--stats` / `--stats=text`).
    #[default]
    Text,
    /// One JSON object (`--stats=json`).
    Json,
    /// `counter,worker,value` rows (`--stats=csv`).
    Csv,
}

impl StatsFormat {
    /// Parses the value of `--stats=<fmt>`.
    pub fn parse(s: &str) -> Result<StatsFormat> {
        match s {
            "text" | "prometheus" => Ok(StatsFormat::Text),
            "json" => Ok(StatsFormat::Json),
            "csv" => Ok(StatsFormat::Csv),
            other => Err(Error::Config(format!(
                "--stats: unknown format `{other}` (expected text, json or csv)"
            ))),
        }
    }
}

/// Output-ordering mode of a streaming (`--stream=N`) run.
///
/// The shared vocabulary between `ezp-stream`'s skeletons and the CLI:
/// `Ordered` routes completed frames through a reorder buffer so the
/// sink sees frame ids `0, 1, 2, ...` (latency bounded by the slowest
/// in-flight frame); `Unordered` hands each frame to the sink the
/// moment it completes (maximum throughput, sink must key on frame id).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EmitMode {
    /// Emit frames in frame-id order through a reorder buffer.
    #[default]
    Ordered,
    /// Emit frames as they complete, in schedule-dependent order.
    Unordered,
}

impl EmitMode {
    /// Parses the value of `--stream-mode=<mode>`.
    pub fn parse(s: &str) -> Result<EmitMode> {
        match s {
            "ordered" => Ok(EmitMode::Ordered),
            "unordered" => Ok(EmitMode::Unordered),
            other => Err(Error::Config(format!(
                "--stream-mode: unknown mode `{other}` (expected ordered or unordered)"
            ))),
        }
    }
}

impl std::fmt::Display for EmitMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EmitMode::Ordered => "ordered",
            EmitMode::Unordered => "unordered",
        })
    }
}

/// What a channel endpoint does when it cannot make progress (ring
/// full on send, ring empty on receive).
///
/// The shared vocabulary between `ezp-chan` and the CLI (`--wait-policy`):
/// `Spin` burns cycles for minimum latency (with a periodic yield escape
/// hatch so oversubscribed hosts stay live), `Yield` releases the CPU
/// every iteration, `Park` spins briefly then blocks on a
/// `ParkLot`-style condvar (lowest CPU waste, a wakeup syscall on the
/// state change). Tradeoffs are discussed in `docs/channels.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Busy-wait with `spin_loop` hints (plus a rare yield).
    Spin,
    /// `yield_now` between every recheck.
    Yield,
    /// Spin briefly, then park on a condvar until notified.
    #[default]
    Park,
}

impl WaitPolicy {
    /// Parses the value of `--wait-policy=<policy>`.
    pub fn parse(s: &str) -> Result<WaitPolicy> {
        match s {
            "spin" => Ok(WaitPolicy::Spin),
            "yield" => Ok(WaitPolicy::Yield),
            "park" => Ok(WaitPolicy::Park),
            other => Err(Error::Config(format!(
                "--wait-policy: unknown policy `{other}` (expected spin, yield or park)"
            ))),
        }
    }

    /// Every policy, for exhaustive sweeps (conformance matrix, benches).
    pub fn all() -> [WaitPolicy; 3] {
        [WaitPolicy::Spin, WaitPolicy::Yield, WaitPolicy::Park]
    }
}

impl std::fmt::Display for WaitPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WaitPolicy::Spin => "spin",
            WaitPolicy::Yield => "yield",
            WaitPolicy::Park => "park",
        })
    }
}

/// Which channel substrate carries inter-thread messages
/// (`--chan-backend`): `ezp-chan`'s lock-free ring, or `std::sync::mpsc`
/// kept as the reference baseline. Every consumer of the
/// `ezp_chan::ChanSender`/`ChanReceiver` traits accepts either, so the
/// two stay behaviorally interchangeable (asserted byte-for-byte by the
/// streaming conformance matrix).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChanBackendKind {
    /// Bounded lock-free SPSC rings (MPMC = one ring per producer).
    #[default]
    Ring,
    /// `std::sync::mpsc` — the pre-`ezp-chan` baseline.
    Mpsc,
}

impl ChanBackendKind {
    /// Parses the value of `--chan-backend=<backend>`.
    pub fn parse(s: &str) -> Result<ChanBackendKind> {
        match s {
            "ring" => Ok(ChanBackendKind::Ring),
            "mpsc" => Ok(ChanBackendKind::Mpsc),
            other => Err(Error::Config(format!(
                "--chan-backend: unknown backend `{other}` (expected ring or mpsc)"
            ))),
        }
    }

    /// Every backend, for exhaustive sweeps (conformance matrix, benches).
    pub fn all() -> [ChanBackendKind; 2] {
        [ChanBackendKind::Ring, ChanBackendKind::Mpsc]
    }
}

impl std::fmt::Display for ChanBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChanBackendKind::Ring => "ring",
            ChanBackendKind::Mpsc => "mpsc",
        })
    }
}

/// The channel knobs of a run, bundled so APIs that thread them through
/// (streaming kernels, the pipeline engine) take one argument instead of
/// two loose enums.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChanTuning {
    /// Channel substrate (`--chan-backend`).
    pub backend: ChanBackendKind,
    /// Behavior when a channel operation cannot progress
    /// (`--wait-policy`).
    pub policy: WaitPolicy,
}

/// Fully parsed run configuration — the Rust face of the `easypap`
/// command line plus the OpenMP ICVs (`OMP_NUM_THREADS`, `OMP_SCHEDULE`).
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    /// `--kernel` (default `none` is not allowed at run time).
    pub kernel: String,
    /// `--variant` (default `seq` like EASYPAP).
    pub variant: String,
    /// `--size`: image dimension (square).
    pub dim: usize,
    /// `--tile-size` / `--grain`: tile edge in pixels.
    pub tile_size: usize,
    /// `--iterations`.
    pub iterations: u32,
    /// `OMP_NUM_THREADS` equivalent (`--threads`).
    pub threads: usize,
    /// `OMP_SCHEDULE` equivalent (`--schedule`).
    pub schedule: Schedule,
    /// Display/monitoring mode.
    pub display: DisplayMode,
    /// `--trace`: record an execution trace.
    pub trace: bool,
    /// Trace output path (`--trace-file`), default `trace.ezv`.
    pub trace_file: String,
    /// `--explain`: append the causal-profiling report (critical path,
    /// idle-cause breakdown, bottleneck advice) after the run.
    pub explain: bool,
    /// `--mpirun "-np N"`: number of simulated MPI ranks (1 = no MPI).
    pub mpi_ranks: usize,
    /// `--debug <flags>` was given: diagnostic logging is wanted (the
    /// CLI raises the [`crate::log`] level to `Debug`).
    pub debug: bool,
    /// `--debug M`: show monitor windows of every MPI rank (Fig. 13).
    pub debug_mpi: bool,
    /// `--arg`: free-form kernel argument (e.g. `life` initial pattern).
    pub kernel_arg: Option<String>,
    /// `--frames DIR`: dump one image per iteration into `DIR` (the
    /// off-screen replacement for the animated SDL window).
    pub frames_dir: Option<String>,
    /// `--ansi`: print the final frame to the terminal as ANSI
    /// true-color half-blocks.
    pub ansi: bool,
    /// Seed for randomized kernels, so runs are reproducible.
    pub seed: u64,
    /// `--stats[=text|json|csv]`: emit the runtime-counter report after
    /// the run (`None` = no report).
    pub stats: Option<StatsFormat>,
    /// `--trace-events FILE`: write a Chrome Trace Event Format timeline
    /// loadable by `chrome://tracing` / Perfetto.
    pub trace_events: Option<String>,
    /// `--stream N`: push `N` frames through a streaming skeleton
    /// instead of iterating one image (`None` = classic mode).
    pub stream_frames: Option<usize>,
    /// `--farm-width K`: replication width of farm stages in a
    /// streaming run (0 = auto: use `threads`).
    pub farm_width: usize,
    /// `--stages a,b,c`: explicit per-stage widths overriding the
    /// streamed kernel's default shape (empty = kernel default).
    pub stage_widths: Vec<usize>,
    /// `--stream-mode ordered|unordered`: output ordering of a
    /// streaming run.
    pub stream_mode: EmitMode,
    /// `--wait-policy spin|yield|park`: what channel endpoints do when
    /// they cannot progress.
    pub wait_policy: WaitPolicy,
    /// `--chan-backend ring|mpsc`: the channel substrate messages ride.
    pub chan_backend: ChanBackendKind,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            kernel: String::new(),
            variant: "seq".to_string(),
            dim: DEFAULT_DIM,
            tile_size: DEFAULT_TILE_SIZE,
            iterations: 1,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            schedule: Schedule::default(),
            display: DisplayMode::Display,
            trace: false,
            trace_file: "trace.ezv".to_string(),
            explain: false,
            mpi_ranks: 1,
            debug: false,
            debug_mpi: false,
            kernel_arg: None,
            frames_dir: None,
            ansi: false,
            seed: 42,
            stats: None,
            trace_events: None,
            stream_frames: None,
            farm_width: 0,
            stage_widths: Vec::new(),
            stream_mode: EmitMode::Ordered,
            wait_policy: WaitPolicy::Park,
            chan_backend: ChanBackendKind::Ring,
        }
    }
}

impl RunConfig {
    /// Starts a config for `kernel`, everything else defaulted.
    pub fn new(kernel: &str) -> Self {
        RunConfig {
            kernel: kernel.to_string(),
            ..Default::default()
        }
    }

    /// Builder: select the variant.
    pub fn variant(mut self, v: &str) -> Self {
        self.variant = v.to_string();
        self
    }

    /// Builder: image dimension.
    pub fn size(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Builder: tile edge.
    pub fn tile(mut self, ts: usize) -> Self {
        self.tile_size = ts;
        self
    }

    /// Builder: iteration count.
    pub fn iterations(mut self, n: u32) -> Self {
        self.iterations = n;
        self
    }

    /// Builder: worker thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Builder: scheduling policy.
    pub fn schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Parses an `easypap`-style argument vector (without the program
    /// name). Mirrors the options shown throughout §II of the paper.
    pub fn parse_args<I, S>(args: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cfg = RunConfig::default();
        let mut it = args.into_iter();
        let need_value = |it: &mut dyn Iterator<Item = S>, opt: &str| -> Result<String> {
            it.next()
                .map(|s| s.as_ref().to_string())
                .ok_or_else(|| Error::Config(format!("option {opt} requires a value")))
        };
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            match arg {
                "--kernel" | "-k" => cfg.kernel = need_value(&mut it, arg)?,
                "--variant" | "-v" => cfg.variant = need_value(&mut it, arg)?,
                "--size" | "-s" => {
                    cfg.dim = parse_num(&need_value(&mut it, arg)?, arg)?;
                }
                "--tile-size" | "--grain" | "-ts" | "-g" => {
                    cfg.tile_size = parse_num(&need_value(&mut it, arg)?, arg)?;
                }
                "--iterations" | "-i" => {
                    cfg.iterations = parse_num(&need_value(&mut it, arg)?, arg)? as u32;
                }
                "--threads" | "-t" => {
                    cfg.threads = parse_num(&need_value(&mut it, arg)?, arg)?;
                }
                "--schedule" => cfg.schedule = Schedule::parse(&need_value(&mut it, arg)?)?,
                "--no-display" | "-n" => cfg.display = DisplayMode::None,
                "--monitoring" | "-m" => cfg.display = DisplayMode::Monitoring,
                "--trace" | "-tr" => cfg.trace = true,
                "--trace-file" => cfg.trace_file = need_value(&mut it, arg)?,
                "--explain" => cfg.explain = true,
                "--mpirun" => {
                    // the paper passes the raw mpirun flags, e.g. "-np 2"
                    let spec = need_value(&mut it, arg)?;
                    cfg.mpi_ranks = parse_mpirun(&spec)?;
                }
                "--debug" => {
                    let flags = need_value(&mut it, arg)?;
                    cfg.debug = true;
                    if flags.contains('M') {
                        cfg.debug_mpi = true;
                    }
                }
                "--arg" | "-a" => cfg.kernel_arg = Some(need_value(&mut it, arg)?),
                "--frames" => cfg.frames_dir = Some(need_value(&mut it, arg)?),
                "--ansi" => cfg.ansi = true,
                "--seed" => cfg.seed = parse_num(&need_value(&mut it, arg)?, arg)? as u64,
                "--stats" => cfg.stats = Some(StatsFormat::Text),
                "--trace-events" => cfg.trace_events = Some(need_value(&mut it, arg)?),
                "--stream" => {
                    cfg.stream_frames = Some(parse_num(&need_value(&mut it, arg)?, arg)?);
                }
                "--farm-width" => {
                    cfg.farm_width = parse_num(&need_value(&mut it, arg)?, arg)?;
                }
                "--stages" => cfg.stage_widths = parse_stages(&need_value(&mut it, arg)?)?,
                "--stream-mode" => cfg.stream_mode = EmitMode::parse(&need_value(&mut it, arg)?)?,
                "--wait-policy" => {
                    cfg.wait_policy = WaitPolicy::parse(&need_value(&mut it, arg)?)?;
                }
                "--chan-backend" => {
                    cfg.chan_backend = ChanBackendKind::parse(&need_value(&mut it, arg)?)?;
                }
                other => {
                    // `--opt=value` spellings of the options above
                    if let Some(fmt) = other.strip_prefix("--stats=") {
                        cfg.stats = Some(StatsFormat::parse(fmt)?);
                    } else if let Some(n) = other.strip_prefix("--stream=") {
                        cfg.stream_frames = Some(parse_num(n, "--stream")?);
                    } else if let Some(k) = other.strip_prefix("--farm-width=") {
                        cfg.farm_width = parse_num(k, "--farm-width")?;
                    } else if let Some(list) = other.strip_prefix("--stages=") {
                        cfg.stage_widths = parse_stages(list)?;
                    } else if let Some(mode) = other.strip_prefix("--stream-mode=") {
                        cfg.stream_mode = EmitMode::parse(mode)?;
                    } else if let Some(policy) = other.strip_prefix("--wait-policy=") {
                        cfg.wait_policy = WaitPolicy::parse(policy)?;
                    } else if let Some(backend) = other.strip_prefix("--chan-backend=") {
                        cfg.chan_backend = ChanBackendKind::parse(backend)?;
                    } else {
                        return Err(Error::Config(format!("unknown option `{other}`")));
                    }
                }
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.kernel.is_empty() {
            return Err(Error::Config("--kernel is required".into()));
        }
        if self.dim == 0 {
            return Err(Error::Config("--size must be > 0".into()));
        }
        if self.tile_size == 0 {
            return Err(Error::Config("--tile-size must be > 0".into()));
        }
        if self.tile_size > self.dim && self.stream_frames.is_none() {
            // streaming runs have no tile grid, so the default tile
            // size must not constrain small streamed frames
            return Err(Error::Config(format!(
                "--tile-size {} exceeds image dimension {}",
                self.tile_size, self.dim
            )));
        }
        if self.threads == 0 {
            return Err(Error::Config("--threads must be > 0".into()));
        }
        if self.mpi_ranks == 0 {
            return Err(Error::Config("--mpirun needs at least one rank".into()));
        }
        if self.stream_frames == Some(0) {
            return Err(Error::Config("--stream must be > 0 frames".into()));
        }
        if self.stream_frames.is_none()
            && (self.farm_width != 0
                || !self.stage_widths.is_empty()
                || self.stream_mode != EmitMode::Ordered)
        {
            return Err(Error::Config(
                "--farm-width/--stages/--stream-mode require --stream=N".into(),
            ));
        }
        if self.stream_frames.is_none()
            && (self.wait_policy != WaitPolicy::default()
                || self.chan_backend != ChanBackendKind::default())
        {
            // channel knobs steer the streaming frame driver and the
            // serve-mode admission lanes; rejecting them elsewhere keeps
            // "accepted flag == effective flag" true
            return Err(Error::Config(
                "--wait-policy/--chan-backend require --stream=N (or `easypap serve`)".into(),
            ));
        }
        Ok(())
    }

    /// The channel knobs of this run, bundled for APIs that take a
    /// [`ChanTuning`].
    pub fn chan_tuning(&self) -> ChanTuning {
        ChanTuning {
            backend: self.chan_backend,
            policy: self.wait_policy,
        }
    }

    /// The tile grid implied by `--size` and `--tile-size`.
    pub fn grid(&self) -> Result<crate::TileGrid> {
        crate::TileGrid::square(self.dim, self.tile_size)
    }
}

fn parse_num(s: &str, opt: &str) -> Result<usize> {
    s.parse()
        .map_err(|_| Error::Config(format!("option {opt}: `{s}` is not a number")))
}

/// Parses the `--stages a,b,c` per-stage width list.
fn parse_stages(spec: &str) -> Result<Vec<usize>> {
    let widths: Vec<usize> = spec
        .split(',')
        .map(|w| parse_num(w.trim(), "--stages"))
        .collect::<Result<_>>()?;
    if widths.is_empty() || widths.contains(&0) {
        return Err(Error::Config(format!(
            "--stages `{spec}`: stage widths must be >= 1"
        )));
    }
    Ok(widths)
}

/// Extracts the rank count from an mpirun flag string such as `-np 2`.
fn parse_mpirun(spec: &str) -> Result<usize> {
    let mut words = spec.split_whitespace();
    while let Some(w) = words.next() {
        if w == "-np" || w == "-n" {
            let v = words
                .next()
                .ok_or_else(|| Error::Config(format!("--mpirun `{spec}`: -np needs a value")))?;
            return parse_num(v, "--mpirun -np");
        }
    }
    Err(Error::Config(format!("--mpirun `{spec}`: no -np flag found")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_parse_all_forms() {
        assert_eq!(Schedule::parse("static").unwrap(), Schedule::Static);
        assert_eq!(Schedule::parse("static,4").unwrap(), Schedule::StaticChunk(4));
        assert_eq!(Schedule::parse("dynamic").unwrap(), Schedule::Dynamic(1));
        assert_eq!(Schedule::parse("dynamic,2").unwrap(), Schedule::Dynamic(2));
        assert_eq!(Schedule::parse("guided").unwrap(), Schedule::Guided(1));
        assert_eq!(Schedule::parse("guided,8").unwrap(), Schedule::Guided(8));
        assert_eq!(
            Schedule::parse("nonmonotonic:dynamic").unwrap(),
            Schedule::NonmonotonicDynamic(1)
        );
        assert!(Schedule::parse("bogus").is_err());
        assert!(Schedule::parse("dynamic,x").is_err());
        assert!(Schedule::parse("dynamic,0").is_err());
    }

    #[test]
    fn schedule_round_trips_through_omp_str() {
        for s in [
            Schedule::Static,
            Schedule::StaticChunk(3),
            Schedule::Dynamic(1),
            Schedule::Dynamic(2),
            Schedule::Guided(1),
            Schedule::Guided(4),
            Schedule::NonmonotonicDynamic(1),
            Schedule::NonmonotonicDynamic(2),
        ] {
            assert_eq!(Schedule::parse(&s.as_omp_str()).unwrap(), s);
        }
    }

    #[test]
    fn paper_policies_match_fig4() {
        let p = Schedule::paper_policies();
        assert!(p.contains(&Schedule::Static));
        assert!(p.contains(&Schedule::Dynamic(2)));
        assert!(p.contains(&Schedule::Guided(1)));
        assert!(p.contains(&Schedule::NonmonotonicDynamic(1)));
    }

    #[test]
    fn parse_paper_command_line() {
        // easypap --kernel mandel --variant omp_tiled --tile-size 16
        //         --iterations 50 --no-display
        let cfg = RunConfig::parse_args([
            "--kernel",
            "mandel",
            "--variant",
            "omp_tiled",
            "--tile-size",
            "16",
            "--iterations",
            "50",
            "--no-display",
        ])
        .unwrap();
        assert_eq!(cfg.kernel, "mandel");
        assert_eq!(cfg.variant, "omp_tiled");
        assert_eq!(cfg.tile_size, 16);
        assert_eq!(cfg.iterations, 50);
        assert_eq!(cfg.display, DisplayMode::None);
    }

    #[test]
    fn parse_mpi_command_line() {
        // easypap --kernel life --variant mpi_omp --mpirun "-np 2"
        //         --monitoring --debug M
        let cfg = RunConfig::parse_args([
            "--kernel", "life", "--variant", "mpi_omp", "--mpirun", "-np 2", "--monitoring",
            "--debug", "M",
        ])
        .unwrap();
        assert_eq!(cfg.mpi_ranks, 2);
        assert!(cfg.debug_mpi);
        assert_eq!(cfg.display, DisplayMode::Monitoring);
    }

    #[test]
    fn parse_errors() {
        assert!(RunConfig::parse_args(["--bogus"]).is_err());
        assert!(RunConfig::parse_args(["--kernel"]).is_err());
        assert!(RunConfig::parse_args(["--kernel", "mandel", "--size", "abc"]).is_err());
        assert!(RunConfig::parse_args(["--size", "64"]).is_err()); // kernel missing
        assert!(RunConfig::parse_args(["--kernel", "mandel", "--mpirun", "-x 2"]).is_err());
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut cfg = RunConfig::new("mandel");
        cfg.tile_size = 2048;
        cfg.dim = 1024;
        assert!(cfg.validate().is_err());
        cfg.tile_size = 0;
        assert!(cfg.validate().is_err());
        cfg.tile_size = 16;
        cfg.threads = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_chain() {
        let cfg = RunConfig::new("blur")
            .variant("omp_tiled")
            .size(512)
            .tile(32)
            .iterations(10)
            .threads(4)
            .schedule(Schedule::Dynamic(2));
        assert_eq!(cfg.kernel, "blur");
        assert_eq!(cfg.variant, "omp_tiled");
        assert_eq!(cfg.dim, 512);
        assert_eq!(cfg.tile_size, 32);
        assert_eq!(cfg.iterations, 10);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.schedule, Schedule::Dynamic(2));
        assert!(cfg.validate().is_ok());
        let grid = cfg.grid().unwrap();
        assert_eq!(grid.len(), 256);
    }

    #[test]
    fn frames_and_ansi_options() {
        let cfg = RunConfig::parse_args([
            "--kernel", "spin", "--frames", "out/frames", "--ansi",
        ])
        .unwrap();
        assert_eq!(cfg.frames_dir.as_deref(), Some("out/frames"));
        assert!(cfg.ansi);
        let plain = RunConfig::parse_args(["--kernel", "spin"]).unwrap();
        assert!(plain.frames_dir.is_none());
        assert!(!plain.ansi);
    }

    #[test]
    fn stats_and_trace_events_options() {
        let cfg = RunConfig::parse_args(["--kernel", "life", "--stats"]).unwrap();
        assert_eq!(cfg.stats, Some(StatsFormat::Text));
        let cfg = RunConfig::parse_args(["--kernel", "life", "--stats=json"]).unwrap();
        assert_eq!(cfg.stats, Some(StatsFormat::Json));
        let cfg = RunConfig::parse_args(["--kernel", "life", "--stats=csv"]).unwrap();
        assert_eq!(cfg.stats, Some(StatsFormat::Csv));
        let cfg = RunConfig::parse_args(["--kernel", "life", "--stats=text"]).unwrap();
        assert_eq!(cfg.stats, Some(StatsFormat::Text));
        assert!(RunConfig::parse_args(["--kernel", "life", "--stats=xml"]).is_err());
        let cfg =
            RunConfig::parse_args(["--kernel", "life", "--trace-events", "out.json"]).unwrap();
        assert_eq!(cfg.trace_events.as_deref(), Some("out.json"));
        assert!(RunConfig::parse_args(["--kernel", "life", "--trace-events"]).is_err());
        let plain = RunConfig::parse_args(["--kernel", "life"]).unwrap();
        assert_eq!(plain.stats, None);
        assert_eq!(plain.trace_events, None);
        assert!(!plain.explain);
        let cfg = RunConfig::parse_args(["--kernel", "life", "--explain"]).unwrap();
        assert!(cfg.explain);
    }

    #[test]
    fn streaming_options_parse_in_both_spellings() {
        let cfg = RunConfig::parse_args([
            "--kernel",
            "mandel_zoom",
            "--stream",
            "16",
            "--farm-width",
            "4",
            "--stages",
            "1,4,1",
            "--stream-mode",
            "unordered",
        ])
        .unwrap();
        assert_eq!(cfg.stream_frames, Some(16));
        assert_eq!(cfg.farm_width, 4);
        assert_eq!(cfg.stage_widths, vec![1, 4, 1]);
        assert_eq!(cfg.stream_mode, EmitMode::Unordered);

        let cfg = RunConfig::parse_args([
            "--kernel",
            "mandel_zoom",
            "--stream=8",
            "--farm-width=2",
            "--stages=2,2",
            "--stream-mode=ordered",
        ])
        .unwrap();
        assert_eq!(cfg.stream_frames, Some(8));
        assert_eq!(cfg.farm_width, 2);
        assert_eq!(cfg.stage_widths, vec![2, 2]);
        assert_eq!(cfg.stream_mode, EmitMode::Ordered);
    }

    #[test]
    fn streaming_options_validate() {
        // zero frames
        assert!(RunConfig::parse_args(["--kernel", "x", "--stream=0"]).is_err());
        // streaming knobs without --stream
        assert!(RunConfig::parse_args(["--kernel", "x", "--farm-width=2"]).is_err());
        assert!(RunConfig::parse_args(["--kernel", "x", "--stages=1,2"]).is_err());
        assert!(RunConfig::parse_args(["--kernel", "x", "--stream-mode=unordered"]).is_err());
        // malformed values
        assert!(RunConfig::parse_args(["--kernel", "x", "--stream=abc"]).is_err());
        assert!(RunConfig::parse_args(["--kernel", "x", "--stream=4", "--stages=1,0"]).is_err());
        assert!(
            RunConfig::parse_args(["--kernel", "x", "--stream=4", "--stream-mode=sideways"])
                .is_err()
        );
        // defaults stay classic
        let plain = RunConfig::parse_args(["--kernel", "x"]).unwrap();
        assert_eq!(plain.stream_frames, None);
        assert_eq!(plain.farm_width, 0);
        assert!(plain.stage_widths.is_empty());
        assert_eq!(plain.stream_mode, EmitMode::Ordered);
    }

    #[test]
    fn emit_mode_round_trips_through_display() {
        for m in [EmitMode::Ordered, EmitMode::Unordered] {
            assert_eq!(EmitMode::parse(&m.to_string()).unwrap(), m);
        }
        assert!(EmitMode::parse("diagonal").is_err());
    }

    #[test]
    fn chan_options_parse_in_both_spellings() {
        let cfg = RunConfig::parse_args([
            "--kernel",
            "mandel_zoom",
            "--stream",
            "8",
            "--wait-policy",
            "spin",
            "--chan-backend",
            "mpsc",
        ])
        .unwrap();
        assert_eq!(cfg.wait_policy, WaitPolicy::Spin);
        assert_eq!(cfg.chan_backend, ChanBackendKind::Mpsc);
        assert_eq!(
            cfg.chan_tuning(),
            ChanTuning {
                backend: ChanBackendKind::Mpsc,
                policy: WaitPolicy::Spin
            }
        );

        let cfg = RunConfig::parse_args([
            "--kernel",
            "mandel_zoom",
            "--stream=8",
            "--wait-policy=yield",
            "--chan-backend=ring",
        ])
        .unwrap();
        assert_eq!(cfg.wait_policy, WaitPolicy::Yield);
        assert_eq!(cfg.chan_backend, ChanBackendKind::Ring);
    }

    #[test]
    fn chan_options_validate() {
        // channel knobs without --stream
        assert!(RunConfig::parse_args(["--kernel", "x", "--wait-policy=spin"]).is_err());
        assert!(RunConfig::parse_args(["--kernel", "x", "--chan-backend=mpsc"]).is_err());
        // malformed values
        assert!(
            RunConfig::parse_args(["--kernel", "x", "--stream=4", "--wait-policy=block"]).is_err()
        );
        assert!(
            RunConfig::parse_args(["--kernel", "x", "--stream=4", "--chan-backend=flume"])
                .is_err()
        );
        // defaults: park waits on the ring backend
        let plain = RunConfig::parse_args(["--kernel", "x"]).unwrap();
        assert_eq!(plain.wait_policy, WaitPolicy::Park);
        assert_eq!(plain.chan_backend, ChanBackendKind::Ring);
        assert_eq!(plain.chan_tuning(), ChanTuning::default());
    }

    #[test]
    fn chan_enums_round_trip_through_display() {
        for p in WaitPolicy::all() {
            assert_eq!(WaitPolicy::parse(&p.to_string()).unwrap(), p);
        }
        assert!(WaitPolicy::parse("busy").is_err());
        for b in ChanBackendKind::all() {
            assert_eq!(ChanBackendKind::parse(&b.to_string()).unwrap(), b);
        }
        assert!(ChanBackendKind::parse("crossbeam").is_err());
    }

    #[test]
    fn grain_is_an_alias_for_tile_size() {
        let cfg = RunConfig::parse_args(["--kernel", "mandel", "--grain", "16"]).unwrap();
        assert_eq!(cfg.tile_size, 16);
    }

    /// Every enum-valued flag names the accepted set when handed an
    /// unknown value — the error is the documentation.
    #[test]
    fn unknown_enum_values_name_the_accepted_set() {
        let msg = |args: &[&str]| {
            RunConfig::parse_args(args.iter().copied())
                .expect_err("bogus value must not parse")
                .to_string()
        };
        let m = msg(&["--kernel", "x", "--stream=4", "--wait-policy=banana"]);
        assert!(m.contains("expected spin, yield or park"), "got: {m}");
        assert!(m.contains("banana"), "echoes the offender: {m}");
        let m = msg(&["--kernel", "x", "--stream=4", "--chan-backend=tcp"]);
        assert!(m.contains("expected ring or mpsc"), "got: {m}");
        let m = msg(&["--kernel", "x", "--stream=4", "--stream-mode=random"]);
        assert!(m.contains("expected ordered or unordered"), "got: {m}");
        let m = msg(&["--kernel", "x", "--stats=xml"]);
        assert!(m.contains("expected text, json or csv"), "got: {m}");
    }

    /// Channel knobs off the streaming/serve paths are rejected, and the
    /// rejection points at both legitimate homes.
    #[test]
    fn chan_knob_rejection_mentions_serve_mode() {
        let err = RunConfig::parse_args(["--kernel", "x", "--wait-policy=spin"])
            .expect_err("knob without --stream")
            .to_string();
        assert!(err.contains("--stream=N"), "got: {err}");
        assert!(err.contains("easypap serve"), "got: {err}");
    }
}
