//! RGBA pixel format and color utilities.
//!
//! EASYPAP images are arrays of 32-bit RGBA pixels. Kernels such as
//! `mandel` map iteration counts to a smooth palette, the monitoring
//! windows assign one saturated hue per worker thread, and the heat-map
//! mode maps task durations to brightness. All of those palettes live
//! here so that the rest of the workspace shares one color vocabulary.

/// A 32-bit RGBA color, stored as `0xRRGGBBAA` like EASYPAP's `cur_img`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgba(pub u32);

impl std::fmt::Debug for Rgba {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rgba(#{:08x})", self.0)
    }
}

impl Rgba {
    /// Fully transparent black — the "empty" pixel used by `life` and
    /// `ccomp` to denote dead/transparent cells.
    pub const TRANSPARENT: Rgba = Rgba(0);
    /// Opaque black.
    pub const BLACK: Rgba = Rgba(0x0000_00ff);
    /// Opaque white.
    pub const WHITE: Rgba = Rgba(0xffff_ffff);
    /// Opaque red.
    pub const RED: Rgba = Rgba(0xff00_00ff);
    /// Opaque green.
    pub const GREEN: Rgba = Rgba(0x00ff_00ff);
    /// Opaque blue.
    pub const BLUE: Rgba = Rgba(0x0000_ffff);
    /// Opaque yellow, EASYPAP's default foreground for several kernels.
    pub const YELLOW: Rgba = Rgba(0xffff_00ff);

    /// Builds a color from its channels.
    #[inline]
    pub const fn new(r: u8, g: u8, b: u8, a: u8) -> Self {
        Rgba(((r as u32) << 24) | ((g as u32) << 16) | ((b as u32) << 8) | a as u32)
    }

    /// Red channel.
    #[inline]
    pub const fn r(self) -> u8 {
        (self.0 >> 24) as u8
    }

    /// Green channel.
    #[inline]
    pub const fn g(self) -> u8 {
        (self.0 >> 16) as u8
    }

    /// Blue channel.
    #[inline]
    pub const fn b(self) -> u8 {
        (self.0 >> 8) as u8
    }

    /// Alpha channel.
    #[inline]
    pub const fn a(self) -> u8 {
        self.0 as u8
    }

    /// True when the alpha channel is zero. `ccomp` treats such pixels as
    /// separators between connected components.
    #[inline]
    pub const fn is_transparent(self) -> bool {
        self.a() == 0
    }

    /// Component-wise linear interpolation, `t` in `[0, 1]`.
    pub fn lerp(self, other: Rgba, t: f32) -> Rgba {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| -> u8 { (x as f32 + (y as f32 - x as f32) * t).round() as u8 };
        Rgba::new(
            mix(self.r(), other.r()),
            mix(self.g(), other.g()),
            mix(self.b(), other.b()),
            mix(self.a(), other.a()),
        )
    }

    /// Scales the RGB channels by `brightness` in `[0, 1]`, keeping alpha.
    /// Used by the heat-map mode where "the brighter an area is, the more
    /// time-consuming it is" (paper Fig. 9).
    pub fn scaled(self, brightness: f32) -> Rgba {
        let k = brightness.clamp(0.0, 1.0);
        Rgba::new(
            (self.r() as f32 * k).round() as u8,
            (self.g() as f32 * k).round() as u8,
            (self.b() as f32 * k).round() as u8,
            self.a(),
        )
    }
}

/// Converts HSV (`h` in degrees `[0, 360)`, `s`/`v` in `[0, 1]`) to RGBA.
pub fn hsv_to_rgba(h: f32, s: f32, v: f32) -> Rgba {
    let h = h.rem_euclid(360.0);
    let c = v * s;
    let hp = h / 60.0;
    let x = c * (1.0 - (hp % 2.0 - 1.0).abs());
    let (r1, g1, b1) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    Rgba::new(
        ((r1 + m) * 255.0).round() as u8,
        ((g1 + m) * 255.0).round() as u8,
        ((b1 + m) * 255.0).round() as u8,
        255,
    )
}

/// The per-worker palette used by the Tiling and Activity Monitor windows:
/// worker `i` always gets the same saturated hue, and hues are spread by a
/// golden-angle walk so that nearby ranks get clearly distinct colors.
pub fn worker_color(worker: usize) -> Rgba {
    const GOLDEN_ANGLE: f32 = 137.508;
    hsv_to_rgba(worker as f32 * GOLDEN_ANGLE, 0.85, 0.95)
}

/// Maps a normalized task duration (`0.0` = fastest, `1.0` = slowest) to a
/// heat-map color: dark blue through red to bright yellow-white.
pub fn heat_color(t: f32) -> Rgba {
    let t = t.clamp(0.0, 1.0);
    // Piecewise gradient: navy -> red -> yellow -> white.
    if t < 0.4 {
        Rgba::new(0, 0, 64, 255).lerp(Rgba::new(200, 30, 20, 255), t / 0.4)
    } else if t < 0.8 {
        Rgba::new(200, 30, 20, 255).lerp(Rgba::new(255, 230, 40, 255), (t - 0.4) / 0.4)
    } else {
        Rgba::new(255, 230, 40, 255).lerp(Rgba::WHITE, (t - 0.8) / 0.2)
    }
}

/// Classic smooth palette for the Mandelbrot kernel: maps an iteration
/// count to a color; points inside the set (`iter == max_iter`) are black,
/// like the large black areas discussed around Fig. 3 of the paper.
pub fn mandel_color(iter: u32, max_iter: u32) -> Rgba {
    if iter >= max_iter {
        return Rgba::BLACK;
    }
    let t = iter as f32 / max_iter as f32;
    hsv_to_rgba(240.0 + 300.0 * t, 0.9, 0.2 + 0.8 * (t * std::f32::consts::PI).sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_round_trip() {
        let c = Rgba::new(1, 2, 3, 4);
        assert_eq!((c.r(), c.g(), c.b(), c.a()), (1, 2, 3, 4));
        assert_eq!(c.0, 0x0102_0304);
    }

    #[test]
    fn constants_have_expected_channels() {
        assert_eq!(Rgba::RED.r(), 255);
        assert_eq!(Rgba::RED.g(), 0);
        assert_eq!(Rgba::GREEN.g(), 255);
        assert_eq!(Rgba::BLUE.b(), 255);
        assert_eq!(Rgba::BLACK.a(), 255);
        assert!(Rgba::TRANSPARENT.is_transparent());
        assert!(!Rgba::WHITE.is_transparent());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Rgba::new(0, 0, 0, 0);
        let b = Rgba::new(200, 100, 50, 255);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert_eq!(m.r(), 100);
        assert_eq!(m.g(), 50);
        assert_eq!(m.b(), 25);
    }

    #[test]
    fn lerp_clamps_t() {
        let a = Rgba::BLACK;
        let b = Rgba::WHITE;
        assert_eq!(a.lerp(b, -3.0), a);
        assert_eq!(a.lerp(b, 7.0), b);
    }

    #[test]
    fn scaled_darkens_rgb_only() {
        let c = Rgba::new(200, 100, 50, 123).scaled(0.5);
        assert_eq!((c.r(), c.g(), c.b(), c.a()), (100, 50, 25, 123));
        assert_eq!(Rgba::WHITE.scaled(0.0).r(), 0);
    }

    #[test]
    fn hsv_primary_hues() {
        assert_eq!(hsv_to_rgba(0.0, 1.0, 1.0), Rgba::RED);
        assert_eq!(hsv_to_rgba(120.0, 1.0, 1.0), Rgba::GREEN);
        assert_eq!(hsv_to_rgba(240.0, 1.0, 1.0), Rgba::BLUE);
        assert_eq!(hsv_to_rgba(360.0, 1.0, 1.0), Rgba::RED); // wraps
        assert_eq!(hsv_to_rgba(0.0, 0.0, 1.0), Rgba::WHITE); // no saturation
    }

    #[test]
    fn worker_colors_are_distinct_and_stable() {
        let c0 = worker_color(0);
        let c1 = worker_color(1);
        assert_ne!(c0, c1);
        assert_eq!(c0, worker_color(0));
        // first 16 workers must all differ pairwise
        let palette: Vec<Rgba> = (0..16).map(worker_color).collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(palette[i], palette[j], "workers {i} and {j} share a color");
            }
        }
    }

    #[test]
    fn heat_color_monotonic_brightness_at_keypoints() {
        let lum = |c: Rgba| c.r() as u32 + c.g() as u32 + c.b() as u32;
        assert!(lum(heat_color(0.0)) < lum(heat_color(0.5)));
        assert!(lum(heat_color(0.5)) < lum(heat_color(1.0)));
        assert_eq!(heat_color(1.0), Rgba::WHITE);
    }

    #[test]
    fn mandel_color_black_inside_set() {
        assert_eq!(mandel_color(100, 100), Rgba::BLACK);
        assert_eq!(mandel_color(200, 100), Rgba::BLACK);
        assert_ne!(mandel_color(5, 100), Rgba::BLACK);
    }
}
