//! Tile-grid geometry: decomposing a 2D image into rectangular tiles.
//!
//! Tiles are the unit of parallel work throughout the paper: loops iterate
//! `for (y..; y += TILE_SIZE) for (x..; x += TILE_SIZE) do_tile(x, y, ...)`
//! and OpenMP's `collapse(2)` flattens the two loops into one linear
//! iteration space that the scheduling policies then carve up. [`TileGrid`]
//! captures that geometry once so that the scheduler, the simulator, the
//! monitor and the viewers all agree on tile numbering.

use crate::error::{Error, Result};

/// One rectangular chunk of image, `(x, y)` top-left corner plus size —
/// exactly the quadruple EASYPAP passes to `do_tile(x, y, width, height)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Left pixel column.
    pub x: usize,
    /// Top pixel row.
    pub y: usize,
    /// Width in pixels (may be smaller than the nominal tile width on the
    /// right edge when the tile size does not divide the image width).
    pub w: usize,
    /// Height in pixels (clipped on the bottom edge likewise).
    pub h: usize,
    /// Horizontal tile coordinate (column index in the grid).
    pub tx: usize,
    /// Vertical tile coordinate (row index in the grid).
    pub ty: usize,
}

impl Tile {
    /// Number of pixels covered.
    #[inline]
    pub fn pixels(&self) -> usize {
        self.w * self.h
    }

    /// True when the tile touches any image edge — the `blur` assignment
    /// (§III-B) specializes "outer" tiles versus "inner" tiles.
    #[inline]
    pub fn is_border(&self, grid: &TileGrid) -> bool {
        self.tx == 0 || self.ty == 0 || self.tx == grid.tiles_x() - 1 || self.ty == grid.tiles_y() - 1
    }

    /// True when pixel `(px, py)` falls inside this tile.
    #[inline]
    pub fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }
}

/// The decomposition of a `width`×`height` image into tiles of nominal
/// size `tile_w`×`tile_h` (edge tiles clipped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGrid {
    width: usize,
    height: usize,
    tile_w: usize,
    tile_h: usize,
    tiles_x: usize,
    tiles_y: usize,
}

impl TileGrid {
    /// Builds a grid. Fails when any dimension or tile size is zero.
    pub fn new(width: usize, height: usize, tile_w: usize, tile_h: usize) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(Error::Geometry(format!("empty image {width}x{height}")));
        }
        if tile_w == 0 || tile_h == 0 {
            return Err(Error::Geometry(format!("empty tile {tile_w}x{tile_h}")));
        }
        Ok(TileGrid {
            width,
            height,
            tile_w,
            tile_h,
            tiles_x: width.div_ceil(tile_w),
            tiles_y: height.div_ceil(tile_h),
        })
    }

    /// Square image, square tiles — the `--size` / `--tile-size` case.
    pub fn square(dim: usize, tile_size: usize) -> Result<Self> {
        Self::new(dim, dim, tile_size, tile_size)
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Nominal tile width.
    #[inline]
    pub fn tile_w(&self) -> usize {
        self.tile_w
    }

    /// Nominal tile height.
    #[inline]
    pub fn tile_h(&self) -> usize {
        self.tile_h
    }

    /// Number of tile columns.
    #[inline]
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Number of tile rows.
    #[inline]
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }

    /// Total number of tiles — the length of the `collapse(2)` iteration
    /// space.
    #[inline]
    pub fn len(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// True when the grid contains no tiles (never, by construction, but
    /// kept for API completeness alongside `len`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tile at grid coordinates `(tx, ty)`.
    pub fn tile(&self, tx: usize, ty: usize) -> Tile {
        assert!(tx < self.tiles_x && ty < self.tiles_y, "tile out of grid");
        let x = tx * self.tile_w;
        let y = ty * self.tile_h;
        Tile {
            x,
            y,
            w: self.tile_w.min(self.width - x),
            h: self.tile_h.min(self.height - y),
            tx,
            ty,
        }
    }

    /// The tile at linear index `i`, in `collapse(2)` row-major order:
    /// `i = ty * tiles_x + tx`, matching the paper's
    /// `for (y ...) for (x ...)` loop nest.
    #[inline]
    pub fn tile_at(&self, i: usize) -> Tile {
        assert!(i < self.len(), "linear tile index out of range");
        self.tile(i % self.tiles_x, i / self.tiles_x)
    }

    /// Inverse of [`TileGrid::tile_at`].
    #[inline]
    pub fn linear_index(&self, tx: usize, ty: usize) -> usize {
        debug_assert!(tx < self.tiles_x && ty < self.tiles_y);
        ty * self.tiles_x + tx
    }

    /// The tile containing pixel `(px, py)`.
    pub fn tile_of_pixel(&self, px: usize, py: usize) -> Tile {
        assert!(px < self.width && py < self.height, "pixel out of image");
        self.tile(px / self.tile_w, py / self.tile_h)
    }

    /// Iterates over every tile in `collapse(2)` order.
    pub fn iter(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.len()).map(move |i| self.tile_at(i))
    }

    /// Iterates over the tiles of grid row `ty`, left to right — the unit
    /// of work of row-scheduled (non-collapsed) OpenMP variants.
    pub fn row(&self, ty: usize) -> impl Iterator<Item = Tile> + '_ {
        (0..self.tiles_x).map(move |tx| self.tile(tx, ty))
    }

    /// Neighbouring tile in direction `(dx, dy)` if it exists. Used by the
    /// `ccomp` task graph (a tile depends on its left/upper neighbours
    /// during the down-right phase, Fig. 11).
    pub fn neighbor(&self, tile: &Tile, dx: isize, dy: isize) -> Option<Tile> {
        let ntx = tile.tx as isize + dx;
        let nty = tile.ty as isize + dy;
        if ntx < 0 || nty < 0 || ntx as usize >= self.tiles_x || nty as usize >= self.tiles_y {
            None
        } else {
            Some(self.tile(ntx as usize, nty as usize))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_geometry() {
        assert!(TileGrid::new(0, 4, 2, 2).is_err());
        assert!(TileGrid::new(4, 0, 2, 2).is_err());
        assert!(TileGrid::new(4, 4, 0, 2).is_err());
        assert!(TileGrid::new(4, 4, 2, 0).is_err());
        assert!(TileGrid::square(1, 1).is_ok());
    }

    #[test]
    fn exact_division() {
        let g = TileGrid::square(64, 16).unwrap();
        assert_eq!(g.tiles_x(), 4);
        assert_eq!(g.tiles_y(), 4);
        assert_eq!(g.len(), 16);
        let t = g.tile(3, 2);
        assert_eq!((t.x, t.y, t.w, t.h), (48, 32, 16, 16));
    }

    #[test]
    fn ragged_edges_are_clipped() {
        let g = TileGrid::new(10, 7, 4, 3).unwrap();
        assert_eq!(g.tiles_x(), 3); // 4 + 4 + 2
        assert_eq!(g.tiles_y(), 3); // 3 + 3 + 1
        let right = g.tile(2, 0);
        assert_eq!((right.w, right.h), (2, 3));
        let bottom = g.tile(0, 2);
        assert_eq!((bottom.w, bottom.h), (4, 1));
        let corner = g.tile(2, 2);
        assert_eq!((corner.w, corner.h), (2, 1));
    }

    #[test]
    fn tiles_partition_the_image() {
        // every pixel covered exactly once, for an awkward geometry
        let g = TileGrid::new(13, 9, 5, 4).unwrap();
        let mut cover = [0u8; 13 * 9];
        for t in g.iter() {
            for y in t.y..t.y + t.h {
                for x in t.x..t.x + t.w {
                    cover[y * 13 + x] += 1;
                }
            }
        }
        assert!(cover.iter().all(|&c| c == 1));
    }

    #[test]
    fn linear_order_is_collapse2_row_major() {
        let g = TileGrid::square(8, 4).unwrap();
        let order: Vec<(usize, usize)> = g.iter().map(|t| (t.tx, t.ty)).collect();
        assert_eq!(order, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
        for (i, t) in g.iter().enumerate() {
            assert_eq!(g.linear_index(t.tx, t.ty), i);
            assert_eq!(g.tile_at(i), t);
        }
    }

    #[test]
    fn tile_of_pixel_inverts_contains() {
        let g = TileGrid::new(10, 10, 3, 3).unwrap();
        for py in 0..10 {
            for px in 0..10 {
                let t = g.tile_of_pixel(px, py);
                assert!(t.contains(px, py));
            }
        }
    }

    #[test]
    fn border_detection() {
        let g = TileGrid::square(64, 16).unwrap(); // 4x4 tiles
        let inner: Vec<Tile> = g.iter().filter(|t| !t.is_border(&g)).collect();
        assert_eq!(inner.len(), 4); // the central 2x2 block
        assert!(inner.iter().all(|t| (1..=2).contains(&t.tx) && (1..=2).contains(&t.ty)));
        // on a 1x1 tile grid, the single tile is a border tile
        let g1 = TileGrid::square(8, 8).unwrap();
        assert!(g1.tile(0, 0).is_border(&g1));
    }

    #[test]
    fn neighbor_lookup() {
        let g = TileGrid::square(9, 3).unwrap(); // 3x3 tiles
        let c = g.tile(1, 1);
        assert_eq!(g.neighbor(&c, -1, 0).unwrap().tx, 0);
        assert_eq!(g.neighbor(&c, 0, -1).unwrap().ty, 0);
        assert_eq!(g.neighbor(&c, 1, 1).map(|t| (t.tx, t.ty)), Some((2, 2)));
        let corner = g.tile(0, 0);
        assert!(g.neighbor(&corner, -1, 0).is_none());
        assert!(g.neighbor(&corner, 0, -1).is_none());
        let far = g.tile(2, 2);
        assert!(g.neighbor(&far, 1, 0).is_none());
        assert!(g.neighbor(&far, 0, 1).is_none());
    }

    #[test]
    fn row_iterates_one_grid_row() {
        let g = TileGrid::new(12, 6, 4, 3).unwrap();
        let row: Vec<Tile> = g.row(1).collect();
        assert_eq!(row.len(), 3);
        assert!(row.iter().all(|t| t.ty == 1));
        assert_eq!(row[2].x, 8);
    }

    #[test]
    fn tile_pixels_accounts_for_clipping() {
        let g = TileGrid::new(5, 5, 4, 4).unwrap();
        assert_eq!(g.tile(0, 0).pixels(), 16);
        assert_eq!(g.tile(1, 1).pixels(), 1);
        let total: usize = g.iter().map(|t| t.pixels()).sum();
        assert_eq!(total, 25);
    }
}
