//! Monotonic time utilities shared by the monitor, the tracer and the
//! performance mode.
//!
//! All timestamps in the workspace are nanoseconds relative to a single
//! process-wide origin, so that events recorded by different worker
//! threads are directly comparable — the property the EASYVIEW Gantt
//! chart relies on.

use std::sync::OnceLock;
use std::time::Instant;

static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the first call to any function of this
/// module (the "process origin").
#[inline]
pub fn now_ns() -> u64 {
    let origin = ORIGIN.get_or_init(Instant::now);
    origin.elapsed().as_nanos() as u64
}

/// Forces the origin to be initialized now. Call once at startup so that
/// the first measured event does not pay the initialization cost.
pub fn init_clock() {
    let _ = ORIGIN.get_or_init(Instant::now);
}

/// A simple stopwatch for the performance mode (§II-C).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: u64,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { start: now_ns() }
    }

    /// Nanoseconds elapsed since `start`.
    pub fn elapsed_ns(&self) -> u64 {
        now_ns() - self.start
    }

    /// Microseconds elapsed — EASYPAP's CSV stores µs (`refTime=669009`
    /// in Fig. 6 is microseconds).
    pub fn elapsed_us(&self) -> u64 {
        self.elapsed_ns() / 1_000
    }

    /// Milliseconds elapsed — what the console summary prints
    /// ("50 iterations completed in 579 ms").
    pub fn elapsed_ms(&self) -> u64 {
        self.elapsed_ns() / 1_000_000
    }
}

/// Formats a nanosecond duration the way EASYVIEW's hover bubble does:
/// picks the most readable unit.
pub fn format_duration_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_something() {
        let sw = Stopwatch::start();
        // burn a little time deterministically
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        assert!(sw.elapsed_ns() > 0);
        assert!(sw.elapsed_us() <= sw.elapsed_ns());
        assert!(sw.elapsed_ms() <= sw.elapsed_us());
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(format_duration_ns(500), "500 ns");
        assert_eq!(format_duration_ns(1_500), "1.5 µs");
        assert_eq!(format_duration_ns(2_500_000), "2.5 ms");
        assert_eq!(format_duration_ns(3_210_000_000), "3.21 s");
    }
}
