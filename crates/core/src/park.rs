//! Spin-then-park waiting: the blocking fallback of the lock-free hot
//! paths in [`pool`](crate::pool) and [`taskgraph`](crate::taskgraph).
//!
//! The scheduler's fast paths are pure atomics; a thread only needs a
//! blocking primitive when it has genuinely run out of work. A
//! [`ParkLot`] packages the standard lost-wakeup-free recipe for that
//! fallback:
//!
//! * the waiter spins briefly on the condition (with `spin_loop` hints
//!   and periodic `yield_now`, so an oversubscribed box makes progress),
//!   then takes the lot's mutex, registers itself in `sleepers`,
//!   re-checks the condition and finally waits on the condvar;
//! * the waker updates the (SeqCst) state the condition reads, then
//!   calls [`ParkLot::notify`], which takes the mutex only when
//!   `sleepers` says someone is actually parked.
//!
//! Why no wakeup can be lost: the waiter increments `sleepers` and
//! re-checks the condition *while holding the mutex*; the waker stores
//! its state change before loading `sleepers`. In the SeqCst total
//! order either the waiter's re-check sees the new state (it never
//! parks), or its `sleepers` increment precedes the waker's load — then
//! the waker takes the mutex, which the waiter holds until it is inside
//! `Condvar::wait`, so the `notify_all` is delivered. Conditions must
//! therefore read their state with `SeqCst`, and wakers must store with
//! `SeqCst` before calling `notify`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Iterations of the spin phase before a waiter parks. Deliberately
/// small: on an oversubscribed machine (more workers than cores) long
/// spins steal cycles from the thread that would satisfy the condition.
const SPIN_LIMIT: u32 = 64;

/// How often the spin phase yields the CPU instead of issuing a
/// `spin_loop` hint (every `1 << YIELD_SHIFT` iterations).
const YIELD_SHIFT: u32 = 3;

/// Waiting activity of one [`ParkLot::wait_until`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Spin-phase iterations executed before the condition held.
    pub spins: u64,
    /// Times the waiter actually blocked on the condvar.
    pub parks: u64,
    /// Wall time spent in the park (slow) path, in nanoseconds. Zero
    /// when the condition held during the spin phase — the fast path
    /// never reads the clock.
    pub park_ns: u64,
}

/// A condvar-backed parking spot with a spin phase in front.
///
/// Public beyond the scheduler: `ezp-chan`'s `WaitPolicy::Park` reuses
/// this exact recipe for full-ring producer and empty-ring consumer
/// waits, so the workspace has one audited blocking fallback, not two.
#[derive(Debug, Default)]
pub struct ParkLot {
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ParkLot {
    /// A lot with no sleepers.
    pub fn new() -> Self {
        ParkLot::default()
    }

    /// Blocks the caller until `ready()` returns true. `ready` must read
    /// the state it depends on with `SeqCst` (see module docs).
    pub fn wait_until(&self, ready: impl Fn() -> bool) -> WaitStats {
        let mut stats = WaitStats::default();
        for i in 0..SPIN_LIMIT {
            if ready() {
                return stats;
            }
            stats.spins += 1;
            if i & ((1 << YIELD_SHIFT) - 1) == (1 << YIELD_SHIFT) - 1 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // Park. Lock poisoning cannot occur: no user code ever runs
        // under this mutex (the critical sections below are pure
        // bookkeeping), so unwrap is safe.
        let t0 = crate::time::now_ns();
        let mut guard = self.lock.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        while !ready() {
            stats.parks += 1;
            guard = self.cv.wait(guard).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        stats.park_ns = crate::time::now_ns().saturating_sub(t0);
        stats
    }

    /// Wakes every parked waiter. Cheap when nobody is parked: a single
    /// atomic load. Call *after* the SeqCst store that makes waiters'
    /// conditions true.
    pub fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn already_ready_never_parks() {
        let lot = ParkLot::new();
        let stats = lot.wait_until(|| true);
        assert_eq!(stats, WaitStats::default());
    }

    #[test]
    fn waiter_wakes_on_notify() {
        let lot = ParkLot::new();
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            let lot = &lot;
            let flag = &flag;
            let h = s.spawn(move || lot.wait_until(|| flag.load(Ordering::SeqCst)));
            // let the waiter burn through its spin phase and park
            std::thread::sleep(std::time::Duration::from_millis(5));
            flag.store(true, Ordering::SeqCst);
            lot.notify();
            let stats = h.join().unwrap();
            assert!(stats.spins > 0);
            // a waiter that actually parked spent measurable time there
            assert!(stats.parks == 0 || stats.park_ns > 0);
        });
    }

    #[test]
    fn notify_without_waiters_is_cheap_and_safe() {
        let lot = ParkLot::new();
        lot.notify(); // must not block or panic
        assert_eq!(lot.sleepers.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn many_waiters_all_wake() {
        let lot = ParkLot::new();
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let lot = &lot;
                    let flag = &flag;
                    s.spawn(move || lot.wait_until(|| flag.load(Ordering::SeqCst)))
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(5));
            flag.store(true, Ordering::SeqCst);
            lot.notify();
            for h in handles {
                h.join().unwrap();
            }
        });
    }
}
