//! A tiny leveled logger shared by every instrumented crate.
//!
//! The original `easypap --debug` sprinkles ad-hoc `fprintf (stderr, ...)`
//! lines; here all diagnostic output funnels through one sink with a
//! process-wide level, so `easypap --debug` and the `EZP_LOG` environment
//! variable (`EZP_LOG=debug|info|warn|error|off`) control every crate at
//! once. Messages go to stderr, keeping stdout clean for the CLI's real
//! output (CSV rows, JSON stats).
//!
//! Use the [`ezp_debug!`](crate::ezp_debug), [`ezp_info!`](crate::ezp_info),
//! [`ezp_warn!`](crate::ezp_warn) macros:
//!
//! ```
//! ezp_core::log::set_level(ezp_core::log::Level::Debug);
//! ezp_core::ezp_debug!("doctest", "threads = {}", 4);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity levels, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is logged.
    Off = 0,
    /// Unrecoverable or surprising conditions.
    Error = 1,
    /// Suspicious but handled conditions.
    Warn = 2,
    /// High-level progress (one line per run phase).
    Info = 3,
    /// Everything, including per-subsystem detail (`--debug`).
    Debug = 4,
}

impl Level {
    /// Parses an `EZP_LOG` value; unknown strings mean [`Level::Off`].
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" | "trace" => Level::Debug,
            _ => Level::Off,
        }
    }

    /// The label printed in front of each message.
    pub fn label(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 255 = "not initialized yet": the first query reads `EZP_LOG`.
const UNINIT: u8 = 255;
// counter-only: the byte is the entire payload; racing initializers
// compute the same value from the same environment, so a lost store
// is harmless.
static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// The current level, initializing from `EZP_LOG` on first use.
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != UNINIT {
        return decode(raw);
    }
    let from_env = std::env::var("EZP_LOG").map(|v| Level::parse(&v)).unwrap_or(Level::Off);
    // another thread may have raced set_level; keep whatever won
    let _ = LEVEL.compare_exchange(UNINIT, from_env as u8, Ordering::Relaxed, Ordering::Relaxed);
    decode(LEVEL.load(Ordering::Relaxed))
}

fn decode(raw: u8) -> Level {
    match raw {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Off,
    }
}

/// Overrides the level (e.g. `--debug` forces [`Level::Debug`]).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when a message at `l` would be printed.
pub fn enabled(l: Level) -> bool {
    l != Level::Off && l <= level()
}

/// Prints one message; use the macros instead of calling this directly.
pub fn write(l: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if enabled(l) {
        eprintln!("[ezp {:<5} {target}] {args}", l.label());
    }
}

/// Logs at [`Level::Debug`]: `ezp_debug!("sched", "stole {} tiles", n)`.
#[macro_export]
macro_rules! ezp_debug {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::write($crate::log::Level::Debug, $target, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! ezp_info {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::write($crate::log::Level::Info, $target, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! ezp_warn {
    ($target:expr, $($arg:tt)+) => {
        $crate::log::write($crate::log::Level::Warn, $target, format_args!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_spellings() {
        assert_eq!(Level::parse("debug"), Level::Debug);
        assert_eq!(Level::parse("INFO "), Level::Info);
        assert_eq!(Level::parse("warning"), Level::Warn);
        assert_eq!(Level::parse("error"), Level::Error);
        assert_eq!(Level::parse("nope"), Level::Off);
        assert_eq!(Level::parse(""), Level::Off);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_level_gates_enabled() {
        // the level is process-global; restore Off so other tests are
        // unaffected whatever order they run in
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Off);
        assert!(!enabled(Level::Error));
        // the macros must compile and be silent at Off
        crate::ezp_debug!("test", "invisible {}", 1);
        crate::ezp_info!("test", "invisible");
        crate::ezp_warn!("test", "invisible");
    }
}
