//! A minimal SVG canvas.
//!
//! EASYPAP's windows (Tiling, Activity Monitor, EASYVIEW Gantt charts,
//! easyplot graphs) are replaced in this reproduction by SVG files; this
//! tiny builder is the shared rendering backend. It deliberately covers
//! only the handful of primitives the viewers need.

use crate::color::Rgba;
use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Clone, Debug)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    body: String,
}

/// Formats a color as an SVG `#rrggbb` value.
pub fn svg_color(c: Rgba) -> String {
    format!("#{:02x}{:02x}{:02x}", c.r(), c.g(), c.b())
}

fn esc(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

impl SvgCanvas {
    /// A canvas of the given pixel size with a white background.
    pub fn new(width: f64, height: f64) -> Self {
        let mut canvas = SvgCanvas {
            width,
            height,
            body: String::new(),
        };
        canvas.rect(0.0, 0.0, width, height, Rgba::WHITE);
        canvas
    }

    /// Canvas width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Canvas height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: Rgba) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{}"/>"#,
            svg_color(fill)
        );
    }

    /// Rectangle outline.
    pub fn rect_outline(&mut self, x: f64, y: f64, w: f64, h: f64, stroke: Rgba, stroke_width: f64) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="none" stroke="{}" stroke-width="{stroke_width:.2}"/>"#,
            svg_color(stroke)
        );
    }

    /// Straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: Rgba, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{width:.2}"/>"#,
            svg_color(stroke)
        );
    }

    /// Polyline through `points`.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: Rgba, width: f64) {
        if points.is_empty() {
            return;
        }
        let pts: Vec<String> = points.iter().map(|(x, y)| format!("{x:.2},{y:.2}")).collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{width:.2}"/>"#,
            pts.join(" "),
            svg_color(stroke)
        );
    }

    /// Filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: Rgba) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{}"/>"#,
            svg_color(fill)
        );
    }

    /// Text anchored at `(x, y)` (baseline), `size` px.
    pub fn text(&mut self, x: f64, y: f64, size: f64, fill: Rgba, text: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" fill="{}">{}</text>"#,
            svg_color(fill),
            esc(text)
        );
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }

    /// Writes the document to a file.
    pub fn save(self, path: impl AsRef<std::path::Path>) -> crate::error::Result<()> {
        std::fs::write(path, self.finish())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut c = SvgCanvas::new(100.0, 50.0);
        c.rect(1.0, 2.0, 3.0, 4.0, Rgba::RED);
        c.line(0.0, 0.0, 10.0, 10.0, Rgba::BLACK, 1.0);
        c.text(5.0, 5.0, 10.0, Rgba::BLUE, "hello");
        let svg = c.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("#ff0000"));
        assert!(svg.contains("hello"));
        assert!(svg.contains("width=\"100\""));
    }

    #[test]
    fn text_is_escaped() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.text(0.0, 0.0, 8.0, Rgba::BLACK, "a<b&c>d");
        let svg = c.finish();
        assert!(svg.contains("a&lt;b&amp;c&gt;d"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn polyline_renders_points() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.polyline(&[(0.0, 0.0), (5.0, 5.0)], Rgba::GREEN, 2.0);
        c.polyline(&[], Rgba::GREEN, 2.0); // empty: no element
        let svg = c.finish();
        assert!(svg.contains("polyline"));
        assert!(svg.contains("0.00,0.00 5.00,5.00"));
        assert_eq!(svg.matches("polyline").count(), 1);
    }

    #[test]
    fn color_formatting() {
        assert_eq!(svg_color(Rgba::new(0x12, 0x34, 0x56, 0xff)), "#123456");
    }
}
