//! `ezp-testkit` — the in-repo testing substrate for the EASYPAP workspace.
//!
//! The workspace builds fully offline: no registry dependencies are allowed
//! anywhere. This crate supplies the three pieces of infrastructure that
//! external crates used to provide:
//!
//! * [`rng`] — a deterministic `SplitMix64`-seeded Xoshiro256++ PRNG with
//!   `gen_range`, `fill` and `shuffle`, replacing `rand`.
//! * [`prop`] — a miniature property-testing harness (the [`ezp_proptest!`]
//!   macro, generator combinators, and binary-search shrinking), replacing
//!   `proptest`. Set `EZP_TEST_SEED=<u64>` to reproduce a run byte-for-byte.
//! * [`bench`] — a wall-clock micro-benchmark runner (median-of-N with
//!   warmup) whose CSV output is compatible with `ezp-core::csv`, replacing
//!   `criterion`.
//! * [`schedule`] — seed-driven interleaving strategies for the `ezp-check`
//!   deterministic concurrency harness (round-robin, random-walk,
//!   steal-heavy, starve-one), replayable from `(strategy, seed)`.
//!
//! Everything here is `std`-only and deterministic by construction: the
//! default seed is a fixed constant, and the per-test stream is derived from
//! the test name so adding a property never perturbs its neighbours.

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bench;
pub mod prop;
pub mod rng;
pub mod schedule;

pub use bench::{Bench, BenchResult, BenchSet};
pub use prop::{
    grid_dims, select, vec_of, Strategy, StrategyExt, DEFAULT_CASES, DEFAULT_SEED,
};
pub use rng::Rng;
pub use schedule::{Interleave, RandomWalk, RoundRobin, StarveOne, StealHeavy, StrategyKind};
