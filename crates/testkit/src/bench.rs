//! Wall-clock micro-benchmark runner.
//!
//! Replaces `criterion` for the workspace's purposes: each benchmark runs a
//! warmup phase, then collects N timed samples and reports min / median /
//! mean. Results can be printed as an aligned table or appended to a CSV
//! file whose layout (comma-separated, header row, no quoting needed)
//! matches what `ezp-core::csv::CsvTable` reads back.

use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// Outcome of one benchmark: timing statistics over the collected samples.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    pub param: String,
    pub samples: usize,
    pub min_ns: u64,
    pub median_ns: u64,
    pub mean_ns: u64,
}

impl BenchResult {
    pub const CSV_HEADER: &'static [&'static str] =
        &["bench", "param", "samples", "min_ns", "median_ns", "mean_ns"];

    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.name.clone(),
            self.param.clone(),
            self.samples.to_string(),
            self.min_ns.to_string(),
            self.median_ns.to_string(),
            self.mean_ns.to_string(),
        ]
    }
}

/// Benchmark configuration: warmup iterations and sample count.
#[derive(Clone, Debug)]
pub struct Bench {
    warmup: usize,
    samples: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Bench { warmup: 3, samples: 11 }
    }
}

impl Bench {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of untimed warmup calls before sampling (default 3).
    pub fn warmup(mut self, n: usize) -> Self {
        self.warmup = n;
        self
    }

    /// Number of timed samples; the median is the headline number
    /// (default 11, forced to at least 1).
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Time `f`, returning min/median/mean over the samples. The closure's
    /// return value is black-boxed so the optimizer cannot delete the work.
    pub fn run<R>(&self, name: &str, param: &str, mut f: impl FnMut() -> R) -> BenchResult {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times: Vec<u64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed().as_nanos() as u64);
        }
        times.sort_unstable();
        let min_ns = times[0];
        let median_ns = times[times.len() / 2];
        let mean_ns = times.iter().sum::<u64>() / times.len() as u64;
        BenchResult {
            name: name.to_string(),
            param: param.to_string(),
            samples: times.len(),
            min_ns,
            median_ns,
            mean_ns,
        }
    }
}

/// Collects results across a bench binary and renders them at the end.
#[derive(Default)]
pub struct BenchSet {
    config: Bench,
    results: Vec<BenchResult>,
}

impl BenchSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: Bench) -> Self {
        BenchSet { config, results: Vec::new() }
    }

    /// Run one benchmark under this set's configuration and record it.
    pub fn bench<R>(&mut self, name: &str, param: &str, f: impl FnMut() -> R) -> &BenchResult {
        let r = self.config.run(name, param, f);
        eprintln!(
            "  {:<28} {:<12} median {:>12}  (min {}, mean {}, n={})",
            r.name,
            r.param,
            fmt_ns(r.median_ns),
            fmt_ns(r.min_ns),
            fmt_ns(r.mean_ns),
            r.samples
        );
        self.results.push(r);
        self.results.last().unwrap()
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Render an aligned summary table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:<12} {:>12} {:>12} {:>12}",
            "bench", "param", "min", "median", "mean"
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "{:<28} {:<12} {:>12} {:>12} {:>12}",
                r.name,
                r.param,
                fmt_ns(r.min_ns),
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns)
            );
        }
        out
    }

    /// Append all results to `path` as CSV, writing the header only when the
    /// file does not exist yet (same convention as `ezp-core::csv`).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let write_header = !path.exists();
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if write_header {
            writeln!(file, "{}", BenchResult::CSV_HEADER.join(","))?;
        }
        for r in &self.results {
            writeln!(file, "{}", r.csv_row().join(","))?;
        }
        Ok(())
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_invariant() {
        let b = Bench::new().warmup(0).samples(5);
        let r = b.run("noop", "x", || 1 + 1);
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns);
    }

    #[test]
    fn measures_real_work() {
        let b = Bench::new().warmup(1).samples(3);
        let r = b.run("spin", "1ms", || std::thread::sleep(std::time::Duration::from_millis(1)));
        assert!(r.median_ns >= 900_000, "1ms sleep measured at {} ns", r.median_ns);
    }

    #[test]
    fn csv_round_trips_through_tempfile() {
        let dir = std::env::temp_dir().join(format!("ezp-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let _ = std::fs::remove_file(&path);

        let mut set = BenchSet::with_config(Bench::new().warmup(0).samples(1));
        set.bench("alpha", "n=4", || 42);
        set.write_csv(&path).unwrap();
        set.write_csv(&path).unwrap(); // append must not duplicate the header

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "bench,param,samples,min_ns,median_ns,mean_ns");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("alpha,n=4,1,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_lists_all_results() {
        let mut set = BenchSet::with_config(Bench::new().warmup(0).samples(1));
        set.bench("one", "a", || ());
        set.bench("two", "b", || ());
        let t = set.table();
        assert!(t.contains("one") && t.contains("two"));
    }
}
