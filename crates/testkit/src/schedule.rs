//! Seed-driven interleaving strategies for deterministic schedule
//! exploration (`ezp-check`).
//!
//! A concurrency test wants to ask "what if the workers had run in *this*
//! order?" without leaving the answer to the OS scheduler. An
//! [`Interleave`] strategy is an explicit, replayable answer: given the
//! set of logical workers that could act next, it deterministically picks
//! one. The virtual executor in `ezp-sched` (feature `ezp-check`) drives
//! dispensers and task graphs one step at a time under such a strategy,
//! so a failing interleaving replays byte-for-byte from its
//! `(strategy, seed)` pair — the same contract `EZP_TEST_SEED` gives the
//! property-testing harness.
//!
//! Four strategy families are provided, mirroring the schedules that
//! historically shake out scheduler bugs:
//!
//! * [`RoundRobin`] — the fair baseline: workers act in cyclic order;
//! * [`RandomWalk`] — a uniformly random runnable worker each step,
//!   driven by the testkit PRNG ([`crate::Rng`]);
//! * [`StealHeavy`] — one favourite worker races ahead of everyone else,
//!   drains its own work and is forced into the steal path while victims
//!   still hold untouched ranges;
//! * [`StarveOne`] — one worker is scheduled only when it is the sole
//!   runnable worker, exposing lost-wakeup and double-grant bugs that
//!   need a maximally stale participant.
//!
//! Every strategy is *permutation-complete*: as long as a worker stays
//! runnable it is eventually scheduled, so any system in which workers
//! make progress when scheduled runs to completion under any strategy.

use crate::rng::Rng;

/// Picks which logical worker acts next in a virtual schedule.
///
/// Implementations must be deterministic functions of their construction
/// parameters (including the seed) and the sequence of calls made so far
/// — that is what makes a schedule replayable.
pub trait Interleave {
    /// Chooses one worker among the runnable ones (`runnable[w] == true`).
    ///
    /// Returns `None` when no worker is runnable. Implementations must
    /// never return a worker whose `runnable` entry is `false`, and must
    /// not starve a continuously-runnable worker forever.
    fn next_worker(&mut self, runnable: &[bool]) -> Option<usize>;

    /// Chooses among `n` equivalent pending items (e.g. which ready task
    /// of a task graph the scheduled worker grabs). The default takes the
    /// first — FIFO order — which every deterministic queue implements.
    ///
    /// Must return a value `< n` for `n > 0`; callers never invoke it
    /// with `n == 0`.
    fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "pick requires at least one choice");
        let _ = n;
        0
    }

    /// Short name for failure reports (`steal-heavy`, `random-walk`, ...).
    fn name(&self) -> &'static str;
}

/// The strategy families of `ezp-check`, for sweeping all of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// Cyclic fair order.
    RoundRobin,
    /// Uniform random runnable worker per step (seeded).
    RandomWalk,
    /// One seed-chosen worker always acts first (maximizes stealing).
    StealHeavy,
    /// One seed-chosen worker acts only when alone (maximal staleness).
    StarveOne,
}

impl StrategyKind {
    /// Every strategy family, in a fixed order.
    pub fn all() -> [StrategyKind; 4] {
        [
            StrategyKind::RoundRobin,
            StrategyKind::RandomWalk,
            StrategyKind::StealHeavy,
            StrategyKind::StarveOne,
        ]
    }

    /// Instantiates this family for `workers` logical workers from a
    /// 64-bit seed. The same `(kind, seed, workers)` triple always yields
    /// the same schedule.
    pub fn build(self, seed: u64, workers: usize) -> Box<dyn Interleave> {
        assert!(workers > 0, "a schedule needs at least one worker");
        match self {
            StrategyKind::RoundRobin => Box::new(RoundRobin::new()),
            StrategyKind::RandomWalk => Box::new(RandomWalk::seeded(seed)),
            StrategyKind::StealHeavy => {
                Box::new(StealHeavy::new((seed as usize) % workers))
            }
            StrategyKind::StarveOne => {
                Box::new(StarveOne::seeded(seed, workers))
            }
        }
    }
}

/// Cyclic fair scheduling: worker `w` is followed by `w+1`, skipping
/// non-runnable workers.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A round-robin schedule starting at worker 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Interleave for RoundRobin {
    fn next_worker(&mut self, runnable: &[bool]) -> Option<usize> {
        let n = runnable.len();
        for off in 0..n {
            let w = (self.next + off) % n;
            if runnable[w] {
                self.next = (w + 1) % n;
                return Some(w);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Uniformly random runnable worker each step, from the testkit PRNG.
#[derive(Debug)]
pub struct RandomWalk {
    rng: Rng,
}

impl RandomWalk {
    /// A random walk replaying deterministically from `seed`.
    pub fn seeded(seed: u64) -> Self {
        RandomWalk { rng: Rng::seed(seed) }
    }
}

impl Interleave for RandomWalk {
    fn next_worker(&mut self, runnable: &[bool]) -> Option<usize> {
        let live: Vec<usize> = (0..runnable.len()).filter(|&w| runnable[w]).collect();
        if live.is_empty() {
            return None;
        }
        Some(live[self.rng.gen_range(0..live.len())])
    }

    fn pick(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    fn name(&self) -> &'static str {
        "random-walk"
    }
}

/// One favourite worker always acts while runnable; the rest round-robin.
///
/// Under a work-stealing dispenser this drives the favourite through its
/// own range and deep into the steal path while every victim still holds
/// its untouched static block — the adversarial "steal everything" run.
#[derive(Debug)]
pub struct StealHeavy {
    favorite: usize,
    rr: RoundRobin,
}

impl StealHeavy {
    /// A steal-heavy schedule favouring `favorite`.
    pub fn new(favorite: usize) -> Self {
        StealHeavy {
            favorite,
            rr: RoundRobin::new(),
        }
    }
}

impl Interleave for StealHeavy {
    fn next_worker(&mut self, runnable: &[bool]) -> Option<usize> {
        if self.favorite < runnable.len() && runnable[self.favorite] {
            return Some(self.favorite);
        }
        self.rr.next_worker(runnable)
    }

    fn name(&self) -> &'static str {
        "steal-heavy"
    }
}

/// One worker is starved: scheduled only when it is the sole runnable
/// worker. Everyone else round-robins.
///
/// This makes the starved worker maximally stale — when it finally acts,
/// the shared state has moved as far as it possibly can, the pattern
/// behind lost-update and double-grant bugs.
#[derive(Debug)]
pub struct StarveOne {
    starved: usize,
    rr: RoundRobin,
}

impl StarveOne {
    /// Starves `starved`.
    pub fn new(starved: usize) -> Self {
        StarveOne {
            starved,
            rr: RoundRobin::new(),
        }
    }

    /// Starves a seed-chosen worker out of `workers`.
    pub fn seeded(seed: u64, workers: usize) -> Self {
        assert!(workers > 0);
        StarveOne::new((seed as usize) % workers)
    }
}

impl Interleave for StarveOne {
    fn next_worker(&mut self, runnable: &[bool]) -> Option<usize> {
        let others_runnable = runnable
            .iter()
            .enumerate()
            .any(|(w, &r)| r && w != self.starved);
        if others_runnable {
            let mut masked: Vec<bool> = runnable.to_vec();
            if self.starved < masked.len() {
                masked[self.starved] = false;
            }
            self.rr.next_worker(&masked)
        } else {
            self.rr.next_worker(runnable)
        }
    }

    fn name(&self) -> &'static str {
        "starve-one"
    }
}

/// Records the picks of a strategy over a fixed runnable-mask script —
/// the replayable "trace" of a schedule, used by tests to assert that
/// equal seeds produce equal schedules.
pub fn trace_strategy(
    strategy: &mut dyn Interleave,
    steps: usize,
    runnable: &[bool],
) -> Vec<Option<usize>> {
    (0..steps).map(|_| strategy.next_worker(runnable)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ezp_proptest;

    /// Drives `strategy` over a toy system where worker `w` needs
    /// `work[w]` scheduling steps to finish; returns the completion
    /// order, panicking if the strategy stops scheduling runnable work.
    fn drain(strategy: &mut dyn Interleave, mut work: Vec<usize>) -> Vec<usize> {
        let mut order = Vec::new();
        let budget = work.iter().sum::<usize>() + 1;
        for _ in 0..budget {
            let runnable: Vec<bool> = work.iter().map(|&r| r > 0).collect();
            match strategy.next_worker(&runnable) {
                Some(w) => {
                    assert!(runnable[w], "{} picked an idle worker", strategy.name());
                    work[w] -= 1;
                    order.push(w);
                }
                None => {
                    assert!(
                        work.iter().all(|&r| r == 0),
                        "{} gave up with work left: {work:?}",
                        strategy.name()
                    );
                    return order;
                }
            }
        }
        assert!(
            work.iter().all(|&r| r == 0),
            "{} exceeded its step budget: {work:?}",
            strategy.name()
        );
        order
    }

    #[test]
    fn round_robin_is_cyclic_and_skips_idle() {
        let mut rr = RoundRobin::new();
        let all = [true, true, true];
        assert_eq!(rr.next_worker(&all), Some(0));
        assert_eq!(rr.next_worker(&all), Some(1));
        assert_eq!(rr.next_worker(&all), Some(2));
        assert_eq!(rr.next_worker(&all), Some(0));
        assert_eq!(rr.next_worker(&[false, false, true]), Some(2));
        assert_eq!(rr.next_worker(&[true, false, false]), Some(0));
        assert_eq!(rr.next_worker(&[false, false, false]), None);
    }

    #[test]
    fn steal_heavy_prefers_favorite_until_idle() {
        let mut s = StealHeavy::new(2);
        assert_eq!(s.next_worker(&[true, true, true]), Some(2));
        assert_eq!(s.next_worker(&[true, true, true]), Some(2));
        assert_eq!(s.next_worker(&[true, true, false]), Some(0));
        assert_eq!(s.next_worker(&[true, true, true]), Some(2));
    }

    #[test]
    fn starve_one_schedules_starved_only_when_alone() {
        let mut s = StarveOne::new(0);
        assert_eq!(s.next_worker(&[true, true, true]), Some(1));
        assert_eq!(s.next_worker(&[true, true, true]), Some(2));
        assert_eq!(s.next_worker(&[true, false, false]), Some(0));
        assert_eq!(s.next_worker(&[false, false, false]), None);
    }

    #[test]
    fn default_pick_is_fifo_random_walk_is_seeded() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(5), 0);
        let picks = |seed: u64| {
            let mut w = RandomWalk::seeded(seed);
            (0..32).map(|_| w.pick(7)).collect::<Vec<_>>()
        };
        assert_eq!(picks(9), picks(9));
        assert!(picks(9).iter().all(|&p| p < 7));
        assert_ne!(picks(9), picks(10));
    }

    ezp_proptest! {
        #![cases(48)]

        /// Same `(kind, seed)` must yield the same schedule — the replay
        /// guarantee everything in ezp-check rests on.
        fn prop_same_seed_same_trace(
            seed in crate::prop::any_u64(),
            workers in 1usize..7,
            kind_idx in 0usize..4,
        ) {
            let kind = StrategyKind::all()[kind_idx];
            let runnable = vec![true; workers];
            let a = trace_strategy(&mut *kind.build(seed, workers), 64, &runnable);
            let b = trace_strategy(&mut *kind.build(seed, workers), 64, &runnable);
            assert_eq!(a, b, "{kind:?} is not replayable from its seed");
        }

        /// Every strategy is permutation-complete: any finite per-worker
        /// workload drains fully, and every worker appears in the order.
        fn prop_every_strategy_drains_all_workers(
            seed in crate::prop::any_u64(),
            workers in 1usize..7,
            kind_idx in 0usize..4,
            per_worker in 1usize..9,
        ) {
            let kind = StrategyKind::all()[kind_idx];
            let mut strategy = kind.build(seed, workers);
            let order = drain(&mut *strategy, vec![per_worker; workers]);
            assert_eq!(order.len(), workers * per_worker);
            for w in 0..workers {
                assert_eq!(
                    order.iter().filter(|&&x| x == w).count(),
                    per_worker,
                    "{kind:?} lost steps of worker {w}"
                );
            }
        }

        /// Strategies never pick an idle worker, whatever the mask.
        fn prop_picks_respect_runnable_mask(
            seed in crate::prop::any_u64(),
            workers in 1usize..7,
            kind_idx in 0usize..4,
            mask_bits in crate::prop::any_u64(),
        ) {
            let kind = StrategyKind::all()[kind_idx];
            let mut strategy = kind.build(seed, workers);
            let runnable: Vec<bool> =
                (0..workers).map(|w| mask_bits >> w & 1 == 1).collect();
            for _ in 0..16 {
                match strategy.next_worker(&runnable) {
                    Some(w) => assert!(runnable[w], "{kind:?} picked idle worker {w}"),
                    None => assert!(runnable.iter().all(|&r| !r)),
                }
            }
        }
    }
}
