//! Deterministic pseudo-random number generation.
//!
//! The generator is Xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 so that any 64-bit seed — including 0 — expands to a
//! well-mixed 256-bit state. Both algorithms are public domain reference
//! designs; the implementation here is self-contained so the workspace
//! carries no registry dependency for randomness.

use std::ops::{Range, RangeInclusive};

/// Expand a 64-bit seed into a stream of well-mixed words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Xoshiro256++ generator. Cheap to copy, deterministic for a given seed.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed. Any seed is fine, including 0.
    pub fn seed(seed: u64) -> Self {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform u64 in `[0, span)`, unbiased via rejection sampling.
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0, "bounded_u64 requires a non-empty span");
        // 2^64 mod span, computed without overflowing; values past the last
        // full multiple of `span` are rejected to keep the draw unbiased.
        let excess = (u64::MAX % span).wrapping_add(1) % span;
        let zone = u64::MAX - excess;
        loop {
            let r = self.next_u64();
            if r <= zone {
                return r % span;
            }
        }
    }

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics on an empty range, matching `rand`'s behaviour.
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fill a byte slice with random data.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Integer range types that [`Rng::gen_range`] can sample from.
pub trait RangeSample {
    type Out;
    fn sample(self, rng: &mut Rng) -> Self::Out;
}

macro_rules! impl_range_sample {
    ($($ty:ty),*) => {$(
        impl RangeSample for Range<$ty> {
            type Out = $ty;
            fn sample(self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $ty
            }
        }
        impl RangeSample for RangeInclusive<$ty> {
            type Out = $ty;
            fn sample(self, rng: &mut Rng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.bounded_u64(span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeSample for Range<f64> {
    type Out = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::seed(42);
        let mut b = Rng::seed(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed(1);
        let mut b = Rng::seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams for distinct seeds should differ");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Rng::seed(0);
        let first = r.next_u64();
        let second = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = Rng::seed(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = Rng::seed(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_u64_range_works() {
        let mut r = Rng::seed(11);
        // Must not hang or panic on the degenerate full-width span.
        let v = r.gen_range(0u64..=u64::MAX);
        let _ = v;
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seed(5);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = Rng::seed(9);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed(13);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed(17);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
