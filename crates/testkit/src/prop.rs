//! Miniature property-testing harness.
//!
//! A [`Strategy`] produces random values and knows how to simplify a failing
//! one. The [`ezp_proptest!`] macro wraps each property in a `#[test]` that
//! draws `cases` inputs, runs the body under `catch_unwind`, and on failure
//! shrinks the input (binary-search style for numbers, prefix/halving for
//! vectors) before reporting the minimal counter-example together with the
//! seed needed to replay it.
//!
//! Determinism: the base seed comes from `EZP_TEST_SEED` (a u64, decimal or
//! `0x`-prefixed hex) or a fixed default. Each property derives its own
//! stream as `base_seed ^ fnv1a(test_name)`, so runs are reproducible and
//! independent of test execution order.

use std::cell::Cell;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::Rng;

/// Cases per property when no `#![cases(n)]` attribute is given.
pub const DEFAULT_CASES: u32 = 64;

/// Base seed used when `EZP_TEST_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0xEA5F_9A9D_2020_1EA4;

/// A generator of random values with optional shrinking.
pub trait Strategy {
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of `v`, most aggressive first. Returning an
    /// empty vec means the value is already minimal (or unshrinkable).
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let _ = v;
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Integer and float ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut Rng) -> $ty {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$ty) -> Vec<$ty> {
                shrink_int(self.start, *v)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut Rng) -> $ty {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$ty) -> Vec<$ty> {
                shrink_int(*self.start(), *v)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Binary-search shrinking toward the lower bound: try the bound itself,
/// then the midpoint, then the immediate predecessor.
fn shrink_int<T>(lo: T, v: T) -> Vec<T>
where
    T: Copy + PartialOrd + PartialEq + MidpointToward,
{
    if v == lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mid = v.midpoint_toward(lo);
    if mid != lo && mid != v {
        out.push(mid);
    }
    let pred = v.step_toward(lo);
    if pred != lo && !out.contains(&pred) {
        out.push(pred);
    }
    out
}

/// Helper for shrink_int: midpoint and single-step moves toward a bound.
pub trait MidpointToward {
    fn midpoint_toward(self, lo: Self) -> Self;
    fn step_toward(self, lo: Self) -> Self;
}

macro_rules! impl_midpoint {
    ($($ty:ty),*) => {$(
        impl MidpointToward for $ty {
            fn midpoint_toward(self, lo: Self) -> Self {
                // lo + (self - lo) / 2 without overflow on signed types.
                lo.wrapping_add(self.wrapping_sub(lo) / 2)
            }
            fn step_toward(self, lo: Self) -> Self {
                if self > lo { self - 1 } else { self }
            }
        }
    )*};
}

impl_midpoint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        if *v == self.start {
            return Vec::new();
        }
        let mid = self.start + (*v - self.start) / 2.0;
        if mid == *v {
            vec![self.start]
        } else {
            vec![self.start, mid]
        }
    }
}

impl Strategy for RangeInclusive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy for a boolean coin flip (`false` is considered simpler).
pub fn any_bool() -> RangeInclusive<bool> {
    false..=true
}

/// Strategy covering the full u64 domain.
pub fn any_u64() -> RangeInclusive<u64> {
    0..=u64::MAX
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Uniform choice from a fixed list; earlier entries are considered simpler.
pub struct Select<T> {
    items: Vec<T>,
}

pub fn select<T: Clone + Debug + PartialEq>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}

impl<T: Clone + Debug + PartialEq> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.gen_range(0..self.items.len());
        self.items[i].clone()
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        match self.items.iter().position(|it| it == v) {
            Some(idx) if idx > 0 => vec![self.items[0].clone(), self.items[idx - 1].clone()],
            _ => Vec::new(),
        }
    }
}

/// Vector of values from `elem`, with length drawn from `len`.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec_of requires a non-empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Structural shrinks first: minimal length, half length, drop last.
        if v.len() > min {
            out.push(v[..min].to_vec());
            let half = min + (v.len() - min) / 2;
            if half != min && half != v.len() {
                out.push(v[..half].to_vec());
            }
            if v.len() - 1 != half {
                out.push(v[..v.len() - 1].to_vec());
            }
        }
        // Then element-wise: first shrink candidate for each position.
        for (i, item) in v.iter().enumerate() {
            if let Some(simpler) = self.elem.shrink(item).into_iter().next() {
                let mut copy = v.clone();
                copy[i] = simpler;
                out.push(copy);
            }
        }
        out
    }
}

/// Grid dimensions `(dim, tile)` where `tile` divides `dim` — the shape every
/// EASYPAP kernel iterates over. Shrinks toward small power-of-two grids.
pub struct GridDims {
    max_tiles_per_side: usize,
}

pub fn grid_dims(max_tiles_per_side: usize) -> GridDims {
    assert!(max_tiles_per_side >= 1);
    GridDims { max_tiles_per_side }
}

impl Strategy for GridDims {
    type Value = (usize, usize);

    fn generate(&self, rng: &mut Rng) -> (usize, usize) {
        let tile = 1usize << rng.gen_range(2u32..6); // 4, 8, 16, 32
        let tiles = rng.gen_range(1..=self.max_tiles_per_side);
        (tile * tiles, tile)
    }

    fn shrink(&self, v: &(usize, usize)) -> Vec<(usize, usize)> {
        let (dim, tile) = *v;
        let tiles = dim / tile;
        let mut out = Vec::new();
        if tiles > 1 {
            out.push((tile, tile));
            let half = tiles / 2;
            if half > 1 {
                out.push((tile * half, tile));
            }
        }
        if tile > 4 {
            let t = tile / 2;
            out.push((t * tiles, t));
        }
        out
    }
}

/// Output of [`StrategyExt::prop_map`]. Mapped values do not shrink (the
/// inverse mapping is unknown), which keeps the combinator trivially correct.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values. Named `prop_map` (not `map`) because
    /// ranges are both strategies and iterators, and a bare `.map` call on
    /// `0..n` would be ambiguous.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy> StrategyExt for S {}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

// Tuples of strategies are strategies over tuples; shrinking tries each
// component in turn while holding the others fixed.
macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Base seed for this process: `EZP_TEST_SEED` (decimal or 0x-hex) if set,
/// otherwise [`DEFAULT_SEED`].
pub fn base_seed() -> u64 {
    match std::env::var("EZP_TEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("EZP_TEST_SEED is not a valid u64: {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Install (once per process) a panic hook that stays silent while the
/// current thread is probing a property case, so shrinking does not spam
/// stderr with hundreds of expected panic reports. Other threads — i.e.
/// ordinary failing tests — keep the previous hook's behaviour.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_one<V, F>(f: &F, value: V) -> Result<(), String>
where
    F: Fn(V),
{
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| f(value)));
    QUIET_PANICS.with(|q| q.set(false));
    outcome.map_err(panic_message)
}

/// Run `cases` random cases of a property, shrinking on failure. This is the
/// engine behind [`ezp_proptest!`]; call it directly for hand-rolled setups.
pub fn run_cases<S, F>(name: &str, cases: u32, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    install_quiet_hook();
    let seed = base_seed();
    let mut rng = Rng::seed(seed ^ fnv1a(name));
    for case in 0..cases {
        let value = strategy.generate(&mut rng);
        if let Err(first_msg) = run_one(&body, value.clone()) {
            let (minimal, msg, steps) = shrink_failure(&strategy, &body, value, first_msg);
            panic!(
                "property `{name}` failed (case {case_n}/{cases}, seed {seed:#x}).\n\
                 minimal input after {steps} shrink step(s): {minimal:?}\n\
                 failure: {msg}\n\
                 replay with: EZP_TEST_SEED={seed} cargo test {name}",
                case_n = case + 1,
            );
        }
    }
}

/// Greedily walk the shrink tree: take the first candidate that still fails,
/// repeat until no candidate fails or the probe budget is exhausted.
fn shrink_failure<S, F>(
    strategy: &S,
    body: &F,
    mut value: S::Value,
    mut msg: String,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let mut budget: u32 = 500;
    let mut steps = 0;
    'outer: while budget > 0 {
        for cand in strategy.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(m) = run_one(body, cand.clone()) {
                value = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, msg, steps)
}

/// Declare property tests.
///
/// ```ignore
/// ezp_proptest! {
///     #![cases(32)]  // optional, defaults to DEFAULT_CASES
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]`. The expressions after `in` are
/// [`Strategy`] values (integer/float ranges work directly); multiple
/// arguments are bundled into a tuple strategy so shrinking can simplify
/// each independently.
#[macro_export]
macro_rules! ezp_proptest {
    (#![cases($n:expr)] $($rest:tt)*) => {
        $crate::__ezp_proptest_fns! { ($n) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__ezp_proptest_fns! { ($crate::prop::DEFAULT_CASES) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __ezp_proptest_fns {
    (($cases:expr)) => {};
    (($cases:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::prop::run_cases(
                stringify!($name),
                $cases,
                ($($strat,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::__ezp_proptest_fns! { ($cases) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = 0u64..1000;
        let collect = |name: &str| {
            let mut rng = Rng::seed(base_seed() ^ fnv1a(name));
            (0..10).map(|_| strat.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }

    #[test]
    fn shrink_int_halves_toward_bound() {
        let c = shrink_int(0u32, 100);
        assert!(c.contains(&0));
        assert!(c.contains(&50));
        assert!(c.contains(&99));
        assert!(shrink_int(5u32, 5).is_empty());
    }

    #[test]
    fn failing_property_shrinks_to_threshold() {
        // Property fails for v >= 37; shrinking must land exactly on 37.
        let strat = 0u32..10_000;
        let mut rng = Rng::seed(99);
        let mut value = strat.generate(&mut rng);
        while value < 37 {
            value = strat.generate(&mut rng);
        }
        install_quiet_hook();
        let body = |v: u32| assert!(v < 37, "too big: {v}");
        let msg = run_one(&body, value).unwrap_err();
        let (minimal, _, _) = shrink_failure(&strat, &body, value, msg);
        assert_eq!(minimal, 37);
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let strat = vec_of(0u8..10, 2..6);
        let mut rng = Rng::seed(1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        // Shrinks never go below the minimum length.
        let v = strat.generate(&mut rng);
        for cand in strat.shrink(&v) {
            assert!(cand.len() >= 2);
        }
    }

    #[test]
    fn grid_dims_tile_divides_dim() {
        let strat = grid_dims(8);
        let mut rng = Rng::seed(2);
        for _ in 0..100 {
            let (dim, tile) = strat.generate(&mut rng);
            assert!(dim % tile == 0, "tile {tile} must divide dim {dim}");
            assert!(dim / tile <= 8);
        }
    }

    #[test]
    fn select_shrinks_toward_first() {
        let strat = select(vec![8usize, 12, 16]);
        let c = strat.shrink(&16);
        assert_eq!(c, vec![8, 12]);
        assert!(strat.shrink(&8).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let strat = (0u32..100, 0u32..100);
        for cand in strat.shrink(&(40, 60)) {
            let changed = (cand.0 != 40) as u32 + (cand.1 != 60) as u32;
            assert_eq!(changed, 1);
        }
    }

    // The macro itself, exercised end-to-end on passing properties.
    ezp_proptest! {
        #![cases(16)]

        fn macro_addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            assert_eq!(a + b, b + a);
        }

        fn macro_single_arg(n in 1usize..64) {
            assert!(n >= 1 && n < 64);
        }

        fn macro_mapped_strategy(s in (0usize..3).prop_map(|i| ["a", "b", "c"][i])) {
            assert!(["a", "b", "c"].contains(&s));
        }
    }
}
