//! Corpus-driven conformance tests: every rule has a `bad/` tree that
//! must fire (and fire only that rule) and a `good/` tree that must be
//! clean. The corpus lives under `tests/lint_fixtures/`, which the
//! workspace walker deliberately skips so the intentionally-bad files
//! never fail the self-clean run.

use ezp_lint::{lint_workspace, lint_workspace_only, Report};
use std::path::PathBuf;

fn fixture_dir(case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(case)
}

fn fixture(case: &str) -> Report {
    lint_workspace(&fixture_dir(case))
}

/// Asserts the `bad/` side of `case` fires `rule` at least once and
/// fires nothing else, and the `good/` side is completely clean.
fn assert_pair(case: &str, rule: &str) {
    let bad = fixture(&format!("{case}/bad"));
    assert!(
        !bad.diagnostics.is_empty(),
        "{case}/bad produced no findings"
    );
    for d in &bad.diagnostics {
        assert_eq!(
            d.rule, rule,
            "{case}/bad fired unexpected rule {} at {}:{}",
            d.rule, d.path, d.line
        );
    }
    let good = fixture(&format!("{case}/good"));
    assert!(
        good.diagnostics.is_empty(),
        "{case}/good is not clean:\n{}",
        good.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unsafe_needs_safety_pair() {
    assert_pair("unsafe_safety", "unsafe-needs-safety");
}

#[test]
fn ordering_needs_justification_pair() {
    assert_pair("ordering", "ordering-needs-justification");
}

#[test]
fn no_lock_in_hot_path_pair() {
    assert_pair("hotpath", "no-lock-in-hot-path");
}

#[test]
fn determinism_pair() {
    assert_pair("determinism", "determinism");
}

#[test]
fn hermeticity_pair() {
    // Fires from both halves of the rule: the registry dependency in
    // Cargo.toml and the `extern crate` in the source file.
    assert_pair("hermeticity", "hermeticity");
    let bad = fixture("hermeticity/bad");
    let paths: Vec<&str> = bad.diagnostics.iter().map(|d| d.path.as_str()).collect();
    assert!(paths.iter().any(|p| p.ends_with("Cargo.toml")));
    assert!(paths.iter().any(|p| p.ends_with(".rs")));
}

#[test]
fn cfg_feature_exists_pair() {
    assert_pair("cfgfeature", "cfg-feature-exists");
}

#[test]
fn suppression_round_trip() {
    // `suppression/allowed` is byte-for-byte the `ordering/bad`
    // violation plus an `allow(ordering-needs-justification)` marker on
    // the line above the site: the unsuppressed twin fires (previous
    // test), the suppressed one must not.
    let allowed = fixture("suppression/allowed");
    assert!(
        allowed.diagnostics.is_empty(),
        "suppression did not switch the finding off:\n{}",
        allowed
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unknown_suppression_is_itself_a_finding() {
    let report = fixture("suppression/unknown");
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.diagnostics[0].rule, "unknown-suppression");
    assert!(report.diagnostics[0].message.contains("no-such-rule"));
}

#[test]
fn reports_count_scanned_files() {
    let report = fixture("hermeticity/bad");
    // one Cargo.toml + one .rs
    assert_eq!(report.files_scanned, 2);
}

// ---- cross-file pass corpora (PR 10) ---------------------------------

#[test]
fn atomics_pairing_pass_pair() {
    assert_pair("atomics_pairing", "atomics-pairing");
    // one finding per seeded defect: unpaired release (at the store),
    // untagged relaxed-only field (at the decl), unjustified mix (at
    // the relaxed read)
    let bad = fixture("atomics_pairing/bad");
    assert_eq!(bad.diagnostics.len(), 3);
    assert!(bad.diagnostics.iter().any(|d| d.message.contains("`flag`")));
    assert!(bad.diagnostics.iter().any(|d| d.message.contains("`hits`")));
    assert!(bad.diagnostics.iter().any(|d| d.message.contains("`seq`")));
}

#[test]
fn guard_leak_pass_pair() {
    assert_pair("guard_leak", "guard-leak");
    let bad = fixture("guard_leak/bad");
    // missing Drop on ShareTicket + two discarded lease() calls
    assert_eq!(bad.diagnostics.len(), 3);
    assert!(bad
        .diagnostics
        .iter()
        .any(|d| d.message.contains("ShareTicket") && d.message.contains("impl Drop")));
    assert_eq!(
        bad.diagnostics
            .iter()
            .filter(|d| d.message.contains("lease()"))
            .count(),
        2
    );
}

#[test]
fn counter_registry_pass_pair() {
    assert_pair("counter_registry", "counter-registry");
    let bad = fixture("counter_registry/bad");
    // undocumented registration + stale docs row + unhandled variant
    assert_eq!(bad.diagnostics.len(), 3);
    assert!(bad
        .diagnostics
        .iter()
        .any(|d| d.message.contains("`orphan_counter`") && d.message.contains("no row")));
    assert!(bad
        .diagnostics
        .iter()
        .any(|d| d.message.contains("`stale_counter`") && d.path.ends_with("observability.md")));
    assert!(bad
        .diagnostics
        .iter()
        .any(|d| d.message.contains("RuntimeEvent::PoolSync")));
}

#[test]
fn pass_suppressions_anchor_at_declarations() {
    // The corpus reproduces the atomics_pairing and guard_leak defects
    // with `allow(<pass>)` markers at the *declaration* sites; a clean
    // run proves decl-anchored suppression covers every access site
    // and that pass names validate as known suppressions.
    let r = fixture("suppression/pass_allowed");
    assert!(
        r.diagnostics.is_empty(),
        "decl-anchored pass suppression did not hold:\n{}",
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn only_filter_restricts_to_one_pass() {
    let dir = fixture_dir("atomics_pairing/bad");
    let hit = lint_workspace_only(&dir, Some("atomics-pairing"));
    assert_eq!(hit.diagnostics.len(), 3);
    assert_eq!(hit.pass_stats.len(), 1);
    assert_eq!(hit.pass_stats[0].name, "atomics-pairing");
    // a different pass sees nothing in this corpus
    let miss = lint_workspace_only(&dir, Some("guard-leak"));
    assert!(miss.diagnostics.is_empty());
    // a line rule runs no passes at all
    let line = lint_workspace_only(&dir, Some("unsafe-needs-safety"));
    assert!(line.diagnostics.is_empty());
    assert!(line.pass_stats.is_empty());
}

#[test]
fn pass_reports_carry_stats() {
    let r = fixture("counter_registry/bad");
    assert_eq!(r.pass_stats.len(), 3);
    let by_name: Vec<(&str, usize)> =
        r.pass_stats.iter().map(|s| (s.name, s.findings)).collect();
    assert!(by_name.contains(&("counter-registry", 3)));
    assert!(by_name.contains(&("atomics-pairing", 0)));
    assert!(r.total_ms >= 0.0);
}
