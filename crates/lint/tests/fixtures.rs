//! Corpus-driven conformance tests: every rule has a `bad/` tree that
//! must fire (and fire only that rule) and a `good/` tree that must be
//! clean. The corpus lives under `tests/lint_fixtures/`, which the
//! workspace walker deliberately skips so the intentionally-bad files
//! never fail the self-clean run.

use ezp_lint::{lint_workspace, Report};
use std::path::PathBuf;

fn fixture(case: &str) -> Report {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(case);
    lint_workspace(&dir)
}

/// Asserts the `bad/` side of `case` fires `rule` at least once and
/// fires nothing else, and the `good/` side is completely clean.
fn assert_pair(case: &str, rule: &str) {
    let bad = fixture(&format!("{case}/bad"));
    assert!(
        !bad.diagnostics.is_empty(),
        "{case}/bad produced no findings"
    );
    for d in &bad.diagnostics {
        assert_eq!(
            d.rule, rule,
            "{case}/bad fired unexpected rule {} at {}:{}",
            d.rule, d.path, d.line
        );
    }
    let good = fixture(&format!("{case}/good"));
    assert!(
        good.diagnostics.is_empty(),
        "{case}/good is not clean:\n{}",
        good.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unsafe_needs_safety_pair() {
    assert_pair("unsafe_safety", "unsafe-needs-safety");
}

#[test]
fn ordering_needs_justification_pair() {
    assert_pair("ordering", "ordering-needs-justification");
}

#[test]
fn no_lock_in_hot_path_pair() {
    assert_pair("hotpath", "no-lock-in-hot-path");
}

#[test]
fn determinism_pair() {
    assert_pair("determinism", "determinism");
}

#[test]
fn hermeticity_pair() {
    // Fires from both halves of the rule: the registry dependency in
    // Cargo.toml and the `extern crate` in the source file.
    assert_pair("hermeticity", "hermeticity");
    let bad = fixture("hermeticity/bad");
    let paths: Vec<&str> = bad.diagnostics.iter().map(|d| d.path.as_str()).collect();
    assert!(paths.iter().any(|p| p.ends_with("Cargo.toml")));
    assert!(paths.iter().any(|p| p.ends_with(".rs")));
}

#[test]
fn cfg_feature_exists_pair() {
    assert_pair("cfgfeature", "cfg-feature-exists");
}

#[test]
fn suppression_round_trip() {
    // `suppression/allowed` is byte-for-byte the `ordering/bad`
    // violation plus an `allow(ordering-needs-justification)` marker on
    // the line above the site: the unsuppressed twin fires (previous
    // test), the suppressed one must not.
    let allowed = fixture("suppression/allowed");
    assert!(
        allowed.diagnostics.is_empty(),
        "suppression did not switch the finding off:\n{}",
        allowed
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unknown_suppression_is_itself_a_finding() {
    let report = fixture("suppression/unknown");
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.diagnostics[0].rule, "unknown-suppression");
    assert!(report.diagnostics[0].message.contains("no-such-rule"));
}

#[test]
fn reports_count_scanned_files() {
    let report = fixture("hermeticity/bad");
    // one Cargo.toml + one .rs
    assert_eq!(report.files_scanned, 2);
}
