//! The analyzer must run clean over the workspace that ships it —
//! including over its own sources. This is the same invariant
//! `ci/verify.sh` enforces via the `ezp-lint` lane; keeping it as a
//! plain test means `cargo test` alone catches a regression.

use ezp_lint::lint_workspace;
use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root);
    assert!(
        report.diagnostics.is_empty(),
        "expected a lint-clean workspace, got:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually visited the tree (sources + manifests),
    // rather than silently scanning an empty directory.
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}
