//! Pass-suppression corpus: the same unpaired-Release shape as
//! `atomics_pairing/bad`, switched off by an `allow(atomics-pairing)`
//! anchored at the field *declaration* — one marker covers every
//! access site — plus a deliberately-not-RAII ticket suppressed at its
//! type declaration. Both markers name passes, so a clean run here
//! also proves pass names validate as known suppressions.

pub struct State {
    // release-only by design: the consumer side lives out-of-process
    // ezp-lint: allow(atomics-pairing)
    flag: AtomicBool,
}

impl State {
    pub fn publish(&self) {
        self.flag.store(true, Ordering::Release);
    }
}

// shared token, not a scope guard: release is the reader observing it
// ezp-lint: allow(guard-leak)
pub struct ShareTicket {
    live: bool,
}
