//! Fixture: the same violation as `ordering/bad`, switched off by an
//! in-source suppression marker on the line above the site.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) {
    // ezp-lint: allow(ordering-needs-justification)
    c.fetch_add(1, Ordering::Relaxed);
}
