//! Fixture: a suppression naming a rule that does not exist — exactly
//! how a typo would silently disarm a real suppression.

// ezp-lint: allow(no-such-rule)
pub fn f() {}
