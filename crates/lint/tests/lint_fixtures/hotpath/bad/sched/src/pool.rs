//! Fixture: blocking primitives in a de-contended hot-path file.

use std::sync::Mutex;

pub struct Pool {
    queue: Mutex<Vec<usize>>,
}
