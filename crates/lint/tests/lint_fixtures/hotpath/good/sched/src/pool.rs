//! Fixture: the hot path stays on atomics.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Pool {
    pending: AtomicUsize,
}

impl Pool {
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }
}
