//! Fixture: `park.rs` is the sanctioned blocking fallback — locks are
//! allowed here even under a `sched` directory.

use std::sync::{Condvar, Mutex};

pub struct ParkLot {
    gate: Mutex<bool>,
    bell: Condvar,
}
