//! Fixture: `extern crate` may name std facade crates and workspace
//! members.

extern crate std;
extern crate fixture_good;
