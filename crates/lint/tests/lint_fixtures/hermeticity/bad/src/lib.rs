//! Fixture: `extern crate` naming a crate outside the workspace.

extern crate rand;
