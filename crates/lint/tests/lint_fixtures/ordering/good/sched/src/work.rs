//! Fixture: weak orderings justified, SeqCst exempt by default.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) {
    // ORDERING: counter-only — the value is read back by a single
    // aggregator after join; no data is published along this edge.
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn publish(c: &AtomicUsize) {
    c.store(1, Ordering::SeqCst);
}
