//! Fixture: a weak atomic ordering in sched code with no written
//! justification.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::Relaxed);
}
