//! Event declarations for the counter-registry good corpus.

pub enum RuntimeEvent {
    Steals { n: u64 },
    PoolSync,
}
