//! The in-sync twin of `counter_registry/bad`: every declared counter
//! is documented, every documented counter is declared, and every
//! `RuntimeEvent` variant is matched.

pub mod names {
    pub const STEALS: &str = "steals";
    pub const PARKS: &str = "pool_parks";
}

impl Probe {
    fn on(&self, ev: RuntimeEvent, worker: usize) {
        match ev {
            RuntimeEvent::Steals { n } => self.add(worker, n),
            RuntimeEvent::PoolSync => self.incr(worker),
        }
    }
}
