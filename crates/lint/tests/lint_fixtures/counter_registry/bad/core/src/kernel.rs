//! Event declarations for the counter-registry bad corpus.

pub enum RuntimeEvent {
    Steals { n: u64 },
    PoolSync,
}
