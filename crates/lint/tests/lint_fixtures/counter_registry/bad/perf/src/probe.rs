//! Intentionally drifted registry for the counter-registry corpus:
//! `orphan_counter` is declared but undocumented, the docs table keeps
//! a `stale_counter` row nothing registers, and `RuntimeEvent::PoolSync`
//! is declared in core but never matched here.

pub mod names {
    pub const STEALS: &str = "steals";
    pub const ORPHAN: &str = "orphan_counter";
}

impl Probe {
    fn on(&self, ev: RuntimeEvent, worker: usize) {
        match ev {
            RuntimeEvent::Steals { n } => self.add(worker, n),
        }
    }
}
