//! Fixture: every unsafe site carries a SAFETY: argument.

pub fn grab(p: *const u32) -> u32 {
    // SAFETY: callers pass a pointer derived from a live `&u32`, so the
    // read is in-bounds and the pointee is initialized.
    unsafe { *p }
}

/// Trailing-comment placement also counts.
pub fn grab2(p: *const u32) -> u32 {
    unsafe { *p } // SAFETY: same contract as `grab`
}
