//! Fixture: an unsafe block with no safety argument anywhere near it.

pub fn grab(p: *const u32) -> u32 {
    unsafe { *p }
}
