//! Intentionally leaky guards for the guard-leak corpus: a
//! guard-suffixed type with no Drop impl, and two call sites that
//! discard the lease a guard-returning API hands back.

pub struct ShareTicket {
    live: bool,
}

pub struct PoolLease {
    id: usize,
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        release_slot(self.id);
    }
}

impl PoolMux {
    pub fn lease(&self) -> PoolLease {
        PoolLease { id: 0 }
    }
}

pub fn caller(mux: &PoolMux) {
    let _ = mux.lease();
    mux.lease();
}
