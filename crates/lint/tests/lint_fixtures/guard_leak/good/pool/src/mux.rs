//! The repaired twin of `guard_leak/bad`: every guard type implements
//! Drop and every acquisition is bound to a named variable that holds
//! the guard for a scope.

pub struct ShareTicket {
    live: bool,
}

impl Drop for ShareTicket {
    fn drop(&mut self) {
        self.live = false;
    }
}

pub struct PoolLease {
    id: usize,
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        release_slot(self.id);
    }
}

impl PoolMux {
    pub fn lease(&self) -> PoolLease {
        PoolLease { id: 0 }
    }
}

pub fn caller(mux: &PoolMux) {
    let lease = mux.lease();
    run_region(&lease);
    let _held = mux.lease();
}

pub fn pass_through(mux: &PoolMux) -> PoolLease {
    return mux.lease();
}
