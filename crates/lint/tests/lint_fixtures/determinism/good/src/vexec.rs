//! Fixture: the replayed module is a pure function of its inputs —
//! virtual time and ordered maps only.

use std::collections::BTreeMap;

pub fn replay(steps: u64) -> u64 {
    let mut seen: BTreeMap<usize, u64> = BTreeMap::new();
    seen.insert(0, 1);
    steps + seen.len() as u64
}
