//! Fixture: wall-clock reads and RandomState-seeded maps in an
//! ezp-check-replayed module.

use std::collections::HashMap;
use std::time::Instant;

pub fn replay() -> u64 {
    let t = Instant::now();
    let mut seen: HashMap<usize, u64> = HashMap::new();
    seen.insert(0, 1);
    t.elapsed().as_nanos() as u64 + seen.len() as u64
}
