//! Fixture: a cfg gate naming a feature the manifest never declares —
//! the gated code can never compile again.

#[cfg(feature = "ezp-check")]
pub fn gated() {}
