//! Fixture: the cfg gate matches a declared feature (attribute and
//! `cfg!` macro forms).

#[cfg(feature = "ezp-check")]
pub fn gated() {}

pub fn probe() -> bool {
    cfg!(feature = "ezp-check")
}
