//! The repaired twin of `atomics_pairing/bad`: the Release store is
//! paired, the statistics field is tagged, and the relaxed fast-path
//! read carries an ORDERING: argument.

pub struct State {
    flag: AtomicBool,
    // counter-only: statistics; no other memory is published through it
    hits: AtomicU64,
    seq: AtomicU64,
}

impl State {
    pub fn publish(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn observe(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    pub fn record(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn bump(&self) {
        self.seq.store(1, Ordering::Release);
    }

    pub fn wait(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    pub fn peek(&self) -> u64 {
        // ORDERING: own-counter fast path — the caller only compares
        // against its previous read, so a stale value is harmless.
        self.seq.load(Ordering::Relaxed)
    }
}
