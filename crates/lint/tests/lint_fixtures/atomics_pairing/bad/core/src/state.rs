//! Intentionally broken atomics for the atomics-pairing corpus: an
//! unpaired Release store, an untagged Relaxed-only field, and an
//! unjustified Relaxed read of a field carrying acquire/release edges.

pub struct State {
    flag: AtomicBool,
    hits: AtomicU64,
    seq: AtomicU64,
}

impl State {
    pub fn publish(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn record(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn bump(&self) {
        self.seq.store(1, Ordering::Release);
    }

    pub fn wait(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    pub fn peek(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}
