//! The rule set: each rule enforces one invariant the scheduler's
//! correctness argument leans on. See `docs/static-analysis.md` for the
//! rationale behind every rule and the suppression syntax.

use crate::diag::Diagnostic;
use crate::lexer::{find_word, has_word, Line};
use crate::manifest::Manifest;

/// How many *code* lines above a site a `SAFETY:` / `ORDERING:`
/// comment may sit and still count as justifying it. Comment and blank
/// lines do not consume the window — a long justification paragraph
/// must not push itself out of range — but more than this much
/// unrelated code between comment and site means the comment is
/// justifying something else.
pub const JUSTIFICATION_WINDOW: usize = 8;

/// Names of the per-line rules, in reporting order. (The cross-file
/// pass names live in [`crate::passes::PASS_NAMES`]; [`RULES`] is the
/// full catalogue.)
pub const RULE_NAMES: &[&str] = &[
    "unsafe-needs-safety",
    "ordering-needs-justification",
    "no-lock-in-hot-path",
    "determinism",
    "hermeticity",
    "cfg-feature-exists",
];

/// One catalogue entry for `ezp-lint --rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule or pass name, as used in diagnostics and `allow(…)`.
    pub name: &'static str,
    /// Severity: every shipped rule is `deny` (any finding fails the
    /// run with exit 1); the field exists so a future `warn` tier does
    /// not need a format change.
    pub severity: &'static str,
    /// `line` (per-line rule), `pass` (cross-file pass) or `meta`
    /// (about the lint markers themselves).
    pub kind: &'static str,
    /// One-line description for `--rules`.
    pub desc: &'static str,
}

/// The full rule/pass catalogue, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unsafe-needs-safety",
        severity: "deny",
        kind: "line",
        desc: "every unsafe site carries a SAFETY: comment stating the invariant",
    },
    RuleInfo {
        name: "ordering-needs-justification",
        severity: "deny",
        kind: "line",
        desc: "non-SeqCst atomic orderings in sched/chan carry an ORDERING: comment",
    },
    RuleInfo {
        name: "no-lock-in-hot-path",
        severity: "deny",
        kind: "line",
        desc: "Mutex/RwLock/Condvar stay out of the de-contended scheduler files",
    },
    RuleInfo {
        name: "determinism",
        severity: "deny",
        kind: "line",
        desc: "no wall clock or OS entropy in ezp-check-replayed modules",
    },
    RuleInfo {
        name: "hermeticity",
        severity: "deny",
        kind: "line",
        desc: "no registry dependencies in manifests, no foreign extern crate",
    },
    RuleInfo {
        name: "cfg-feature-exists",
        severity: "deny",
        kind: "line",
        desc: "every cfg(feature = \"…\") names a feature the crate declares",
    },
    RuleInfo {
        name: "atomics-pairing",
        severity: "deny",
        kind: "pass",
        desc: "Release writes pair with an acquire side; Relaxed-only fields carry a taxonomy tag",
    },
    RuleInfo {
        name: "guard-leak",
        severity: "deny",
        kind: "pass",
        desc: "guard/lease/ticket types impl Drop; acquired guards are bound, never discarded",
    },
    RuleInfo {
        name: "counter-registry",
        severity: "deny",
        kind: "pass",
        desc: "registered counters, the observability docs table and RuntimeEvent handling stay in sync",
    },
    RuleInfo {
        name: "unknown-suppression",
        severity: "deny",
        kind: "meta",
        desc: "allow(…) markers name a real rule or pass",
    },
];

/// Is `name` a shipped rule, pass, or the suppression meta-rule?
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// Every name `allow(…)` / `--only` may legitimately use.
pub fn known_rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// File names of the scheduler hot path, where blocking primitives are
/// banned (PR 4 removed them; this rule keeps them out). `park.rs` is
/// deliberately absent: it *is* the documented blocking fallback.
const HOT_PATH_FILES: &[&str] = &["pool.rs", "deque.rs", "dispenser.rs", "taskgraph.rs"];

/// Blocking primitives banned from the hot path.
const LOCK_TOKENS: &[&str] = &["Mutex", "RwLock", "Condvar"];

/// File names of ezp-check-replayed modules: code here re-executes
/// under the virtual scheduler, where a run must be a pure function of
/// `(strategy, seed)`.
const REPLAYED_FILES: &[&str] = &["vexec.rs", "shadow.rs", "schedule.rs"];

/// Wall-clock / OS-entropy constructs banned from replayed modules,
/// with the replacement each message points at.
const NONDETERMINISM: &[(&str, &str)] = &[
    ("Instant", "virtual time (step counts) or a caller-supplied clock"),
    ("SystemTime", "virtual time (step counts) or a caller-supplied clock"),
    ("HashMap", "BTreeMap (RandomState-seeded iteration order varies per process)"),
    ("HashSet", "BTreeSet (RandomState-seeded iteration order varies per process)"),
    ("RandomState", "ezp_testkit::Rng, seeded from the schedule seed"),
    ("thread_rng", "ezp_testkit::Rng, seeded from the schedule seed"),
];

/// External crates `extern crate` may legitimately name.
const EXTERN_ALLOWED: &[&str] = &["std", "core", "alloc", "test", "proc_macro"];

/// Atomic orderings that demand a written justification. `SeqCst` is
/// the workspace's default spine and needs none; everything weaker (or
/// mixed, like `AcqRel`) encodes a per-site argument that must be
/// written down next to the site.
const JUSTIFY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

/// A lexed `.rs` file plus the path facts rules scope on.
pub struct SourceFile<'a> {
    /// Path relative to the lint root, `/`-separated.
    pub rel: &'a str,
    /// Lexed lines.
    pub lines: &'a [Line],
    /// Features the owning crate declares (from the nearest manifest).
    pub crate_features: &'a [String],
    /// Package names of all workspace members (underscore form), for
    /// the `extern crate` check.
    pub workspace_crates: &'a [String],
}

impl SourceFile<'_> {
    fn file_name(&self) -> &str {
        self.rel.rsplit('/').next().unwrap_or(self.rel)
    }

    fn has_component(&self, comp: &str) -> bool {
        self.rel.split('/').any(|c| c == comp)
    }

    /// Is `tag` present in a trailing comment on `line` or in a comment
    /// within [`JUSTIFICATION_WINDOW`] *code* lines above it (comments
    /// and blanks do not consume the window)?
    fn justified(&self, line: usize, tag: &str) -> bool {
        if self.lines[line].comment.contains(tag) {
            return true;
        }
        let mut code_seen = 0usize;
        let mut i = line;
        while i > 0 && code_seen <= JUSTIFICATION_WINDOW {
            i -= 1;
            let l = &self.lines[i];
            if l.comment.contains(tag) {
                return true;
            }
            if !l.code.trim().is_empty() {
                code_seen += 1;
            }
        }
        false
    }
}

/// Runs every source rule over one file, appending findings.
pub fn check_source(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    unsafe_needs_safety(f, out);
    ordering_needs_justification(f, out);
    no_lock_in_hot_path(f, out);
    determinism(f, out);
    extern_crate_hermeticity(f, out);
    cfg_feature_exists(f, out);
}

fn push(out: &mut Vec<Diagnostic>, rule: &'static str, f: &SourceFile<'_>, line: usize, msg: String) {
    out.push(Diagnostic {
        rule,
        path: f.rel.to_string(),
        line: line + 1,
        message: msg,
    });
}

/// **unsafe-needs-safety** — every `unsafe` block, fn, trait or impl
/// must carry a `SAFETY:` comment on the same line or in the comment
/// block directly above it. Applies everywhere, tests included: an
/// unsound test is still unsound.
fn unsafe_needs_safety(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    for (i, l) in f.lines.iter().enumerate() {
        if has_word(&l.code, "unsafe") && !f.justified(i, "SAFETY:") {
            push(
                out,
                "unsafe-needs-safety",
                f,
                i,
                "unsafe site without a SAFETY: comment; state the invariant that makes \
                 this sound (and who upholds it) within the 8 lines above"
                    .into(),
            );
        }
    }
}

/// **ordering-needs-justification** — non-SeqCst atomic orderings in
/// `crates/sched` and `crates/chan` production code need an
/// `ORDERING:` comment saying whether the access is counter-only
/// (Relaxed is fine) or part of a synchronizing edge (and with what it
/// pairs). SeqCst sites are exempt — the workspace treats SeqCst as the
/// default spine — which is also what allowlists whole SeqCst-spine
/// files like `park.rs`. `chan` is in scope because its SPSC ring is a
/// sanctioned unsafe island whose soundness *is* its ordering argument.
fn ordering_needs_justification(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if !(f.has_component("sched") || f.has_component("chan")) {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = find_word_at(&l.code, "Ordering", from) {
            from = pos + "Ordering".len();
            let rest: String = l.code.chars().skip(from).collect();
            let Some(tail) = rest.strip_prefix("::") else {
                continue;
            };
            let ident: String = tail.chars().take_while(|c| c.is_alphanumeric()).collect();
            if JUSTIFY_ORDERINGS.contains(&ident.as_str()) && !f.justified(i, "ORDERING:") {
                push(
                    out,
                    "ordering-needs-justification",
                    f,
                    i,
                    format!(
                        "Ordering::{ident} without an ORDERING: comment; say whether this \
                         access is counter-only or synchronizing (and what it pairs with)"
                    ),
                );
            }
        }
    }
}

/// **no-lock-in-hot-path** — `Mutex` / `RwLock` / `Condvar` are banned
/// from the scheduler hot-path files PR 4 de-contended
/// (`pool.rs` / `deque.rs` / `dispenser.rs` / `taskgraph.rs` under a
/// `sched` directory). Test modules are exempt: tests may use locks as
/// oracles. The blocking fallback lives in `park.rs`, which is the one
/// sched file this rule deliberately skips.
fn no_lock_in_hot_path(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if !f.has_component("sched") || !HOT_PATH_FILES.contains(&f.file_name()) {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for tok in LOCK_TOKENS {
            if has_word(&l.code, tok) {
                push(
                    out,
                    "no-lock-in-hot-path",
                    f,
                    i,
                    format!(
                        "{tok} in a de-contended hot-path file; use the lock-free protocols \
                         (atomics + ParkLot fallback) or move the blocking code to park.rs"
                    ),
                );
            }
        }
    }
}

/// **determinism** — ezp-check replays runs from `(strategy, seed)`, so
/// the replayed modules (`vexec.rs`, `shadow.rs`, `schedule.rs`) must
/// not read wall clocks or OS entropy, and must not iterate
/// RandomState-seeded maps. Test modules are exempt.
fn determinism(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    if !REPLAYED_FILES.contains(&f.file_name()) {
        return;
    }
    for (i, l) in f.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for (tok, instead) in NONDETERMINISM {
            if has_word(&l.code, tok) {
                push(
                    out,
                    "determinism",
                    f,
                    i,
                    format!(
                        "{tok} in an ezp-check-replayed module breaks seed replay; \
                         use {instead}"
                    ),
                );
            }
        }
    }
}

/// **hermeticity** (source half) — `extern crate` may only name std
/// facade crates or workspace members; anything else would need the
/// registry the build bans. (The manifest half lives in
/// [`check_manifest`].)
fn extern_crate_hermeticity(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    for (i, l) in f.lines.iter().enumerate() {
        let Some(pos) = find_word(&l.code, "extern", 0) else {
            continue;
        };
        let rest: String = l.code.chars().skip(pos + "extern".len()).collect();
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("crate") else {
            continue; // `extern "C"` etc.
        };
        let name: String = rest
            .trim_start()
            .chars()
            .take_while(|c| crate::lexer::is_ident_char(*c))
            .collect();
        if name.is_empty() {
            continue;
        }
        let known = EXTERN_ALLOWED.contains(&name.as_str())
            || f.workspace_crates.iter().any(|c| c == &name);
        if !known {
            push(
                out,
                "hermeticity",
                f,
                i,
                format!(
                    "extern crate {name} is not a workspace member; the build is hermetic \
                     (no registry) — vendor the code in-tree or use an ezp-* substitute"
                ),
            );
        }
    }
}

/// **cfg-feature-exists** — every `feature = "…"` inside a `cfg`
/// context must name a feature the owning crate's `Cargo.toml` declares
/// (or an optional dependency). Catches dead gates left behind when a
/// feature is renamed — code that silently never compiles again.
fn cfg_feature_exists(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    for (i, l) in f.lines.iter().enumerate() {
        if !l.code.contains("cfg") {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = find_word_at(&l.code, "feature", from) {
            from = pos + "feature".len();
            let rest: String = l.code.chars().skip(from).collect();
            if !rest.trim_start().starts_with('=') {
                continue;
            }
            // The value is the first string literal opening after `pos`.
            let Some((_, name)) = l.strings.iter().find(|(sp, _)| *sp >= from) else {
                continue;
            };
            if !f.crate_features.iter().any(|k| k == name) {
                push(
                    out,
                    "cfg-feature-exists",
                    f,
                    i,
                    format!(
                        "cfg(feature = \"{name}\") names a feature the owning crate's \
                         Cargo.toml does not declare; the gated code can never compile"
                    ),
                );
            }
        }
    }
}

/// **hermeticity** (manifest half) — every dependency in every
/// dependency table must resolve inside the workspace (`workspace =
/// true` or `path = "…"`). A bare registry dependency breaks the
/// offline build before `cargo` even fetches it.
pub fn check_manifest(rel: &str, m: &Manifest, out: &mut Vec<Diagnostic>) {
    for d in &m.deps {
        if !d.hermetic {
            out.push(Diagnostic {
                rule: "hermeticity",
                path: rel.to_string(),
                line: d.line,
                message: format!(
                    "[{}] entry \"{}\" is not a workspace path dependency; the build is \
                     hermetic — use an in-tree crate (ezp-testkit replaces rand/proptest/\
                     criterion; std::sync replaces crossbeam/parking_lot)",
                    d.section, d.name
                ),
            });
        }
    }
}

/// `find_word` with an explicit start, re-exported for rule internals.
fn find_word_at(code: &str, word: &str, from: usize) -> Option<usize> {
    find_word(code, word, from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;

    fn run(rel: &str, src: &str, features: &[&str]) -> Vec<Diagnostic> {
        let lines = lex_file(src);
        let features: Vec<String> = features.iter().map(|s| s.to_string()).collect();
        let crates = vec!["ezp_core".to_string()];
        let f = SourceFile {
            rel,
            lines: &lines,
            crate_features: &features,
            workspace_crates: &crates,
        };
        let mut out = Vec::new();
        check_source(&f, &mut out);
        out
    }

    #[test]
    fn unsafe_without_safety_fires_and_with_safety_passes() {
        let bad = run("x/src/a.rs", "unsafe { do_it() }\n", &[]);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "unsafe-needs-safety");
        let good = run("x/src/a.rs", "// SAFETY: pointer is live\nunsafe { do_it() }\n", &[]);
        assert!(good.is_empty());
        let trailing = run("x/src/a.rs", "unsafe { do_it() } // SAFETY: live\n", &[]);
        assert!(trailing.is_empty());
    }

    #[test]
    fn safety_comment_too_far_above_does_not_count() {
        // nine *code* lines between comment and site exceed the window
        let src = format!("// SAFETY: stale\n{}unsafe {{ x() }}\n", "let a = 1;\n".repeat(9));
        assert_eq!(run("x/src/a.rs", &src, &[]).len(), 1);
    }

    #[test]
    fn comment_and_blank_lines_do_not_consume_the_window() {
        let src = format!(
            "// SAFETY: long argument follows\n{}\nunsafe {{ x() }}\n",
            "// …more prose\n".repeat(12)
        );
        assert!(run("x/src/a.rs", &src, &[]).is_empty());
    }

    #[test]
    fn ordering_rule_scopes_to_sched_and_exempts_seqcst() {
        let src = "a.store(1, Ordering::Relaxed);\n";
        assert_eq!(run("crates/sched/src/pool.rs", src, &[]).len(), 1);
        assert!(run("crates/perf/src/counters.rs", src, &[]).is_empty());
        let seqcst = "a.store(1, Ordering::SeqCst);\n";
        assert!(run("crates/sched/src/pool.rs", seqcst, &[]).is_empty());
        let justified = "// ORDERING: counter-only\na.store(1, Ordering::Relaxed);\n";
        assert!(run("crates/sched/src/pool.rs", justified, &[]).is_empty());
        // the chan crate's ring is in scope too (PR 8)
        assert_eq!(run("crates/chan/src/ring.rs", src, &[]).len(), 1);
        assert!(run("crates/chan/src/ring.rs", justified, &[]).is_empty());
    }

    #[test]
    fn ordering_rule_skips_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { a.load(Ordering::Relaxed); }\n}\n";
        assert!(run("crates/sched/src/pool.rs", src, &[]).is_empty());
    }

    #[test]
    fn locks_banned_only_in_hot_path_files() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(run("crates/sched/src/pool.rs", src, &[]).len(), 1);
        assert!(run("crates/sched/src/park.rs", src, &[]).is_empty());
        assert!(run("crates/monitor/src/live.rs", src, &[]).is_empty());
        // simsched's taskgraph.rs is not the hot path
        assert!(run("crates/simsched/src/taskgraph.rs", src, &[]).is_empty());
    }

    #[test]
    fn lock_in_hot_path_test_module_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert!(run("crates/sched/src/deque.rs", src, &[]).is_empty());
    }

    #[test]
    fn determinism_bans_wall_clock_in_replayed_files() {
        let src = "let t = Instant::now();\n";
        assert_eq!(run("crates/sched/src/vexec.rs", src, &[]).len(), 1);
        assert!(run("crates/core/src/time.rs", src, &[]).is_empty());
        let map = "let m: HashMap<u32, u32> = HashMap::new();\n";
        assert_eq!(run("crates/core/src/shadow.rs", map, &[]).len(), 1);
    }

    #[test]
    fn extern_crate_outside_workspace_is_flagged() {
        assert_eq!(run("x/src/a.rs", "extern crate serde;\n", &[]).len(), 1);
        assert!(run("x/src/a.rs", "extern crate std;\n", &[]).is_empty());
        assert!(run("x/src/a.rs", "extern crate ezp_core;\n", &[]).is_empty());
        assert!(run("x/src/a.rs", "extern \"C\" { fn f(); } // SAFETY: ffi decl\n", &[]).is_empty());
    }

    #[test]
    fn cfg_feature_must_be_declared() {
        let src = "#[cfg(feature = \"ezp-check\")]\nmod vexec;\n";
        assert!(run("x/src/lib.rs", src, &["ezp-check"]).is_empty());
        let bad = run("x/src/lib.rs", src, &["other"]);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "cfg-feature-exists");
        // cfg! macro form
        let mac = "if cfg!(feature = \"gone\") { x(); }\n";
        assert_eq!(run("x/src/lib.rs", mac, &[]).len(), 1);
    }

    #[test]
    fn manifest_registry_dep_is_flagged() {
        let m = crate::manifest::parse("[dependencies]\nrand = \"0.8\"\nezp-core.workspace = true\n");
        let mut out = Vec::new();
        check_manifest("crates/x/Cargo.toml", &m, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("rand"));
        assert_eq!(out[0].line, 2);
    }
}
