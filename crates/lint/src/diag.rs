//! Diagnostics and their text / JSON renderings.

use std::fmt;

/// One finding: a rule violated at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name, e.g. `unsafe-needs-safety`.
    pub rule: &'static str,
    /// Path of the offending file, relative to the lint root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation, including the fix direction.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Output format of the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One `path:line: [rule] message` line per diagnostic.
    Text,
    /// A machine-readable report object (for `ci/lint-report.json`).
    Json,
}

/// Renders a full report in the requested format.
pub fn render(diags: &[Diagnostic], files_scanned: usize, format: Format) -> String {
    match format {
        Format::Text => {
            let mut out = String::new();
            for d in diags {
                out.push_str(&d.to_string());
                out.push('\n');
            }
            out.push_str(&format!(
                "ezp-lint: {} diagnostic(s) in {} file(s) scanned\n",
                diags.len(),
                files_scanned
            ));
            out
        }
        Format::Json => {
            let mut out = String::from("{\n");
            out.push_str("  \"tool\": \"ezp-lint\",\n");
            out.push_str("  \"version\": 1,\n");
            out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
            out.push_str(&format!("  \"diagnostic_count\": {},\n", diags.len()));
            out.push_str("  \"diagnostics\": [");
            for (i, d) in diags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                    json_string(d.rule),
                    json_string(&d.path),
                    d.line,
                    json_string(&d.message)
                ));
            }
            if !diags.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("]\n}\n");
            out
        }
    }
}

/// Escapes a string for JSON output (the same minimal escaping
/// `ezp-core::json` performs; duplicated here so the linter stays
/// dependency-free).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: "unsafe-needs-safety",
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "an \"unsafe\" block needs a SAFETY: comment".into(),
        }]
    }

    #[test]
    fn text_format_is_one_line_per_diag_plus_summary() {
        let out = render(&sample(), 3, Format::Text);
        assert!(out.contains("crates/x/src/lib.rs:7: [unsafe-needs-safety]"));
        assert!(out.contains("1 diagnostic(s) in 3 file(s)"));
    }

    #[test]
    fn json_format_escapes_and_counts() {
        let out = render(&sample(), 3, Format::Json);
        assert!(out.contains("\"diagnostic_count\": 1"));
        assert!(out.contains("\\\"unsafe\\\""));
        assert!(out.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let out = render(&[], 0, Format::Json);
        assert!(out.contains("\"diagnostics\": []"));
    }
}
