//! Diagnostics and their text / JSON renderings.

use std::fmt;

use crate::workspace::Report;

/// One finding: a rule violated at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name, e.g. `unsafe-needs-safety`.
    pub rule: &'static str,
    /// Path of the offending file, relative to the lint root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation, including the fix direction.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Output format of the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One `path:line: [rule] message` line per diagnostic.
    Text,
    /// A machine-readable report object (for `ci/lint-report.json`).
    Json,
}

/// Renders a full report in the requested format.
///
/// The JSON shape is **version 2**: version 1's fields are unchanged
/// (`tool`, `files_scanned`, `diagnostic_count`, `diagnostics`), and
/// the report gains `total_ms` (wall time of the whole run) plus a
/// `passes` array with one `{name, findings, wall_ms}` object per
/// cross-file pass — `ci/verify.sh` gates on both.
pub fn render(report: &Report, format: Format) -> String {
    let diags = &report.diagnostics;
    match format {
        Format::Text => {
            let mut out = String::new();
            for d in diags {
                out.push_str(&d.to_string());
                out.push('\n');
            }
            if !report.pass_stats.is_empty() {
                let per_pass: Vec<String> = report
                    .pass_stats
                    .iter()
                    .map(|p| format!("{} {}", p.name, p.findings))
                    .collect();
                out.push_str(&format!(
                    "ezp-lint: passes: {} ({:.0} ms total)\n",
                    per_pass.join(", "),
                    report.total_ms
                ));
            }
            out.push_str(&format!(
                "ezp-lint: {} diagnostic(s) in {} file(s) scanned\n",
                diags.len(),
                report.files_scanned
            ));
            out
        }
        Format::Json => {
            let mut out = String::from("{\n");
            out.push_str("  \"tool\": \"ezp-lint\",\n");
            out.push_str("  \"version\": 2,\n");
            out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
            out.push_str(&format!("  \"total_ms\": {:.1},\n", report.total_ms));
            out.push_str("  \"passes\": [");
            for (i, p) in report.pass_stats.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"name\": {}, \"findings\": {}, \"wall_ms\": {:.1}}}",
                    json_string(p.name),
                    p.findings,
                    p.wall_ms
                ));
            }
            if !report.pass_stats.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("],\n");
            out.push_str(&format!("  \"diagnostic_count\": {},\n", diags.len()));
            out.push_str("  \"diagnostics\": [");
            for (i, d) in diags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                    json_string(d.rule),
                    json_string(&d.path),
                    d.line,
                    json_string(&d.message)
                ));
            }
            if !diags.is_empty() {
                out.push_str("\n  ");
            }
            out.push_str("]\n}\n");
            out
        }
    }
}

/// Escapes a string for JSON output (the same minimal escaping
/// `ezp-core::json` performs; duplicated here so the linter stays
/// dependency-free).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::PassStat;

    fn sample() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                rule: "unsafe-needs-safety",
                path: "crates/x/src/lib.rs".into(),
                line: 7,
                message: "an \"unsafe\" block needs a SAFETY: comment".into(),
            }],
            files_scanned: 3,
            pass_stats: vec![PassStat {
                name: "atomics-pairing",
                findings: 0,
                wall_ms: 1.25,
            }],
            total_ms: 12.5,
        }
    }

    #[test]
    fn text_format_is_one_line_per_diag_plus_summaries() {
        let out = render(&sample(), Format::Text);
        assert!(out.contains("crates/x/src/lib.rs:7: [unsafe-needs-safety]"));
        assert!(out.contains("passes: atomics-pairing 0"));
        assert!(out.contains("1 diagnostic(s) in 3 file(s)"));
    }

    #[test]
    fn json_format_escapes_counts_and_reports_passes() {
        let out = render(&sample(), Format::Json);
        assert!(out.contains("\"version\": 2"));
        assert!(out.contains("\"diagnostic_count\": 1"));
        assert!(out.contains("\\\"unsafe\\\""));
        assert!(out.contains("\"files_scanned\": 3"));
        assert!(out.contains("\"total_ms\": 12.5"));
        assert!(out.contains("{\"name\": \"atomics-pairing\", \"findings\": 0, \"wall_ms\": 1.2}"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let out = render(&Report::default(), Format::Json);
        assert!(out.contains("\"diagnostics\": []"));
        assert!(out.contains("\"passes\": []"));
    }
}
