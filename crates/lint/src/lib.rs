//! # ezp-lint — static enforcement of the runtime's invariants
//!
//! PRs 3–4 rebuilt the scheduler hot path on hand-rolled atomics and
//! guard it *dynamically* (ezp-check's schedule exploration, the
//! shadow-write race detector). This crate is the *static* layer in
//! front of that: a std-only analyzer that fails the build before the
//! dynamic layer ever has to catch the bug. It ships six rules, each
//! born from a real invariant in `crates/sched`, `crates/core` and
//! `crates/testkit`:
//!
//! * **unsafe-needs-safety** — every `unsafe` site carries a `SAFETY:`
//!   comment;
//! * **ordering-needs-justification** — non-SeqCst atomic orderings in
//!   `crates/sched` carry an `ORDERING:` comment (counter-only vs.
//!   synchronizing);
//! * **no-lock-in-hot-path** — `Mutex`/`RwLock`/`Condvar` stay out of
//!   the de-contended files (`pool.rs`, `deque.rs`, `dispenser.rs`,
//!   `taskgraph.rs`);
//! * **determinism** — no wall clock or OS entropy in ezp-check-replayed
//!   modules (`vexec.rs`, `shadow.rs`, `schedule.rs`);
//! * **hermeticity** — no non-workspace dependencies in any manifest,
//!   no `extern crate` outside the workspace;
//! * **cfg-feature-exists** — every `#[cfg(feature = "…")]` names a
//!   declared feature.
//!
//! The analyzer is a lightweight lexer (no `syn`): [`lexer`] classifies
//! every character as code / comment / literal and tracks `#[cfg(test)]`
//! regions by brace depth; [`rules`] pattern-match on the classified
//! token stream. False positives are silenced per line with a comment
//! marker — the tool name, a colon, then `allow(<rule>)` — and a
//! suppression naming an unknown rule is itself reported. See `docs/static-analysis.md` for the full
//! rule catalogue and how this complements ezp-check.
//!
//! Run it with `cargo run -p ezp-lint` (add `-- --format=json` for the
//! CI report); it exits nonzero when any diagnostic survives.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod workspace;

pub use diag::{render, Diagnostic, Format};
pub use workspace::{lint_files, lint_workspace, Report};
