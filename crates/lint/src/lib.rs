//! # ezp-lint — static enforcement of the runtime's invariants
//!
//! PRs 3–4 rebuilt the scheduler hot path on hand-rolled atomics and
//! guard it *dynamically* (ezp-check's schedule exploration, the
//! shadow-write race detector). This crate is the *static* layer in
//! front of that: a std-only analyzer that fails the build before the
//! dynamic layer ever has to catch the bug. It ships six rules, each
//! born from a real invariant in `crates/sched`, `crates/core` and
//! `crates/testkit`:
//!
//! * **unsafe-needs-safety** — every `unsafe` site carries a `SAFETY:`
//!   comment;
//! * **ordering-needs-justification** — non-SeqCst atomic orderings in
//!   `crates/sched` carry an `ORDERING:` comment (counter-only vs.
//!   synchronizing);
//! * **no-lock-in-hot-path** — `Mutex`/`RwLock`/`Condvar` stay out of
//!   the de-contended files (`pool.rs`, `deque.rs`, `dispenser.rs`,
//!   `taskgraph.rs`);
//! * **determinism** — no wall clock or OS entropy in ezp-check-replayed
//!   modules (`vexec.rs`, `shadow.rs`, `schedule.rs`);
//! * **hermeticity** — no non-workspace dependencies in any manifest,
//!   no `extern crate` outside the workspace;
//! * **cfg-feature-exists** — every `#[cfg(feature = "…")]` names a
//!   declared feature.
//!
//! On top of the per-line rules, the engine is **two-phase**: phase 1
//! walks the workspace once, running the line rules while building a
//! cross-file symbol model ([`model`] — atomic fields and their access
//! orderings, guard types and `Drop` impls, guard-returning APIs,
//! registered counter names, `RuntimeEvent` variants, and the
//! observability docs' counter table); phase 2 runs three cross-file
//! [`passes`] over that model:
//!
//! * **atomics-pairing** — every `Release` write pairs with an acquire
//!   side somewhere in its crate; Relaxed-only fields carry a taxonomy
//!   tag; unjustified Relaxed/Acquire mixes are flagged;
//! * **guard-leak** — `*Guard`/`*Lease`/`*Ticket`/`*Handle` types
//!   `impl Drop`, and guard-returning APIs are never called for a
//!   discarded result (`let _ = lease()` drops the lease on the spot);
//! * **counter-registry** — registered counter names, the
//!   observability docs table and `RuntimeEvent` handling in the perf
//!   probe stay mutually in sync.
//!
//! The analyzer is a lightweight lexer (no `syn`): [`lexer`] classifies
//! every character as code / comment / literal and tracks `#[cfg(test)]`
//! regions by brace depth; [`rules`] pattern-match on the classified
//! token stream. False positives are silenced per line with a comment
//! marker — the tool name, a colon, then `allow(<rule>)` — and a
//! suppression naming an unknown rule is itself reported. Cross-file
//! findings may also be suppressed at the declaration that anchors
//! them. See `docs/static-analysis.md` for the full
//! rule catalogue and how this complements ezp-check.
//!
//! Run it with `cargo run -p ezp-lint` (add `-- --format=json` for the
//! CI report, `--only <rule>` for one rule, `--rules` for the
//! catalogue); it exits nonzero when any diagnostic survives.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod passes;
pub mod rules;
pub mod workspace;

pub use diag::{render, Diagnostic, Format};
pub use workspace::{lint_files, lint_workspace, lint_workspace_only, Report};
