//! A miniature `Cargo.toml` reader.
//!
//! The hermeticity and cfg-feature rules need three facts per manifest:
//! which features it declares, which dependencies it lists (and whether
//! each is a path/workspace dependency), and where those entries sit
//! (line numbers for diagnostics). A full TOML parser would be overkill
//! — workspace manifests are machine-formatted — so this reader handles
//! the subset Cargo itself documents: `[section]` headers, `key =
//! value` pairs, dotted keys (`ezp-core.workspace = true`), inline
//! tables (`{ workspace = true, optional = true }`) and `#` comments.

/// One dependency entry of a manifest.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Crate name as written (dash form).
    pub name: String,
    /// 1-based line of the entry.
    pub line: usize,
    /// Section it came from (`dependencies`, `dev-dependencies`, …).
    pub section: String,
    /// True when the entry resolves inside the workspace: it carries
    /// `workspace = true` or a `path = "…"` key.
    pub hermetic: bool,
    /// True when the dependency is declared `optional = true` (its name
    /// doubles as an implicit feature).
    pub optional: bool,
}

/// The facts ezp-lint needs from one `Cargo.toml`.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `package.name`, when present.
    pub package_name: Option<String>,
    /// Keys of the `[features]` table.
    pub features: Vec<String>,
    /// Entries of every dependency table.
    pub deps: Vec<Dep>,
}

impl Manifest {
    /// All names usable in `#[cfg(feature = "…")]` for this crate:
    /// declared features plus optional dependencies.
    pub fn known_features(&self) -> Vec<String> {
        let mut all = self.features.clone();
        for d in self.deps.iter().filter(|d| d.optional) {
            if !all.contains(&d.name) {
                all.push(d.name.clone());
            }
        }
        all
    }
}

/// Is this section header a dependency table? Covers `dependencies`,
/// `dev-dependencies`, `build-dependencies`, `workspace.dependencies`
/// and `target.'…'.dependencies` variants.
fn dep_section(name: &str) -> bool {
    name == "dependencies"
        || name.ends_with(".dependencies")
        || name.ends_with("dev-dependencies")
        || name.ends_with("build-dependencies")
}

/// Parses manifest text. Never fails: unknown constructs are skipped,
/// which keeps the linter usable on manifests it only partly
/// understands (the rules then simply see fewer facts).
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let rest = rest.trim_start_matches('[');
            if let Some(end) = rest.find(']') {
                section = rest[..end].trim().to_string();
                // `[dependencies.foo]` declares dependency `foo` as its
                // own table; record it when the header itself names it.
                if let Some(dep_name) = section.strip_prefix("dependencies.") {
                    m.deps.push(Dep {
                        name: dep_name.trim().to_string(),
                        line: idx + 1,
                        section: "dependencies".into(),
                        hermetic: false,
                        optional: false,
                    });
                }
            }
            continue;
        }
        let Some(eq) = trimmed.find('=') else {
            continue;
        };
        let key = trimmed[..eq].trim();
        let value = trimmed[eq + 1..].trim();
        if section == "package" && key == "name" {
            m.package_name = Some(unquote(value).to_string());
        } else if section == "features" {
            m.features.push(key_head(key).to_string());
        } else if dep_section(&section) {
            let name = key_head(key).to_string();
            // Dotted key: `ezp-core.workspace = true`.
            let dotted_tail = key.split_once('.').map(|(_, t)| t.trim());
            let hermetic = matches!(dotted_tail, Some("workspace") | Some("path"))
                || value.contains("workspace")
                || value.contains("path");
            let optional = value.contains("optional") && value.contains("true");
            m.deps.push(Dep {
                name,
                line: idx + 1,
                section: section.clone(),
                hermetic,
                optional,
            });
        } else if let Some(dep_name) = section.strip_prefix("dependencies.") {
            // Keys inside an expanded `[dependencies.foo]` table.
            if let Some(dep) = m.deps.iter_mut().rev().find(|d| d.name == dep_name) {
                if key == "workspace" || key == "path" {
                    dep.hermetic = true;
                }
                if key == "optional" && value.contains("true") {
                    dep.optional = true;
                }
            }
        }
    }
    m
}

/// First segment of a possibly dotted key.
fn key_head(key: &str) -> &str {
    key.split('.').next().unwrap_or(key).trim()
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Removes surrounding double quotes, if present.
fn unquote(v: &str) -> &str {
    v.trim().trim_matches('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "ezp-sample" # trailing comment

[features]
ezp-check = ["ezp-core/ezp-check", "dep:ezp-testkit"]
# a comment line
extra = []

[dependencies]
ezp-core.workspace = true
ezp-testkit = { workspace = true, optional = true }
rand = "0.8"

[dev-dependencies]
ezp-perf = { path = "../perf" }
"#;

    #[test]
    fn package_and_features_parse() {
        let m = parse(SAMPLE);
        assert_eq!(m.package_name.as_deref(), Some("ezp-sample"));
        assert_eq!(m.features, vec!["ezp-check", "extra"]);
    }

    #[test]
    fn deps_classify_hermetic_vs_registry() {
        let m = parse(SAMPLE);
        let by_name = |n: &str| m.deps.iter().find(|d| d.name == n).unwrap();
        assert!(by_name("ezp-core").hermetic);
        assert!(by_name("ezp-testkit").hermetic);
        assert!(by_name("ezp-testkit").optional);
        assert!(!by_name("rand").hermetic);
        assert!(by_name("ezp-perf").hermetic);
        assert_eq!(by_name("ezp-perf").section, "dev-dependencies");
    }

    #[test]
    fn optional_deps_count_as_features() {
        let m = parse(SAMPLE);
        let known = m.known_features();
        assert!(known.contains(&"ezp-check".to_string()));
        assert!(known.contains(&"ezp-testkit".to_string()));
        assert!(!known.contains(&"rand".to_string()));
    }

    #[test]
    fn expanded_dependency_tables_parse() {
        let m = parse("[dependencies.foo]\npath = \"../foo\"\noptional = true\n");
        let foo = m.deps.iter().find(|d| d.name == "foo").unwrap();
        assert!(foo.hermetic);
        assert!(foo.optional);
    }

    #[test]
    fn comment_stripping_respects_strings() {
        assert_eq!(strip_toml_comment("a = \"x # y\" # z"), "a = \"x # y\" ");
    }
}
