//! `ezp-lint` CLI: lint the workspace, print diagnostics, exit nonzero
//! on any finding. See `docs/static-analysis.md`.

#![deny(unsafe_code)]

use ezp_lint::workspace::lint_workspace_only;
use ezp_lint::{render, Format};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
ezp-lint — static analysis for the EASYPAP workspace

USAGE:
    ezp-lint [--root <dir>] [--format=text|json] [--only <rule>]
             [--rules | --list-rules]

OPTIONS:
    --root <dir>       Workspace root to lint (default: nearest ancestor
                       of the current directory containing a [workspace]
                       manifest, else the current directory)
    --format=<fmt>     Output format: text (default) or json
    --only <rule>      Run a single rule or pass (fast local iteration)
    --rules            Print the full catalogue — name, severity, kind,
                       one-line description — and exit
    --list-rules       Print just the rule/pass names and exit

EXIT STATUS:
    0  no diagnostics
    1  at least one diagnostic
    2  usage or I/O error

Suppress a finding on one line (or the line below the comment) with:
    // ezp-lint: allow(<rule-name>)
Cross-file pass findings may also be suppressed at the declaration that
anchors them (the atomic field, guard type, acquiring fn, counter
registration or enum variant).
";

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for r in ezp_lint::rules::RULES {
                    println!("{}", r.name);
                }
                return ExitCode::SUCCESS;
            }
            "--rules" => {
                for r in ezp_lint::rules::RULES {
                    println!("{:<30} {:<5} {:<5} {}", r.name, r.severity, r.kind, r.desc);
                }
                return ExitCode::SUCCESS;
            }
            "--format=text" => format = Format::Text,
            "--format=json" => format = Format::Json,
            "--only" => match args.next() {
                Some(name) => {
                    if !ezp_lint::rules::is_known_rule(&name) {
                        eprintln!(
                            "ezp-lint: --only {name:?} names no known rule or pass; \
                             run --rules for the catalogue"
                        );
                        return ExitCode::from(2);
                    }
                    only = Some(name);
                }
                None => {
                    eprintln!("ezp-lint: --only needs a rule name argument");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ezp-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("ezp-lint: unknown argument {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(find_workspace_root);
    if !root.is_dir() {
        eprintln!("ezp-lint: root {} is not a directory", root.display());
        return ExitCode::from(2);
    }
    let report = lint_workspace_only(&root, only.as_deref());
    print!("{}", render(&report, format));
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        if format == Format::Json {
            // The JSON body goes to stdout (usually a report file); make
            // sure a human watching the terminal still sees the verdict.
            eprintln!(
                "ezp-lint: {} diagnostic(s); run `cargo run -p ezp-lint` for details",
                report.diagnostics.len()
            );
        }
        ExitCode::FAILURE
    }
}

/// Nearest ancestor of the current directory whose `Cargo.toml` has a
/// `[workspace]` table; falls back to the current directory, so running
/// from anywhere inside the repo lints the whole repo.
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return cwd,
        }
    }
}
