//! A lightweight line-oriented Rust lexer.
//!
//! The rules in this crate do not need a syntax tree — every invariant
//! they enforce is visible at the token level ("an `unsafe` token with
//! no `SAFETY:` comment near it", "a `Mutex` token in a hot-path
//! file"). What they *do* need, and what a naive `grep` gets wrong, is
//! the classification of every character as **code**, **comment** or
//! **string-literal content**: a kernel that logs the word "Mutex", or
//! a doc comment discussing `Ordering::Relaxed`, must not trip a rule.
//!
//! [`lex_file`] walks a source file once and produces one [`Line`] per
//! input line, holding
//!
//! * `code` — the line with comments and string/char-literal *contents*
//!   blanked to spaces (length-preserving, so char positions line up
//!   with the original),
//! * `comment` — only the comment text, similarly aligned,
//! * `strings` — the contents of string literals that *start* on the
//!   line, for rules that inspect them (`cfg(feature = "…")`),
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` /
//!   `#[test]` item, tracked by brace depth,
//! * `allows` — rule names suppressed via an `allow(rule)` marker
//!   comment (the tool-tag prefix + `allow(...)` syntax documented in
//!   `docs/static-analysis.md`).
//!
//! Handled token classes: line comments, nested block comments, string
//! literals (escapes), raw strings (`r#"…"#`, any hash count, `b`
//! prefix), char and byte-char literals, and the lifetime/char-literal
//! ambiguity (`'a` vs `'a'`).

/// One lexed source line.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code text: comments and literal contents blanked to spaces.
    pub code: String,
    /// Comment text only, everything else blanked to spaces.
    pub comment: String,
    /// `(char_position_of_opening_quote, content)` for every string
    /// literal starting on this line.
    pub strings: Vec<(usize, String)>,
    /// True when the line is inside a `#[cfg(test)]` or `#[test]` item.
    pub in_test: bool,
    /// Rule names suppressed on this line (and, by the engine's
    /// convention, on the line below it).
    pub allows: Vec<String>,
}

/// Lexer state carried across characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested block comment depth.
    BlockComment(u32),
    /// Inside `"…"`; the flag notes a pending backslash escape.
    Str { escaped: bool },
    /// Inside `r##"…"##` with this many hashes.
    RawStr { hashes: usize },
    /// Inside `'…'`; the flag notes a pending backslash escape.
    CharLit { escaped: bool },
}

/// Lexes a whole file into per-line classifications.
pub fn lex_file(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut cur_code: Vec<char> = Vec::new();
    let mut cur_comment: Vec<char> = Vec::new();
    let mut state = State::Code;
    // Start position (in `cur_code`) and buffer of the string literal
    // currently being read, if any.
    let mut str_start: usize = 0;
    let mut str_buf: String = String::new();

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; everything else carries
            // its state across lines (block comments, raw strings and —
            // conservatively — normal strings, which rustc allows to
            // span lines).
            if state == State::LineComment {
                state = State::Code;
            }
            cur.code = cur_code.drain(..).collect();
            cur.comment = cur_comment.drain(..).collect();
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    cur_code.push(' ');
                    cur_code.push(' ');
                    cur_comment.push(' ');
                    cur_comment.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    cur_code.push(' ');
                    cur_code.push(' ');
                    cur_comment.push(' ');
                    cur_comment.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // Raw string? Scan back over hashes to an `r`.
                    let mut j = cur_code.len();
                    let mut hashes = 0usize;
                    while j > 0 && cur_code[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let is_raw = j > 0
                        && cur_code[j - 1] == 'r'
                        // `r` must not be the tail of an identifier
                        // (`br"` byte-raw strings pass this check too:
                        // `b` alone is treated as the identifier end,
                        // which is fine — we only need to know the
                        // literal is raw).
                        && (j < 2 || !is_ident_char(cur_code[j - 2]) || cur_code[j - 2] == 'b');
                    state = if is_raw && hashes > 0 {
                        State::RawStr { hashes }
                    } else if is_raw {
                        State::RawStr { hashes: 0 }
                    } else {
                        State::Str { escaped: false }
                    };
                    str_start = cur_code.len();
                    str_buf.clear();
                    cur_code.push('"');
                    cur_comment.push(' ');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Lifetime (`'a`, `'static`, loop labels) or char
                    // literal (`'a'`, `'\n'`)? A quote followed by an
                    // identifier char is a lifetime unless the char
                    // after that closes the literal.
                    let next = chars.get(i + 1).copied();
                    let after = chars.get(i + 2).copied();
                    let is_lifetime = matches!(next, Some(n) if is_ident_char(n))
                        && after != Some('\'')
                        && next != Some('\\');
                    if !is_lifetime {
                        state = State::CharLit { escaped: false };
                    }
                    cur_code.push('\'');
                    cur_comment.push(' ');
                    i += 1;
                    continue;
                }
                cur_code.push(c);
                cur_comment.push(' ');
                i += 1;
            }
            State::LineComment => {
                cur_code.push(' ');
                cur_comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur_code.push(' ');
                    cur_code.push(' ');
                    cur_comment.push(' ');
                    cur_comment.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    cur_code.push(' ');
                    cur_code.push(' ');
                    cur_comment.push(' ');
                    cur_comment.push(' ');
                    i += 2;
                    continue;
                }
                cur_code.push(' ');
                cur_comment.push(c);
                i += 1;
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                    str_buf.push(c);
                    cur_code.push(' ');
                    cur_comment.push(' ');
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                    str_buf.push(c);
                    cur_code.push(' ');
                    cur_comment.push(' ');
                } else if c == '"' {
                    state = State::Code;
                    cur.strings.push((str_start, std::mem::take(&mut str_buf)));
                    cur_code.push('"');
                    cur_comment.push(' ');
                } else {
                    str_buf.push(c);
                    cur_code.push(' ');
                    cur_comment.push(' ');
                }
                i += 1;
            }
            State::RawStr { hashes } => {
                if c == '"' {
                    // Closing quote must be followed by `hashes` hashes.
                    let closes = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                    if closes {
                        state = State::Code;
                        cur.strings.push((str_start, std::mem::take(&mut str_buf)));
                        cur_code.push('"');
                        cur_comment.push(' ');
                        for _ in 0..hashes {
                            cur_code.push('#');
                            cur_comment.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                str_buf.push(c);
                cur_code.push(' ');
                cur_comment.push(' ');
                i += 1;
            }
            State::CharLit { escaped } => {
                if escaped {
                    state = State::CharLit { escaped: false };
                } else if c == '\\' {
                    state = State::CharLit { escaped: true };
                } else if c == '\'' {
                    state = State::Code;
                    cur_code.push('\'');
                    cur_comment.push(' ');
                    i += 1;
                    continue;
                }
                cur_code.push(' ');
                cur_comment.push(' ');
                i += 1;
            }
        }
    }
    // Flush a final line without a trailing newline.
    if !cur_code.is_empty() || !cur_comment.is_empty() {
        cur.code = cur_code.into_iter().collect();
        cur.comment = cur_comment.into_iter().collect();
        lines.push(cur);
    }

    mark_test_regions(&mut lines);
    parse_suppressions(&mut lines);
    lines
}

/// True for characters that can continue a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Is `tag` present in a trailing comment on `line` or in a comment
/// within `window` *code* lines above it? Comment and blank lines do
/// not consume the window — a long justification paragraph must not
/// push itself out of range — but more than `window` unrelated code
/// lines between comment and site means the comment is justifying
/// something else. Shared by the per-line rules (`SAFETY:` /
/// `ORDERING:`) and the cross-file passes (taxonomy tags on atomic
/// field declarations).
pub fn justified(lines: &[Line], line: usize, tag: &str, window: usize) -> bool {
    if lines[line].comment.contains(tag) {
        return true;
    }
    let mut code_seen = 0usize;
    let mut i = line;
    while i > 0 && code_seen <= window {
        i -= 1;
        let l = &lines[i];
        if l.comment.contains(tag) {
            return true;
        }
        if !l.code.trim().is_empty() {
            code_seen += 1;
        }
    }
    false
}

/// The struct field (or static) an atomic method call is invoked on.
///
/// `dot` is the char position of the `.` introducing the method
/// (`self.lanes[slot].depth.fetch_add(…)` → pass the `.` before
/// `fetch_add`, get `"depth"`). The walk runs right-to-left over the
/// receiver chain, skipping index/call groups and numeric tuple
/// projections (`self.tail.0.store` → `"tail"`), and stops at the first
/// named component. Returns `None` when the receiver is a call result
/// (`factory().load(…)`) or the chain starts on a previous line with
/// nothing before the dot.
pub fn receiver_field(code: &str, dot: usize) -> Option<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut i = dot; // exclusive end of the component before the dot
    loop {
        // skip whitespace between tokens
        while i > 0 && chars[i - 1].is_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        // skip a trailing index group; a call group means the component
        // is a call result we cannot attribute to a field
        if chars[i - 1] == ']' {
            let mut depth = 0i32;
            while i > 0 {
                i -= 1;
                match chars[i] {
                    ']' => depth += 1,
                    '[' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if depth != 0 {
                return None; // group opens on an earlier line
            }
            continue;
        }
        if chars[i - 1] == ')' {
            return None;
        }
        // read one identifier backwards
        let end = i;
        while i > 0 && is_ident_char(chars[i - 1]) {
            i -= 1;
        }
        if i == end {
            return None;
        }
        let comp: String = chars[i..end].iter().collect();
        if comp.chars().all(|c| c.is_ascii_digit()) {
            // numeric tuple projection (`.0`): attribute to the field
            // it projects out of, one component further left
            if i > 0 && chars[i - 1] == '.' {
                i -= 1;
                continue;
            }
            return None;
        }
        return Some(comp);
    }
}

/// Atomic-ordering names (`Ordering::X`) appearing in the argument list
/// that opens at or after `from` on `lines[line].code` and runs to its
/// matching close paren, spanning up to `max_span` following lines.
/// Used to classify atomic access sites; an access whose call spans
/// further than `max_span` lines is treated as having no orderings
/// (and is ignored by the passes — conservative in the quiet
/// direction).
pub fn call_orderings(lines: &[Line], line: usize, from: usize, max_span: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut opened = false;
    for (k, l) in lines.iter().enumerate().skip(line).take(max_span + 1) {
        let code = &l.code;
        let start = if k == line { from } else { 0 };
        let chars: Vec<char> = code.chars().collect();
        let mut i = start;
        while i < chars.len() {
            match chars[i] {
                '(' => {
                    depth += 1;
                    opened = true;
                }
                ')' => {
                    depth -= 1;
                }
                _ => {}
            }
            i += 1;
            if opened && depth == 0 {
                break;
            }
        }
        // collect Ordering::X inside the scanned span of this line
        let span: String = chars[start..i.min(chars.len())].iter().collect();
        let mut pos = 0;
        while let Some(p) = find_word(&span, "Ordering", pos) {
            pos = p + "Ordering".len();
            let rest: String = span.chars().skip(pos).collect();
            if let Some(tail) = rest.strip_prefix("::") {
                let ident: String = tail.chars().take_while(|c| c.is_alphanumeric()).collect();
                if !ident.is_empty() {
                    out.push(ident);
                }
            }
        }
        if opened && depth == 0 {
            return out;
        }
    }
    // never closed within the window: unknown orderings
    Vec::new()
}

/// Does `code` contain `word` as a standalone token (not a substring of
/// a longer identifier)?
pub fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word, 0).is_some()
}

/// Finds the next standalone occurrence of `word` in `code` at or after
/// char position `from`; returns its char position.
pub fn find_word(code: &str, word: &str, from: usize) -> Option<usize> {
    let chars: Vec<char> = code.chars().collect();
    let w: Vec<char> = word.chars().collect();
    if w.is_empty() || chars.len() < w.len() {
        return None;
    }
    let mut i = from;
    while i + w.len() <= chars.len() {
        if chars[i..i + w.len()] == w[..] {
            let before_ok = i == 0 || !is_ident_char(chars[i - 1]);
            let after = chars.get(i + w.len()).copied();
            let after_ok = after.is_none_or(|c| !is_ident_char(c));
            if before_ok && after_ok {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` items by tracking
/// brace depth: the attribute arms a pending flag, the next `{` opens a
/// test region that closes with its matching `}`. A `;` before any `{`
/// (e.g. `#[cfg(test)] mod tests;`) disarms the flag — out-of-line test
/// modules are whole files this linter never maps back, which is fine:
/// no such module exists in this workspace and the miss is conservative
/// (the code is linted *more*, not less).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut stack: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        let code = line.code.clone();
        let chars: Vec<char> = code.chars().collect();
        let mut in_test = !stack.is_empty();
        if is_test_attr(&code) {
            pending = true;
        }
        for &c in &chars {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        stack.push(depth);
                        pending = false;
                        in_test = true;
                    }
                }
                '}' => {
                    if stack.last() == Some(&depth) {
                        stack.pop();
                    }
                    depth -= 1;
                }
                ';' => {
                    if stack.is_empty() {
                        pending = false;
                    }
                }
                _ => {}
            }
        }
        line.in_test = in_test || !stack.is_empty();
    }
}

/// Is there a `#[cfg(test)]`-style or `#[test]` attribute on this code
/// line? (`#[cfg(all(test, …))]` counts; `#[cfg(not(test))]` does not.)
fn is_test_attr(code: &str) -> bool {
    let Some(open) = code.find("#[") else {
        return false;
    };
    let body = &code[open + 2..];
    let Some(close) = body.find(']') else {
        return false;
    };
    let body = &body[..close];
    if has_word(body, "test") && !body.contains("not(") {
        return body.trim() == "test" || body.contains("cfg");
    }
    false
}

/// Extracts suppression markers — the tool tag followed by
/// `allow(rule-a, rule-b)` — from comment text into [`Line::allows`].
fn parse_suppressions(lines: &mut [Line]) {
    for line in lines.iter_mut() {
        let mut rest = line.comment.as_str();
        while let Some(pos) = rest.find("ezp-lint:") {
            rest = &rest[pos + "ezp-lint:".len()..];
            let trimmed = rest.trim_start();
            if let Some(args) = trimmed.strip_prefix("allow(") {
                if let Some(close) = args.find(')') {
                    for name in args[..close].split(',') {
                        let name = name.trim();
                        if !name.is_empty() {
                            line.allows.push(name.to_string());
                        }
                    }
                    rest = &args[close + 1..];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked_out_of_code() {
        let lines = lex_file("let m = \"Mutex\"; // Mutex here too\n");
        assert!(!has_word(&lines[0].code, "Mutex"));
        assert!(lines[0].comment.contains("Mutex here too"));
        assert_eq!(lines[0].strings.len(), 1);
        assert_eq!(lines[0].strings[0].1, "Mutex");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nstill comment\n*/ code\n";
        let lines = lex_file(src);
        assert!(has_word(&lines[0].code, "a"));
        assert!(has_word(&lines[0].code, "b"));
        assert!(!has_word(&lines[0].code, "two"));
        assert!(!has_word(&lines[2].code, "still"));
        assert!(has_word(&lines[3].code, "code"));
    }

    #[test]
    fn raw_strings_do_not_end_at_inner_quotes() {
        let src = "let s = r#\"quote \" unsafe \"#; unsafe_fn();\n";
        let lines = lex_file(src);
        assert!(!has_word(&lines[0].code, "unsafe"));
        assert_eq!(lines[0].strings[0].1, "quote \" unsafe ");
        assert!(has_word(&lines[0].code, "unsafe_fn"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\nlet u = unsafe_token;\n";
        let lines = lex_file(src);
        // If 'a were lexed as an unterminated char literal, line 2's
        // code would be swallowed.
        assert!(has_word(&lines[1].code, "unsafe_token"));
        assert!(!has_word(&lines[0].code, "x'"));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = "let q = '\\''; let m = Mutex::new(());\n";
        let lines = lex_file(src);
        assert!(has_word(&lines[0].code, "Mutex"));
    }

    #[test]
    fn test_regions_cover_matching_braces_only() {
        let src = "\
fn real() { body(); }
#[cfg(test)]
mod tests {
    fn inner() { x(); }
}
fn after() { y(); }
";
        let lines = lex_file(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lines = lex_file("#[cfg(not(test))]\nmod prod { a(); }\n");
        assert!(!lines[1].in_test);
    }

    #[test]
    fn test_attr_on_fn_marks_its_body() {
        let src = "#[test]\nfn t() {\n    probe();\n}\nfn u() { real(); }\n";
        let lines = lex_file(src);
        assert!(lines[2].in_test);
        assert!(!lines[4].in_test);
    }

    #[test]
    fn suppressions_parse_multiple_rules() {
        let lines = lex_file("x(); // ezp-lint: allow(rule-a, rule-b)\n");
        assert_eq!(lines[0].allows, vec!["rule-a", "rule-b"]);
    }

    #[test]
    fn receiver_field_walks_chains_indexes_and_tuples() {
        let probe = |code: &str| {
            let dot = code.rfind(".f").unwrap();
            receiver_field(code, dot)
        };
        assert_eq!(probe("self.depth.fetch_add"), Some("depth".into()));
        assert_eq!(probe("self.lanes[slot].depth.fetch_add"), Some("depth".into()));
        assert_eq!(probe("self.tail.0 .fetch_add"), Some("tail".into()));
        assert_eq!(probe("slots[i & mask].fetch_add"), Some("slots".into()));
        assert_eq!(probe("factory().fetch_add"), None);
        assert_eq!(probe(".fetch_add"), None);
        // lone tuple index with nothing to project out of
        assert_eq!(probe("0.fetch_add"), None);
    }

    #[test]
    fn call_orderings_spans_multiline_calls() {
        let lines = lex_file(
            "x.compare_exchange(\n    false,\n    true,\n    Ordering::Acquire,\n    Ordering::Relaxed,\n); y.load(Ordering::SeqCst);\n",
        );
        let from = lines[0].code.find('(').unwrap();
        assert_eq!(call_orderings(&lines, 0, from, 6), vec!["Acquire", "Relaxed"]);
        // the second call on the closing line is outside the first span
        let from2 = lines[5].code.rfind('(').unwrap();
        assert_eq!(call_orderings(&lines, 5, from2, 6), vec!["SeqCst"]);
    }

    #[test]
    fn call_orderings_gives_up_past_the_span_cap() {
        let lines = lex_file("x.store(\n\n\n\n\n\n\n    1, Ordering::Release);\n");
        assert!(call_orderings(&lines, 0, lines[0].code.find('(').unwrap(), 3).is_empty());
    }

    #[test]
    fn justified_sees_trailing_and_nearby_comments() {
        let lines = lex_file("// ORDERING: counter only\nlet a = 1;\nx.load(r);\n");
        assert!(justified(&lines, 2, "ORDERING:", 8));
        assert!(!justified(&lines, 2, "ORDERING:", 0));
    }

    #[test]
    fn word_matching_respects_identifier_boundaries() {
        assert!(has_word("let m: Mutex<u32>;", "Mutex"));
        assert!(!has_word("let m: FakeMutexLike;", "Mutex"));
        assert!(!has_word("unsafely()", "unsafe"));
        assert!(has_word("unsafe { x }", "unsafe"));
    }
}
