//! Phase-1 workspace symbol model for the cross-file passes.
//!
//! The per-line rules in [`crate::rules`] see one line at a time; the
//! invariants that PRs 7–9 introduced — paired acquire/release
//! protocols, RAII guards, and a counter registry mirrored in the
//! observability docs — span files. This module is the first phase of
//! the two-phase engine: while the workspace walker lexes each file
//! anyway, [`Model::add_source`] extracts a small symbol table from
//! the lexed lines, and [`Model::add_docs`] parses the counter tables
//! out of `docs/observability.md`. The [`crate::passes`] modules then
//! run over the finished model without touching the filesystem again.
//!
//! What the model records:
//!
//! * **Atomic fields** — struct fields and statics whose declared type
//!   is (or wraps) a `std::sync::atomic` type, with whether the
//!   declaration carries a taxonomy tag (`counter-only` /
//!   `synchronizing` / `via-the-spine`) in a nearby comment.
//! * **Atomic accesses** — every `.load(…)` / `.store(…)` / RMW call
//!   whose receiver resolves to a named field, with the
//!   `Ordering::X` names in its argument list (multi-line calls
//!   included) and whether the site has an `ORDERING:` justification.
//! * **Guard types** — `struct`s named `*Guard` / `*Lease` / `*Ticket`
//!   / `*Handle`, the set of types with an `impl Drop`, and functions
//!   whose return type mentions a guard type (the acquiring APIs).
//! * **Counter registry** — string literals registered on
//!   `CounterSet` plus the canonical constants in ezp-perf's
//!   `mod names`, the `RuntimeEvent` variants declared in ezp-core,
//!   the variants ezp-perf's probe actually matches, and the counter
//!   names documented in the observability docs table.
//!
//! Everything is resolved per *crate* (manifest `package.name`), so a
//! fixture crate that happens to reuse a field name cannot collide
//! with the real workspace. Integration tests, benches and examples
//! (`tests/`, `benches/`, `examples/` path components) and
//! `#[cfg(test)]` regions are excluded from the model: they exercise
//! the invariants rather than define them.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{self, Line};

/// How many code lines above a declaration a taxonomy or `ORDERING:`
/// comment may sit and still justify it — mirrors
/// [`crate::rules::JUSTIFICATION_WINDOW`] so the per-line rule and the
/// cross-file pass agree on what counts as "nearby".
const WINDOW: usize = 8;

/// How many lines a single atomic call may span before the model gives
/// up attributing its orderings (`compare_exchange` calls wrapped by
/// rustfmt are the common case; anything longer is vanishingly rare).
const CALL_SPAN: usize = 6;

/// The `std::sync::atomic` type names a field declaration may use
/// (directly or inside a wrapper such as `CachePadded<AtomicUsize>`).
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool", "AtomicI8", "AtomicI16", "AtomicI32", "AtomicI64", "AtomicIsize", "AtomicPtr",
    "AtomicU8", "AtomicU16", "AtomicU32", "AtomicU64", "AtomicUsize",
];

/// Taxonomy tags (from PR 5's ordering taxonomy in
/// `docs/static-analysis.md`) that classify a Relaxed-only field.
pub const TAXONOMY_TAGS: &[&str] = &["counter-only", "synchronizing", "via-the-spine"];

/// Suffixes that mark a type as an RAII guard by naming convention.
const GUARD_SUFFIXES: &[&str] = &["Guard", "Lease", "Ticket", "Handle"];

/// Atomic accessor methods and the access kind each one implies.
const ATOMIC_METHODS: &[(&str, AccessKind)] = &[
    ("load", AccessKind::Load),
    ("store", AccessKind::Store),
    ("swap", AccessKind::Rmw),
    ("fetch_add", AccessKind::Rmw),
    ("fetch_sub", AccessKind::Rmw),
    ("fetch_and", AccessKind::Rmw),
    ("fetch_or", AccessKind::Rmw),
    ("fetch_xor", AccessKind::Rmw),
    ("fetch_nand", AccessKind::Rmw),
    ("fetch_max", AccessKind::Rmw),
    ("fetch_min", AccessKind::Rmw),
    ("fetch_update", AccessKind::Rmw),
    ("compare_exchange", AccessKind::Rmw),
    ("compare_exchange_weak", AccessKind::Rmw),
];

/// A position in the workspace: workspace-relative path + 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
}

/// What an atomic method call does to its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// `load`
    Load,
    /// `store`
    Store,
    /// `swap` / `fetch_*` / `compare_exchange*` — reads and writes.
    Rmw,
}

/// A struct field or static declared with an atomic type.
#[derive(Debug, Clone)]
pub struct AtomicField {
    /// Declaring crate (manifest `package.name`).
    pub krate: String,
    /// Field or static name.
    pub name: String,
    /// Declaration site.
    pub site: Site,
    /// A taxonomy tag comment sits on or near the declaration.
    pub taxonomy: bool,
}

/// One attributed atomic access site.
#[derive(Debug, Clone)]
pub struct AtomicAccess {
    /// Crate the access occurs in.
    pub krate: String,
    /// Receiver field name the access was attributed to.
    pub field: String,
    /// Access site.
    pub site: Site,
    /// Load / store / read-modify-write.
    pub kind: AccessKind,
    /// `Ordering::X` names in the call's argument list, in order.
    pub orderings: Vec<String>,
    /// The site carries an `ORDERING:` justification comment.
    pub justified: bool,
}

/// A type whose name matches a guard suffix.
#[derive(Debug, Clone)]
pub struct GuardType {
    /// Declaring crate.
    pub krate: String,
    /// Type name, e.g. `PoolLease`.
    pub name: String,
    /// `struct` declaration site.
    pub site: Site,
}

/// A function whose return type mentions a guard type — an acquiring
/// API whose result must be bound, not discarded.
#[derive(Debug, Clone)]
pub struct GuardApi {
    /// Declaring crate.
    pub krate: String,
    /// Function name, e.g. `acquire_pool`.
    pub name: String,
    /// Guard type the return type mentions.
    pub guard: String,
    /// `fn` declaration site.
    pub site: Site,
}

/// A counter name registered on a `CounterSet` (or declared as a
/// canonical constant in ezp-perf's `mod names`).
#[derive(Debug, Clone)]
pub struct CounterDecl {
    /// Counter name, e.g. `steals`.
    pub name: String,
    /// Registration / declaration site.
    pub site: Site,
}

/// A counter name documented in the observability docs table.
#[derive(Debug, Clone)]
pub struct DocCounter {
    /// Counter name as documented.
    pub name: String,
    /// Table-row site in the docs file.
    pub site: Site,
}

/// A `RuntimeEvent` enum variant declaration.
#[derive(Debug, Clone)]
pub struct EventVariant {
    /// Variant name, e.g. `StreamStall`.
    pub name: String,
    /// Declaration site inside the enum.
    pub site: Site,
}

/// Per-file record kept so passes can resolve suppressions at arbitrary
/// sites without re-reading the file.
struct FileRecord {
    krate: String,
    lines: Vec<Line>,
}

/// The finished phase-1 model; built by the workspace walker, consumed
/// by [`crate::passes`].
#[derive(Default)]
pub struct Model {
    files: BTreeMap<String, FileRecord>,
    /// Atomic field declarations, in walk order.
    pub atomic_fields: Vec<AtomicField>,
    /// Attributed atomic accesses, in walk order.
    pub atomic_accesses: Vec<AtomicAccess>,
    /// Guard-suffixed type declarations.
    pub guard_types: Vec<GuardType>,
    /// Type names with an `impl … Drop for X` anywhere in the model.
    pub drop_impls: BTreeSet<String>,
    /// Functions returning a guard type (resolved by [`Model::finish`]).
    pub guard_apis: Vec<GuardApi>,
    /// Counter names registered in code.
    pub counter_decls: Vec<CounterDecl>,
    /// Counter names documented in the observability table.
    pub doc_counters: Vec<DocCounter>,
    /// `RuntimeEvent` variant declarations.
    pub event_variants: Vec<EventVariant>,
    /// Variants matched as `RuntimeEvent::X` inside ezp-perf.
    pub events_handled: BTreeSet<String>,
    /// Path of the observability docs file, if the walk found one.
    pub docs_path: Option<String>,
    /// Raw `(krate, fn-name, return-type)` rows awaiting resolution.
    fn_returns: Vec<(String, String, String, Site)>,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("files", &self.files.len())
            .field("atomic_fields", &self.atomic_fields.len())
            .field("atomic_accesses", &self.atomic_accesses.len())
            .field("guard_types", &self.guard_types.len())
            .field("counter_decls", &self.counter_decls.len())
            .finish_non_exhaustive()
    }
}

/// Does this workspace-relative path hold *production* code? Test,
/// bench and example trees exercise invariants rather than define them,
/// so the model skips them wholesale.
fn is_prod_path(rel: &str) -> bool {
    !rel.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

/// Does the declared type text mention a real `std::sync::atomic` type
/// as a standalone word (directly or inside a generic wrapper)?
fn mentions_atomic_type(ty: &str) -> bool {
    ATOMIC_TYPES.iter().any(|t| lexer::has_word(ty, t))
}

/// String literals come out of the lexer with their escapes intact;
/// `"idle_ns{cause=\"x\"}"` in code must compare equal to the docs-side
/// `idle_ns{cause="x"}`.
fn unescape_lit(s: &str) -> String {
    s.replace("\\\"", "\"")
}

/// Counter-name shape: `snake_case`, optionally with a `{key="…"}`
/// label suffix (the per-cause idle counters). Filters arbitrary string
/// literals down to plausible counter names.
fn is_counter_name(s: &str) -> bool {
    let (base, label) = match s.find('{') {
        Some(p) => (&s[..p], &s[p..]),
        None => (s, ""),
    };
    let base_ok = !base.is_empty()
        && base.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && base.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    let label_ok = label.is_empty() || (label.starts_with('{') && label.ends_with("\"}"));
    base_ok && label_ok
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one lexed production source file. `rel` is the
    /// workspace-relative path, `krate` the owning manifest's package
    /// name. Non-production paths are ignored (the caller does not need
    /// to filter).
    pub fn add_source(&mut self, rel: &str, krate: &str, lines: &[Line]) {
        if !is_prod_path(rel) {
            return;
        }
        self.scan_decls(rel, krate, lines);
        self.scan_accesses(rel, krate, lines);
        self.scan_counters(rel, krate, lines);
        self.scan_events(rel, krate, lines);
        self.files.insert(
            rel.to_string(),
            FileRecord { krate: krate.to_string(), lines: lines.to_vec() },
        );
    }

    /// Parses counter names out of the observability docs file. Only
    /// rows of tables whose header's first cell is exactly `counter`
    /// participate — auxiliary tables (e.g. the per-rank MPI counters,
    /// which are kernel-reported rather than registry-registered) use a
    /// different header and are deliberately invisible to the drift
    /// pass.
    pub fn add_docs(&mut self, rel: &str, text: &str) {
        self.docs_path = Some(rel.to_string());
        let mut in_counter_table = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if !line.starts_with('|') {
                in_counter_table = false;
                continue;
            }
            let cells: Vec<&str> = line.trim_matches('|').split('|').collect();
            let first = cells.first().map(|c| c.trim().trim_matches('`')).unwrap_or("");
            if !in_counter_table {
                if first.eq_ignore_ascii_case("counter") {
                    in_counter_table = true;
                }
                continue;
            }
            if first.chars().all(|c| c == '-' || c == ':' || c.is_whitespace()) {
                continue; // separator row
            }
            // Counter names sit in backticks in the first cell; a row
            // may document a family (`idle_ns{cause="…"}`).
            let cell = cells.first().copied().unwrap_or("");
            let mut rest = cell;
            while let Some(open) = rest.find('`') {
                let tail = &rest[open + 1..];
                let Some(close) = tail.find('`') else { break };
                let name = &tail[..close];
                if is_counter_name(name) {
                    self.doc_counters.push(DocCounter {
                        name: name.to_string(),
                        site: Site { path: rel.to_string(), line: idx + 1 },
                    });
                }
                rest = &tail[close + 1..];
            }
        }
    }

    /// Resolves deferred references (guard-returning APIs) once every
    /// file has been ingested. Must be called before the passes run.
    pub fn finish(&mut self) {
        let fn_returns = std::mem::take(&mut self.fn_returns);
        for (krate, name, ret, site) in fn_returns {
            // A function returns "a guard" when its return type mentions
            // a guard type declared in the same crate; cross-crate
            // re-exports are rare enough to ignore (quiet direction).
            let guard = self
                .guard_types
                .iter()
                .find(|g| g.krate == krate && lexer::has_word(&ret, &g.name));
            if let Some(g) = guard {
                let guard = g.name.clone();
                self.guard_apis.push(GuardApi { krate, name, guard, site });
            }
        }
    }

    /// Is `rule` suppressed at `site` (marker on the site's line or the
    /// line above, matching the per-line engine's convention)?
    pub fn is_allowed(&self, site: &Site, rule: &str) -> bool {
        let Some(rec) = self.files.get(&site.path) else {
            return false;
        };
        let idx = site.line - 1;
        let own = rec.lines.get(idx).is_some_and(|l| l.allows.iter().any(|a| a == rule));
        let above = idx > 0
            && rec.lines.get(idx - 1).is_some_and(|l| l.allows.iter().any(|a| a == rule));
        own || above
    }

    /// Iterates `(path, krate, lines)` over every ingested file — used
    /// by passes that scan call sites (guard-leak).
    pub fn files(&self) -> impl Iterator<Item = (&str, &str, &[Line])> {
        self.files
            .iter()
            .map(|(p, r)| (p.as_str(), r.krate.as_str(), r.lines.as_slice()))
    }

    // ---- phase-1 extraction --------------------------------------------

    /// Atomic field declarations, guard types, `Drop` impls and
    /// function return types.
    fn scan_decls(&mut self, rel: &str, krate: &str, lines: &[Line]) {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = line.code.trim();
            let site = Site { path: rel.to_string(), line: i + 1 };

            // `impl … Drop for X`
            if lexer::has_word(code, "impl") && lexer::has_word(code, "Drop") {
                if let Some(p) = lexer::find_word(code, "for", 0) {
                    let after: String = code.chars().skip(p + 3).collect();
                    let name: String = after
                        .trim_start()
                        .chars()
                        .take_while(|c| lexer::is_ident_char(*c))
                        .collect();
                    if !name.is_empty() {
                        self.drop_impls.insert(name);
                    }
                }
                continue;
            }

            // `struct XGuard …`
            if let Some(p) = lexer::find_word(code, "struct", 0) {
                let after: String = code.chars().skip(p + "struct".len()).collect();
                let name: String = after
                    .trim_start()
                    .chars()
                    .take_while(|c| lexer::is_ident_char(*c))
                    .collect();
                if GUARD_SUFFIXES.iter().any(|s| name.ends_with(s) && name.len() > s.len()) {
                    self.guard_types.push(GuardType {
                        krate: krate.to_string(),
                        name,
                        site: site.clone(),
                    });
                }
            }

            // `fn name(…) -> Ret {` — single-line signatures only; the
            // docs call out multi-line signatures as a known blind spot.
            if let Some(p) = lexer::find_word(code, "fn", 0) {
                let after: String = code.chars().skip(p + 2).collect();
                let name: String = after
                    .trim_start()
                    .chars()
                    .take_while(|c| lexer::is_ident_char(*c))
                    .collect();
                if !name.is_empty() {
                    if let Some(arrow) = after.find("->") {
                        let ret = after[arrow + 2..].trim();
                        self.fn_returns.push((
                            krate.to_string(),
                            name,
                            ret.to_string(),
                            site.clone(),
                        ));
                    }
                }
                continue; // a fn signature line is not a field decl
            }

            // Atomic field / static declarations. Shapes accepted:
            //   `pub name: AtomicUsize,`   `name: CachePadded<AtomicU64>,`
            //   `static NAME: AtomicU32 = …;`
            // Excluded: `let` locals (unattributable scope), reference
            // parameters (`cursor: &AtomicUsize` borrows someone else's
            // field), and anything on a `fn` line (handled above).
            if lexer::has_word(code, "let") {
                continue;
            }
            if let Some(colon) = code.find(':') {
                // skip `::` paths masquerading as a decl colon
                if code.as_bytes().get(colon + 1) == Some(&b':') {
                    continue;
                }
                let (lhs, rhs) = code.split_at(colon);
                let rhs = &rhs[1..];
                let ty = match rhs.find('=') {
                    Some(eq) => &rhs[..eq],
                    None => rhs,
                };
                let ty = ty.trim().trim_end_matches(',').trim();
                if !mentions_atomic_type(ty) || ty.contains('&') {
                    continue;
                }
                // A struct-literal initializer (`head:
                // CachePadded(AtomicUsize::new(0)),`) has the same
                // `name: …Atomic…` shape as a declaration; type
                // expressions never contain parens or a path call, so
                // those mark the line as an initializer, not a decl.
                if ty.contains('(') || ty.contains('.') {
                    continue;
                }
                let name: String = lhs
                    .chars()
                    .rev()
                    .take_while(|c| lexer::is_ident_char(*c))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if name.is_empty() {
                    continue;
                }
                let taxonomy = TAXONOMY_TAGS
                    .iter()
                    .any(|t| lexer::justified(lines, i, t, WINDOW));
                self.atomic_fields.push(AtomicField {
                    krate: krate.to_string(),
                    name,
                    site,
                    taxonomy,
                });
            }
        }
    }

    /// Attributed atomic accesses with their orderings.
    fn scan_accesses(&mut self, rel: &str, krate: &str, lines: &[Line]) {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = &line.code;
            for (method, kind) in ATOMIC_METHODS {
                let mut from = 0;
                while let Some(p) = lexer::find_word(code, method, from) {
                    from = p + method.len();
                    // must be a method call: `.method(` (whitespace-free
                    // on the method side; rustfmt never splits there)
                    let chars: Vec<char> = code.chars().collect();
                    if p == 0 || chars[p - 1] != '.' {
                        continue;
                    }
                    if chars.get(p + method.len()) != Some(&'(') {
                        continue;
                    }
                    // receiver: walk left from the dot; if the dot opens
                    // the line, look back one line for a wrapped chain
                    let field = lexer::receiver_field(code, p - 1).or_else(|| {
                        let lead: String = chars[..p - 1].iter().collect();
                        if lead.trim().is_empty() && i > 0 {
                            let prev = &lines[i - 1].code;
                            lexer::receiver_field(prev, prev.chars().count())
                        } else {
                            None
                        }
                    });
                    let Some(field) = field else { continue };
                    let orderings =
                        lexer::call_orderings(lines, i, p + method.len(), CALL_SPAN);
                    if orderings.is_empty() {
                        continue; // not an atomic call (or unattributable)
                    }
                    let justified = lexer::justified(lines, i, "ORDERING:", WINDOW);
                    self.atomic_accesses.push(AtomicAccess {
                        krate: krate.to_string(),
                        field,
                        site: Site { path: rel.to_string(), line: i + 1 },
                        kind: *kind,
                        orderings,
                        justified,
                    });
                }
            }
        }
    }

    /// Counter registrations: `.register("name")` calls in files that
    /// mention `CounterSet` (the kernel `Registry` has a `register`
    /// method too — the word gate keeps kernel names out of the
    /// counter namespace), plus the canonical name constants inside
    /// ezp-perf's `mod names`.
    fn scan_counters(&mut self, rel: &str, krate: &str, lines: &[Line]) {
        let uses_counter_set = lines.iter().any(|l| lexer::has_word(&l.code, "CounterSet"));
        // `.register("…")` sites
        for (i, line) in lines.iter().enumerate() {
            if !uses_counter_set {
                break;
            }
            if line.in_test {
                continue;
            }
            let mut from = 0;
            while let Some(p) = lexer::find_word(&line.code, "register", from) {
                from = p + "register".len();
                let chars: Vec<char> = line.code.chars().collect();
                if p == 0 || chars[p - 1] != '.' {
                    continue;
                }
                for (pos, s) in &line.strings {
                    let s = unescape_lit(s);
                    if *pos > p && is_counter_name(&s) {
                        self.counter_decls.push(CounterDecl {
                            name: s,
                            site: Site { path: rel.to_string(), line: i + 1 },
                        });
                        break; // first literal after the call is the name
                    }
                }
            }
        }
        // ezp-perf's `pub mod names { … }` region: every counter-shaped
        // string literal is a canonical name, registered at probe
        // construction.
        if krate != "ezp-perf" {
            return;
        }
        let mut depth = 0i32;
        let mut inside = false;
        for (i, line) in lines.iter().enumerate() {
            if !inside {
                if lexer::has_word(&line.code, "mod") && lexer::has_word(&line.code, "names") {
                    inside = true;
                    depth = 0;
                } else {
                    continue;
                }
            }
            for c in line.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if !line.in_test {
                for (_, s) in &line.strings {
                    let s = unescape_lit(s);
                    if is_counter_name(&s) {
                        self.counter_decls.push(CounterDecl {
                            name: s,
                            site: Site { path: rel.to_string(), line: i + 1 },
                        });
                    }
                }
            }
            if inside && depth <= 0 && line.code.contains('}') {
                break;
            }
        }
    }

    /// `RuntimeEvent` variant declarations (any crate declaring the
    /// enum) and the variants ezp-perf matches on.
    fn scan_events(&mut self, rel: &str, krate: &str, lines: &[Line]) {
        // declarations
        let mut i = 0;
        while i < lines.len() {
            let code = &lines[i].code;
            if !lines[i].in_test
                && lexer::has_word(code, "enum")
                && lexer::has_word(code, "RuntimeEvent")
            {
                i = self.scan_enum_body(rel, lines, i);
            } else {
                i += 1;
            }
        }
        // handled variants: `RuntimeEvent::X` tokens inside ezp-perf
        if krate != "ezp-perf" {
            return;
        }
        for line in lines {
            if line.in_test {
                continue;
            }
            let mut from = 0;
            while let Some(p) = lexer::find_word(&line.code, "RuntimeEvent", from) {
                from = p + "RuntimeEvent".len();
                let rest: String = line.code.chars().skip(from).collect();
                if let Some(tail) = rest.strip_prefix("::") {
                    let name: String =
                        tail.chars().take_while(|c| lexer::is_ident_char(*c)).collect();
                    if !name.is_empty() {
                        self.events_handled.insert(name);
                    }
                }
            }
        }
    }

    /// Parses the body of a `RuntimeEvent` enum starting at `start`;
    /// returns the line index after the enum. A variant is a depth-1
    /// line opening with a capitalized identifier whose following
    /// delimiter is `,` / `{` / `(` / end-of-line — field lines inside
    /// struct variants sit at depth 2 and are skipped naturally.
    fn scan_enum_body(&mut self, rel: &str, lines: &[Line], start: usize) -> usize {
        let mut depth = 0i32;
        let mut opened = false;
        for (i, line) in lines.iter().enumerate().skip(start) {
            let code = line.code.trim();
            if opened && depth == 1 {
                let name: String =
                    code.chars().take_while(|c| lexer::is_ident_char(*c)).collect();
                let rest: String = code.chars().skip(name.chars().count()).collect();
                let delim = rest.trim_start().chars().next();
                let delim_ok = matches!(delim, None | Some(',') | Some('{') | Some('('));
                if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) && delim_ok {
                    self.event_variants.push(EventVariant {
                        name,
                        site: Site { path: rel.to_string(), line: i + 1 },
                    });
                }
            }
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            return i + 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;

    fn model_of(rel: &str, krate: &str, src: &str) -> Model {
        let mut m = Model::new();
        m.add_source(rel, krate, &lex_file(src));
        m.finish();
        m
    }

    #[test]
    fn atomic_field_decls_include_wrappers_and_exclude_refs_and_lets() {
        let src = "\
struct S {
    tail: CachePadded<AtomicUsize>,
    // counter-only: never synchronizes
    pub hits: AtomicU64,
}
static LEVEL: AtomicU8 = AtomicU8::new(0);
fn f(cursor: &AtomicUsize) {
    let local: AtomicU32 = AtomicU32::new(0);
    let _ = (cursor, local);
}
";
        let m = model_of("crates/x/src/lib.rs", "x", src);
        let names: Vec<&str> = m.atomic_fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["tail", "hits", "LEVEL"]);
        assert!(!m.atomic_fields[0].taxonomy);
        assert!(m.atomic_fields[1].taxonomy);
    }

    #[test]
    fn accesses_attribute_receivers_and_multiline_orderings() {
        let src = "\
impl S {
    fn go(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.flag.compare_exchange(
            false,
            true,
            Ordering::Acquire,
            Ordering::Relaxed,
        ).ok();
        make().load(Ordering::SeqCst);
    }
}
";
        let m = model_of("crates/x/src/lib.rs", "x", src);
        assert_eq!(m.atomic_accesses.len(), 2); // call-result receiver dropped
        assert_eq!(m.atomic_accesses[0].field, "hits");
        assert_eq!(m.atomic_accesses[0].orderings, vec!["Relaxed"]);
        assert_eq!(m.atomic_accesses[1].field, "flag");
        assert_eq!(m.atomic_accesses[1].orderings, vec!["Acquire", "Relaxed"]);
        assert_eq!(m.atomic_accesses[1].kind, AccessKind::Rmw);
    }

    #[test]
    fn guard_types_drop_impls_and_apis_resolve() {
        let src = "\
pub struct PoolLease<'a> { mux: &'a Mux }
impl<'a> Drop for PoolLease<'a> { fn drop(&mut self) {} }
pub struct JobTicket { live: bool }
pub fn lease(&self) -> PoolLease<'_> { todo!() }
pub fn plain(&self) -> usize { 0 }
";
        let m = model_of("crates/x/src/lib.rs", "x", src);
        let guards: Vec<&str> = m.guard_types.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(guards, vec!["PoolLease", "JobTicket"]);
        assert!(m.drop_impls.contains("PoolLease"));
        assert!(!m.drop_impls.contains("JobTicket"));
        assert_eq!(m.guard_apis.len(), 1);
        assert_eq!(m.guard_apis[0].name, "lease");
        assert_eq!(m.guard_apis[0].guard, "PoolLease");
    }

    #[test]
    fn counter_registry_reads_registers_names_module_and_events() {
        let src = "\
use crate::counters::CounterSet;
pub mod names {
    pub const STEALS: &str = \"steals\";
    pub const IDLE: [&str; 1] = [\"idle_ns{cause=\\\"steal_fail\\\"}\"];
}
impl Probe {
    fn build(&self) {
        self.counters.register(\"extra_counter\");
    }
    fn on(&self, ev: RuntimeEvent) {
        match ev {
            RuntimeEvent::Steals { n } => {}
        }
    }
}
";
        let m = model_of("crates/perf/src/probe.rs", "ezp-perf", src);
        let names: Vec<&str> = m.counter_decls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"steals"));
        assert!(names.contains(&"idle_ns{cause=\"steal_fail\"}"));
        assert!(names.contains(&"extra_counter"));
        assert!(m.events_handled.contains("Steals"));
        // a `register` call in a file that never mentions CounterSet is
        // some other registry (the kernel registry), not a counter
        let no_cs = model_of(
            "crates/kernels/src/lib.rs",
            "ezp-kernels",
            "fn r(reg: &mut Registry) { reg.register(\"mandel\", || x()); }\n",
        );
        assert!(no_cs.counter_decls.is_empty());
    }

    #[test]
    fn runtime_event_variants_parse_struct_and_unit_forms() {
        let src = "\
pub enum RuntimeEvent {
    /// doc
    ChunkDispensed { worker: usize, chunk: usize },
    Steals(u64),
    PoolSync,
}
";
        let m = model_of("crates/core/src/kernel.rs", "ezp-core", src);
        let names: Vec<&str> = m.event_variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["ChunkDispensed", "Steals", "PoolSync"]);
    }

    #[test]
    fn docs_table_parses_only_counter_headed_tables() {
        let docs = "\
# Obs

| counter | incremented by |
|---|---|
| `steals` | the scheduler |
| `idle_ns{cause=\"steal_fail\"}` | idle loop |

| per-rank counter | notes |
|---|---|
| `mpi_msgs_sent` | per rank |
";
        let mut m = Model::new();
        m.add_docs("docs/observability.md", docs);
        let names: Vec<&str> = m.doc_counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["steals", "idle_ns{cause=\"steal_fail\"}"]);
    }

    #[test]
    fn test_regions_and_test_trees_are_invisible() {
        let src = "\
#[cfg(test)]
mod tests {
    struct FakeGuard;
    static T: AtomicU64 = AtomicU64::new(0);
}
";
        let m = model_of("crates/x/src/lib.rs", "x", src);
        assert!(m.guard_types.is_empty());
        assert!(m.atomic_fields.is_empty());
        let mut m2 = Model::new();
        m2.add_source("crates/x/tests/it.rs", "x", &lex_file("struct ItGuard;\n"));
        m2.finish();
        assert!(m2.guard_types.is_empty());
    }
}
