//! Workspace discovery and the lint engine driver.
//!
//! [`lint_workspace`] walks a directory tree, collects every `.rs` file,
//! `Cargo.toml` and observability docs file (skipping `target/`, VCS
//! metadata and the intentionally-bad `lint_fixtures/` corpora), then
//! runs the two-phase engine: **phase 1** lexes each source once,
//! running the per-line rules *and* feeding the same lexed lines into
//! the [`crate::model::Model`]; **phase 2** runs the cross-file
//! [`crate::passes`] over the finished model. Per-line findings are
//! filtered through suppressions here; pass findings resolve their own
//! suppressions (they may be anchored at a declaration site far from
//! the finding).

use crate::diag::Diagnostic;
use crate::lexer::{lex_file, Line};
use crate::manifest::{self, Manifest};
use crate::model::Model;
use crate::passes::{self, PassStat};
use crate::rules::{self, SourceFile};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "lint_fixtures", "node_modules"];

/// A completed lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, in file/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files (sources + manifests + docs) scanned.
    pub files_scanned: usize,
    /// Per-pass finding counts and wall-times (cross-file passes only).
    pub pass_stats: Vec<PassStat>,
    /// Wall time of the whole run in milliseconds.
    pub total_ms: f64,
}

/// Lints every source file, manifest and docs table under `root`.
pub fn lint_workspace(root: &Path) -> Report {
    lint_workspace_only(root, None)
}

/// [`lint_workspace`], restricted to the single rule or pass named by
/// `only` when it is `Some` (the CLI's `--only` flag).
pub fn lint_workspace_only(root: &Path, only: Option<&str>) -> Report {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    let mut docs = Vec::new();
    walk(root, &mut sources, &mut manifests, &mut docs);
    lint_files(root, &sources, &manifests, &docs, only)
}

/// Runs the engine over an explicit file set (fixture tests use this to
/// point it at a corpus directory). `root` anchors relative paths and
/// the nearest-manifest search; `docs` lists observability docs files
/// for the counter-registry pass.
pub fn lint_files(
    root: &Path,
    sources: &[PathBuf],
    manifests: &[PathBuf],
    docs: &[PathBuf],
    only: Option<&str>,
) -> Report {
    let t0 = Instant::now();
    let mut report = Report::default();
    let line_rule = |name: &str| only.is_none_or(|o| o == name);

    // Parse every manifest once; key by owning directory.
    let mut by_dir: BTreeMap<PathBuf, Manifest> = BTreeMap::new();
    for mpath in manifests {
        let Ok(text) = std::fs::read_to_string(mpath) else {
            continue;
        };
        let m = manifest::parse(&text);
        if line_rule("hermeticity") {
            rules::check_manifest(&rel_path(root, mpath), &m, &mut report.diagnostics);
        }
        report.files_scanned += 1;
        if let Some(dir) = mpath.parent() {
            by_dir.insert(dir.to_path_buf(), m);
        }
    }

    // Workspace member names in underscore form, for `extern crate`.
    let workspace_crates: Vec<String> = by_dir
        .values()
        .filter_map(|m| m.package_name.as_ref())
        .map(|n| n.replace('-', "_"))
        .collect();

    let mut model = Model::new();
    for spath in sources {
        let Ok(text) = std::fs::read_to_string(spath) else {
            continue;
        };
        report.files_scanned += 1;
        let lines = lex_file(&text);
        let owning = nearest_manifest(&by_dir, root, spath);
        let features = owning.map(|m| m.known_features()).unwrap_or_default();
        let rel = rel_path(root, spath);
        let krate = owning
            .and_then(|m| m.package_name.clone())
            .unwrap_or_default();
        model.add_source(&rel, &krate, &lines);
        let file = SourceFile {
            rel: &rel,
            lines: &lines,
            crate_features: &features,
            workspace_crates: &workspace_crates,
        };
        let mut found = Vec::new();
        rules::check_source(&file, &mut found);
        report.diagnostics.extend(
            found
                .into_iter()
                .filter(|d| line_rule(d.rule) && !suppressed(&lines, d)),
        );
        // Validate the suppressions themselves: an `allow(...)` naming
        // an unknown rule silently does nothing — exactly how a typo
        // would disarm a real suppression — so it is itself a finding.
        if line_rule("unknown-suppression") {
            for (i, line) in lines.iter().enumerate() {
                for a in &line.allows {
                    if !rules::is_known_rule(a) {
                        report.diagnostics.push(Diagnostic {
                            rule: "unknown-suppression",
                            path: rel.clone(),
                            line: i + 1,
                            message: format!(
                                "allow({a}) names no known rule or pass; valid names: {}",
                                rules::known_rule_names().join(", ")
                            ),
                        });
                    }
                }
            }
        }
    }

    // Phase 2: the cross-file passes over the finished model.
    for dpath in docs {
        let Ok(text) = std::fs::read_to_string(dpath) else {
            continue;
        };
        report.files_scanned += 1;
        model.add_docs(&rel_path(root, dpath), &text);
    }
    model.finish();
    match only {
        Some(o) if !passes::PASS_NAMES.contains(&o) => {
            // a line rule was requested: run no passes
        }
        _ => {
            let (diags, stats) = passes::run(&model, only);
            report.diagnostics.extend(diags);
            report.pass_stats = stats;
        }
    }

    report.diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    report.total_ms = t0.elapsed().as_secs_f64() * 1000.0;
    report
}

/// Is `d` switched off by an `allow(rule)` marker comment on its own
/// line or on the line directly above it?
fn suppressed(lines: &[Line], d: &Diagnostic) -> bool {
    let idx = d.line - 1; // diagnostics are 1-based
    let covering = [idx.checked_sub(1), Some(idx)];
    covering.into_iter().flatten().any(|i| {
        lines
            .get(i)
            .is_some_and(|l| l.allows.iter().any(|a| a == d.rule))
    })
}

/// The manifest owning `file`: nearest `Cargo.toml` walking up from the
/// file's directory, stopping at `root`.
fn nearest_manifest<'m>(
    by_dir: &'m BTreeMap<PathBuf, Manifest>,
    root: &Path,
    file: &Path,
) -> Option<&'m Manifest> {
    let mut dir = file.parent();
    while let Some(d) = dir {
        if let Some(m) = by_dir.get(d) {
            return Some(m);
        }
        if d == root {
            break;
        }
        dir = d.parent();
    }
    None
}

/// `/`-separated path of `p` relative to `root`.
fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collects `.rs` sources, `Cargo.toml` manifests and
/// observability docs files.
fn walk(
    dir: &Path,
    sources: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
    docs: &mut Vec<PathBuf>,
) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, sources, manifests, docs);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        } else if name.ends_with(".rs") {
            sources.push(path);
        } else if name == "observability.md" {
            docs.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_are_slash_separated_and_root_relative() {
        let root = Path::new("/a/b");
        assert_eq!(rel_path(root, Path::new("/a/b/c/d.rs")), "c/d.rs");
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let lines = lex_file(
            "// ezp-lint: allow(determinism)\nlet t = x();\nlet u = y();\n",
        );
        let mk = |line| Diagnostic {
            rule: "determinism",
            path: "f.rs".into(),
            line,
            message: String::new(),
        };
        assert!(suppressed(&lines, &mk(1)));
        assert!(suppressed(&lines, &mk(2)));
        assert!(!suppressed(&lines, &mk(3)));
    }
}
