//! **counter-registry** — the observability surface stays closed.
//!
//! The paper's pedagogy leans on the counters: a student who cannot
//! see `steals` or `idle_ns{cause=…}` cannot form the mental model the
//! monitoring view teaches. Three sets must therefore stay equal:
//!
//! 1. **registered → documented**: every counter name registered on a
//!    `CounterSet` (directly, or via the canonical constants in
//!    ezp-perf's `mod names`) has a row in the observability docs'
//!    counter table. An undocumented counter is invisible pedagogy.
//! 2. **documented → registered**: every row in that table names a
//!    registered counter. A stale row teaches a counter that no
//!    longer exists. (Kernel-reported values that are *not* registry
//!    counters — the per-rank MPI numbers — live in a separately
//!    headed table the model deliberately does not read.)
//! 3. **declared → handled**: every `RuntimeEvent` variant is matched
//!    as `RuntimeEvent::X` somewhere in ezp-perf. A variant the probe
//!    never matches is an event the runtime emits into silence —
//!    exactly the drift that made `ShadowRace` invisible once.
//!
//! Each direction only runs when its target set is non-empty, so a
//! fixture corpus (or a fresh workspace) without a registry does not
//! drown in findings.
//!
//! Suppression: `ezp-lint: allow(counter-registry)` at the
//! registration site or the variant declaration. Docs-side rows cannot
//! carry Rust comments; a stale-row finding is fixed in the docs, not
//! suppressed.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::model::Model;

const RULE: &str = "counter-registry";

/// Runs the pass over the finished model.
pub fn check(model: &Model) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let registered: BTreeSet<&str> =
        model.counter_decls.iter().map(|c| c.name.as_str()).collect();
    let documented: BTreeSet<&str> =
        model.doc_counters.iter().map(|c| c.name.as_str()).collect();

    // 1. registered → documented (needs a docs table to compare against)
    if model.docs_path.is_some() && !documented.is_empty() {
        let mut seen = BTreeSet::new();
        for c in &model.counter_decls {
            if !seen.insert(c.name.as_str()) {
                continue; // report each name once, at its first site
            }
            if !documented.contains(c.name.as_str()) && !model.is_allowed(&c.site, RULE) {
                out.push(Diagnostic {
                    rule: RULE,
                    path: c.site.path.clone(),
                    line: c.site.line,
                    message: format!(
                        "counter `{}` is registered in code but has no row in the {} \
                         counter table; document it (or suppress here if it is \
                         deliberately internal)",
                        c.name,
                        model.docs_path.as_deref().unwrap_or("observability docs")
                    ),
                });
            }
        }
    }

    // 2. documented → registered
    if !registered.is_empty() {
        let mut seen = BTreeSet::new();
        for d in &model.doc_counters {
            if !seen.insert(d.name.as_str()) {
                continue;
            }
            if !registered.contains(d.name.as_str()) {
                out.push(Diagnostic {
                    rule: RULE,
                    path: d.site.path.clone(),
                    line: d.site.line,
                    message: format!(
                        "counter `{}` is documented here but never registered on a \
                         CounterSet; delete the stale row or register the counter",
                        d.name
                    ),
                });
            }
        }
    }

    // 3. declared → handled
    if !model.events_handled.is_empty() {
        for v in &model.event_variants {
            if !model.events_handled.contains(&v.name) && !model.is_allowed(&v.site, RULE) {
                out.push(Diagnostic {
                    rule: RULE,
                    path: v.site.path.clone(),
                    line: v.site.line,
                    message: format!(
                        "RuntimeEvent::{} is never matched in ezp-perf; the runtime \
                         emits it into silence — handle it in the perf probe (or \
                         suppress here with a comment saying why it is \
                         perf-invisible)",
                        v.name
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;

    const PERF: &str = "\
pub mod names {
    pub const STEALS: &str = \"steals\";
}
impl Probe {
    fn on(&self, ev: RuntimeEvent) {
        match ev {
            RuntimeEvent::Steals { n } => {}
        }
    }
}
";

    const CORE: &str = "\
pub enum RuntimeEvent {
    Steals { n: u64 },
    PoolSync,
}
";

    fn model_of(perf: &str, core: &str, docs: &str) -> Model {
        let mut m = Model::new();
        m.add_source("crates/perf/src/probe.rs", "ezp-perf", &lex_file(perf));
        m.add_source("crates/core/src/kernel.rs", "ezp-core", &lex_file(core));
        if !docs.is_empty() {
            m.add_docs("docs/observability.md", docs);
        }
        m.finish();
        m
    }

    #[test]
    fn undocumented_registered_counter_fires() {
        let docs = "| counter | by |\n|---|---|\n| `other` | x |\n";
        let d = check(&model_of(PERF, "", docs));
        assert!(d.iter().any(|d| d.message.contains("`steals`") && d.message.contains("no row")));
    }

    #[test]
    fn stale_docs_row_fires_at_the_docs_line() {
        let docs = "| counter | by |\n|---|---|\n| `steals` | x |\n| `ghost` | y |\n";
        let d = check(&model_of(PERF, "", docs));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "docs/observability.md");
        assert_eq!(d[0].line, 4);
        assert!(d[0].message.contains("`ghost`"));
    }

    #[test]
    fn unhandled_runtime_event_variant_fires_at_its_declaration() {
        let docs = "| counter | by |\n|---|---|\n| `steals` | x |\n";
        let d = check(&model_of(PERF, CORE, docs));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("RuntimeEvent::PoolSync"));
        assert_eq!(d[0].path, "crates/core/src/kernel.rs");
    }

    #[test]
    fn in_sync_registry_is_quiet_and_empty_sets_do_not_cross_fire() {
        let docs = "| counter | by |\n|---|---|\n| `steals` | x |\n";
        let perf_handles_all = PERF.replace(
            "RuntimeEvent::Steals { n } => {}",
            "RuntimeEvent::Steals { n } => {}\n            RuntimeEvent::PoolSync => {}",
        );
        assert!(check(&model_of(&perf_handles_all, CORE, docs)).is_empty());
        // no docs file at all: both counter directions stay quiet
        assert!(check(&model_of(PERF, CORE.replace("PoolSync,", "").as_str(), "")).is_empty());
    }

    #[test]
    fn suppression_at_variant_decl_silences() {
        let core = "\
pub enum RuntimeEvent {
    Steals { n: u64 },
    // ezp-lint: allow(counter-registry)
    PoolSync,
}
";
        let docs = "| counter | by |\n|---|---|\n| `steals` | x |\n";
        assert!(check(&model_of(PERF, core, docs)).is_empty());
    }
}
