//! Phase-2 cross-file passes over the [`crate::model::Model`].
//!
//! Each pass is a pure function from the finished symbol model to a
//! list of diagnostics; suppression is resolved inside the pass (a
//! cross-file finding may be silenced either at the reported site or
//! at the declaration that anchors the invariant — see each pass's
//! docs). [`run`] times every pass individually so the CI report can
//! track per-pass cost against the lint lane's 5-second budget.

pub mod atomics;
pub mod guards;
pub mod registry;

use crate::diag::Diagnostic;
use crate::model::Model;
use std::time::Instant;

/// Names of the cross-file passes, in run order.
pub const PASS_NAMES: &[&str] = &["atomics-pairing", "guard-leak", "counter-registry"];

/// Wall-time and finding count for one pass execution.
#[derive(Debug, Clone)]
pub struct PassStat {
    /// Pass name.
    pub name: &'static str,
    /// Findings the pass produced (post-suppression).
    pub findings: usize,
    /// Wall time of the pass in milliseconds.
    pub wall_ms: f64,
}

/// Runs the cross-file passes (all of them, or just `only`) and
/// returns their diagnostics plus per-pass statistics.
pub fn run(model: &Model, only: Option<&str>) -> (Vec<Diagnostic>, Vec<PassStat>) {
    let passes: [(&'static str, fn(&Model) -> Vec<Diagnostic>); 3] = [
        ("atomics-pairing", atomics::check),
        ("guard-leak", guards::check),
        ("counter-registry", registry::check),
    ];
    let mut diags = Vec::new();
    let mut stats = Vec::new();
    for (name, pass) in passes {
        if only.is_some_and(|o| o != name) {
            continue;
        }
        let t0 = Instant::now();
        let found = pass(model);
        stats.push(PassStat {
            name,
            findings: found.len(),
            wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
        });
        diags.extend(found);
    }
    (diags, stats)
}
