//! **guard-leak** — RAII guards must exist and must be held.
//!
//! Pool sharing (PR 9's `PoolMux`) hangs its correctness on RAII: a
//! `PoolLease` returned by `lease()` re-parks the pool when dropped,
//! so a lease that drops *immediately* — `let _ = mux.lease()` or a
//! bare `mux.lease();` statement — silently serializes every tenant
//! with no error anywhere. The borrow checker cannot catch it; this
//! pass does, in two halves:
//!
//! 1. **Guard without Drop** — a type named `*Guard` / `*Lease` /
//!    `*Ticket` / `*Handle` with no `impl Drop` in the model. Either
//!    the release logic is missing, or the type is deliberately not
//!    RAII (a shared token, say) and the declaration should carry a
//!    suppression explaining that.
//! 2. **Discarded acquisition** — a call to a guard-returning API
//!    (any `fn` whose declared return type mentions a guard type)
//!    whose result is bound to `_` or discarded as an expression
//!    statement. Trailing `.unwrap()` / `.expect(…)` / `.ok()` do not
//!    rescue the guard — the temporary still drops at the semicolon.
//!
//! What it cannot see: multi-line `fn` signatures (the return type is
//! not on the `fn` line), guards returned through type aliases or
//! `impl Trait`, and discards split across lines. All misses are in
//! the quiet direction.
//!
//! Suppression: `ezp-lint: allow(guard-leak)` at the reported site, at
//! the guard type's declaration, or at the acquiring API's `fn` line.

use crate::diag::Diagnostic;
use crate::lexer;
use crate::model::Model;

const RULE: &str = "guard-leak";

/// Statement-leading keywords that mean the call result flows onward
/// (returned, matched, yielded from a loop) rather than being dropped.
const FLOW_KEYWORDS: &[&str] = &["return", "break", "yield", "else", "match", "in"];

/// Runs the pass over the finished model.
pub fn check(model: &Model) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // 1. guard-named types without Drop
    for g in &model.guard_types {
        if !model.drop_impls.contains(&g.name) && !model.is_allowed(&g.site, RULE) {
            out.push(Diagnostic {
                rule: RULE,
                path: g.site.path.clone(),
                line: g.site.line,
                message: format!(
                    "type `{}` is named like an RAII guard but has no `impl Drop`; \
                     implement Drop to release the resource, or — if the type is \
                     deliberately not RAII — suppress here with a comment saying what \
                     owns the release instead",
                    g.name
                ),
            });
        }
    }

    // 2. discarded acquisitions
    if model.guard_apis.is_empty() {
        return out;
    }
    for (path, _krate, lines) in model.files() {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for api in &model.guard_apis {
                let mut from = 0;
                while let Some(p) = lexer::find_word(&line.code, &api.name, from) {
                    from = p + api.name.chars().count();
                    // the declaration itself is not a call site
                    if lexer::has_word(&line.code, "fn") {
                        continue;
                    }
                    let Some(reason) = discarded(&line.code, p, api.name.chars().count())
                    else {
                        continue;
                    };
                    let site = crate::model::Site { path: path.to_string(), line: i + 1 };
                    let anchors_allowed = model.is_allowed(&site, RULE)
                        || model.is_allowed(&api.site, RULE)
                        || model
                            .guard_types
                            .iter()
                            .any(|g| g.name == api.guard && model.is_allowed(&g.site, RULE));
                    if !anchors_allowed {
                        out.push(Diagnostic {
                            rule: RULE,
                            path: site.path,
                            line: site.line,
                            message: format!(
                                "result of guard-returning `{}()` is {reason}; the `{}` \
                                 drops immediately instead of covering a scope — bind it \
                                 to a named variable (`let _{} = …`)",
                                api.name,
                                api.guard,
                                api.guard.to_lowercase()
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Decides whether the call to a guard-returning API starting at char
/// `p` (name length `len`) discards its result. Returns the reason
/// string for the diagnostic, or `None` when the result is (or may be)
/// used. Conservative: anything this single-line analysis cannot prove
/// discarded is treated as used.
fn discarded(code: &str, p: usize, len: usize) -> Option<&'static str> {
    let chars: Vec<char> = code.chars().collect();
    // must be a call: `name(`
    if chars.get(p + len) != Some(&'(') {
        return None;
    }
    // statement prefix: from the last `;` / `{` / `}` before the name
    let mut s = p;
    while s > 0 && !matches!(chars[s - 1], ';' | '{' | '}') {
        s -= 1;
    }
    let prefix: String = chars[s..p].iter().collect();
    let prefix = prefix.trim();

    // `let _ = receiver.chain.api(…)` — `_` exactly, not `_named`
    let (discard_kind, chain) = if let Some(rest) = prefix.strip_prefix("let") {
        let rest = rest.trim_start();
        let mut it = rest.chars();
        if it.next() != Some('_') || it.clone().next().is_some_and(lexer::is_ident_char) {
            return None; // named (or `_named`) binding: held
        }
        let after: &str = rest[1..].trim_start();
        let Some(chain) = after.strip_prefix('=') else {
            return None;
        };
        ("bound to `_`", chain.trim())
    } else {
        ("discarded as a statement", prefix)
    };

    // the text between binding (or statement start) and the call must
    // be a bare receiver chain — any operator, paren or keyword means
    // the value flows somewhere we cannot track
    let chain_ok = chain
        .chars()
        .all(|c| lexer::is_ident_char(c) || c == '.' || c == ':' || c.is_whitespace());
    if !chain_ok || FLOW_KEYWORDS.iter().any(|k| lexer::has_word(chain, k)) {
        return None;
    }

    // scan past the call's argument list; give up on multi-line calls
    let mut i = p + len;
    let mut depth = 0i32;
    while i < chars.len() {
        match chars[i] {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    if depth != 0 {
        return None;
    }
    // strip result adapters that do not keep the guard alive
    let mut rest: String = chars[i..].iter().collect();
    loop {
        let t = rest.trim_start();
        let stripped = t
            .strip_prefix(".unwrap()")
            .or_else(|| t.strip_prefix(".ok()"))
            .or_else(|| {
                t.strip_prefix(".expect(").and_then(|after| {
                    after.find(')').map(|close| &after[close + 1..])
                })
            });
        match stripped {
            Some(next) => rest = next.to_string(),
            None => break,
        }
    }
    if rest.trim() == ";" {
        Some(discard_kind)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;

    fn model_of(src: &str) -> Model {
        let mut m = Model::new();
        m.add_source("crates/x/src/lib.rs", "x", &lex_file(src));
        m.finish();
        m
    }

    const PRELUDE: &str = "\
pub struct PoolLease { id: usize }
impl Drop for PoolLease { fn drop(&mut self) {} }
impl Mux { pub fn lease(&self) -> PoolLease { todo!() } }
";

    fn leaks_in(stmt: &str) -> usize {
        let src = format!("{PRELUDE}fn caller(mux: &Mux) {{\n    {stmt}\n}}\n");
        check(&model_of(&src)).len()
    }

    #[test]
    fn guard_type_without_drop_fires_at_the_declaration() {
        let m = model_of("pub struct JobTicket { live: bool }\n");
        let d = check(&m);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("impl Drop"));
        let ok = model_of("pub struct G2Guard;\nimpl Drop for G2Guard { fn drop(&mut self) {} }\n");
        assert!(check(&ok).is_empty());
    }

    #[test]
    fn underscore_binding_and_bare_statement_are_leaks() {
        assert_eq!(leaks_in("let _ = mux.lease();"), 1);
        assert_eq!(leaks_in("mux.lease();"), 1);
        assert_eq!(leaks_in("mux.lease().unwrap();"), 1);
        assert_eq!(leaks_in("let _ = mux.lease().expect(\"pool\");"), 1);
    }

    #[test]
    fn named_bindings_and_flowing_results_are_held() {
        assert_eq!(leaks_in("let _lease = mux.lease();"), 0);
        assert_eq!(leaks_in("let lease = mux.lease();"), 0);
        assert_eq!(leaks_in("return mux.lease();"), 0);
        assert_eq!(leaks_in("let id = mux.lease().id;"), 0);
        assert_eq!(leaks_in("take(mux.lease());"), 0);
        assert_eq!(leaks_in("if let Some(l) = mux.try_get() { use_it(l); }"), 0);
    }

    #[test]
    fn suppression_at_call_api_or_type_decl_silences() {
        let at_site = format!(
            "{PRELUDE}fn caller(mux: &Mux) {{\n    // ezp-lint: allow(guard-leak)\n    mux.lease();\n}}\n"
        );
        assert!(check(&model_of(&at_site)).is_empty());
        let at_type = "\
// ezp-lint: allow(guard-leak)
pub struct ShareTicket { live: bool }
";
        assert!(check(&model_of(at_type)).is_empty());
    }
}
