//! **atomics-pairing** — cross-file acquire/release discipline.
//!
//! The per-line `ordering-needs-justification` rule checks that each
//! weak-ordering *site* carries an argument; this pass checks that the
//! arguments *compose* per field, across the whole crate:
//!
//! 1. **Unpaired release** — a `Release` (or `AcqRel`) write to a field
//!    with no `Acquire` / `AcqRel` / `SeqCst` read of the same field
//!    anywhere in the crate. Nothing can synchronize-with that store,
//!    so either the acquire side is missing or the ordering is
//!    stronger than the protocol needs. (`AcqRel` RMWs satisfy both
//!    sides at once — the indegree-decrement pattern, where the last
//!    decrementer must observe every earlier one, pairs with itself.)
//! 2. **Untagged relaxed-only field** — every access is `Relaxed`, but
//!    the declaration carries no taxonomy tag (`counter-only` /
//!    `synchronizing` / `via-the-spine`, from the PR 5 ordering
//!    taxonomy). Relaxed-only is usually right for statistics; the tag
//!    records that someone decided that, so a later reader reaching
//!    for the counter in a protocol knows its limits.
//! 3. **Unjustified mix** — the field participates in acquire/release
//!    edges *and* has `Relaxed` sites with no `ORDERING:` comment.
//!    A relaxed fast-path read of a synchronizing field can be
//!    correct (own-counter reads in the SPSC ring are the canonical
//!    case) but only on an argument, which must be written down.
//!
//! `SeqCst` accesses never trigger any of the three — the workspace
//! treats SeqCst as its default spine, and a Relaxed+SeqCst mix is the
//! documented "counter read off the spine" pattern.
//!
//! Suppression: `ezp-lint: allow(atomics-pairing)` at the reported
//! site, or at any declaration of the field (the declaration anchors
//! the invariant, so one suppression covers every site).

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::model::{AccessKind, AtomicAccess, AtomicField, Model};

const RULE: &str = "atomics-pairing";

/// Does the access write with release semantics?
fn is_release_write(a: &AtomicAccess) -> bool {
    !matches!(a.kind, AccessKind::Load)
        && a.orderings.iter().any(|o| o == "Release" || o == "AcqRel")
}

/// Can the access serve as the acquire side of an edge?
fn is_acquire_side(a: &AtomicAccess) -> bool {
    a.orderings
        .iter()
        .any(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst")
}

/// Is every ordering at the access `Relaxed`?
fn is_relaxed_pure(a: &AtomicAccess) -> bool {
    a.orderings.iter().all(|o| o == "Relaxed")
}

/// Runs the pass over the finished model.
pub fn check(model: &Model) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let mut decls: BTreeMap<(&str, &str), Vec<&AtomicField>> = BTreeMap::new();
    for f in &model.atomic_fields {
        decls.entry((f.krate.as_str(), f.name.as_str())).or_default().push(f);
    }
    let mut accs: BTreeMap<(&str, &str), Vec<&AtomicAccess>> = BTreeMap::new();
    for a in &model.atomic_accesses {
        accs.entry((a.krate.as_str(), a.field.as_str())).or_default().push(a);
    }

    for ((krate, field), field_decls) in &decls {
        // Files outside any manifest resolve to an empty crate name.
        let krate_desc = if krate.is_empty() { "this crate".to_string() } else { format!("crate {krate}") };
        let decl_allowed = field_decls.iter().any(|d| model.is_allowed(&d.site, RULE));
        let Some(list) = accs.get(&(krate, field)) else {
            continue; // declared but never accessed (or only in tests)
        };

        // 1. unpaired release
        if let Some(rel) = list.iter().find(|a| is_release_write(a)) {
            if !list.iter().any(|a| is_acquire_side(a))
                && !decl_allowed
                && !model.is_allowed(&rel.site, RULE)
            {
                out.push(Diagnostic {
                    rule: RULE,
                    path: rel.site.path.clone(),
                    line: rel.site.line,
                    message: format!(
                        "Release write to `{field}` has no Acquire/AcqRel/SeqCst read of \
                         the same field anywhere in {krate_desc}; nothing can \
                         synchronize-with this store — add the acquire side, or weaken \
                         the ordering with an ORDERING: argument"
                    ),
                });
            }
        }

        // 2. relaxed-only field without a taxonomy tag
        if list.iter().all(|a| is_relaxed_pure(a)) {
            for d in field_decls {
                if !d.taxonomy && !model.is_allowed(&d.site, RULE) {
                    out.push(Diagnostic {
                        rule: RULE,
                        path: d.site.path.clone(),
                        line: d.site.line,
                        message: format!(
                            "atomic field `{field}` is accessed only with \
                             Ordering::Relaxed but its declaration carries no taxonomy \
                             tag; add a `counter-only` (or `synchronizing` / \
                             `via-the-spine`) comment here so the relaxed argument is \
                             written down"
                        ),
                    });
                }
            }
            continue;
        }

        // 3. unjustified Relaxed sites on a field with acquire/release
        //    edges (SeqCst-mixed fields are exempt: that is the spine)
        let has_sync_edge = list
            .iter()
            .any(|a| a.orderings.iter().any(|o| o == "Acquire" || o == "Release" || o == "AcqRel"));
        if has_sync_edge && !decl_allowed {
            for a in list {
                if is_relaxed_pure(a) && !a.justified && !model.is_allowed(&a.site, RULE) {
                    out.push(Diagnostic {
                        rule: RULE,
                        path: a.site.path.clone(),
                        line: a.site.line,
                        message: format!(
                            "Relaxed access to `{field}`, which also carries \
                             acquire/release edges in {krate_desc}; say why this site \
                             may stay relaxed with an ORDERING: comment, or use the \
                             protocol's ordering"
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;

    fn model_of(src: &str) -> Model {
        let mut m = Model::new();
        m.add_source("crates/x/src/lib.rs", "x", &lex_file(src));
        m.finish();
        m
    }

    #[test]
    fn unpaired_release_fires_and_pairing_silences() {
        let bad = model_of(
            "struct S { flag: AtomicBool }\nimpl S { fn f(&self) { self.flag.store(true, Ordering::Release); } }\n",
        );
        let d = check(&bad);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no Acquire"));
        let good = model_of(
            "struct S { flag: AtomicBool }\nimpl S { fn f(&self) { self.flag.store(true, Ordering::Release); let _v = self.flag.load(Ordering::Acquire); } }\n",
        );
        assert!(check(&good).is_empty());
    }

    #[test]
    fn acqrel_rmw_pairs_with_itself() {
        let m = model_of(
            "struct S { remaining: AtomicUsize }\nimpl S { fn f(&self) { self.remaining.fetch_sub(1, Ordering::AcqRel); } }\n",
        );
        assert!(check(&m).is_empty());
    }

    #[test]
    fn relaxed_only_field_needs_a_taxonomy_tag() {
        let bad = model_of(
            "struct S { hits: AtomicU64 }\nimpl S { fn f(&self) { self.hits.fetch_add(1, Ordering::Relaxed); } }\n",
        );
        let d = check(&bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1); // anchored at the declaration
        let good = model_of(
            "struct S {\n    // counter-only: stats, never synchronizes\n    hits: AtomicU64,\n}\nimpl S { fn f(&self) { self.hits.fetch_add(1, Ordering::Relaxed); } }\n",
        );
        assert!(check(&good).is_empty());
    }

    #[test]
    fn unjustified_mix_fires_but_seqcst_mix_is_the_spine() {
        let bad = model_of(
            "struct S { seq: AtomicU64 }\nimpl S { fn f(&self) { self.seq.store(1, Ordering::Release); let _a = self.seq.load(Ordering::Acquire); let _b = self.seq.load(Ordering::Relaxed); } }\n",
        );
        let d = check(&bad);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("stay relaxed"));
        let spine = model_of(
            "struct S { n: AtomicU64 }\nimpl S { fn f(&self) { self.n.store(1, Ordering::SeqCst); let _b = self.n.load(Ordering::Relaxed); } }\n",
        );
        assert!(check(&spine).is_empty());
    }

    #[test]
    fn decl_site_suppression_covers_every_site() {
        let m = model_of(
            "struct S {\n    // ezp-lint: allow(atomics-pairing)\n    flag: AtomicBool,\n}\nimpl S { fn f(&self) { self.flag.store(true, Ordering::Release); } }\n",
        );
        assert!(check(&m).is_empty());
    }
}
