//! # ezp-exp — experiment automation (`expTools`, paper §II-C, Fig. 5)
//!
//! The paper's students write small Python scripts:
//!
//! ```python
//! easypap_options["--kernel "] = ["mandel"]
//! easypap_options["--variant "] = ["omp_tiled"]
//! easypap_options["--grain "]  = [16, 32]
//! omp_icv["OMP_NUM_THREADS="]  = list(range(2, 13, 2))
//! execute('easypap', omp_icv, easypap_options, runs=10)
//! ```
//!
//! [`Sweep`] is the Rust equivalent: declare option axes, take the
//! cartesian product, run every combination `runs` times through the
//! kernel registry (in-process — no fork needed), and append every
//! result to the shared CSV that `ezp-plot` consumes.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use ezp_core::csv::CsvTable;
use ezp_core::error::Result;
use ezp_core::kernel::NullProbe;
use ezp_core::perf::{run_kernel, RunOutcome, CSV_HEADER};
use ezp_core::{Registry, RunConfig};
use std::path::Path;
use std::sync::Arc;

/// A cartesian parameter sweep.
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    /// Option axes in declaration order: `(flag, values)`.
    axes: Vec<(String, Vec<String>)>,
    /// Repetitions per combination (the Fig. 5 script uses `runs=10`).
    runs: usize,
}

impl Sweep {
    /// An empty sweep with one run per combination.
    pub fn new() -> Self {
        Sweep {
            axes: Vec::new(),
            runs: 1,
        }
    }

    /// Declares an option axis, e.g. `set("--grain", ["16", "32"])`.
    /// Declaring the same flag twice replaces the previous values.
    pub fn set<S: ToString>(mut self, flag: &str, values: impl IntoIterator<Item = S>) -> Self {
        let values: Vec<String> = values.into_iter().map(|v| v.to_string()).collect();
        assert!(!values.is_empty(), "an axis needs at least one value");
        if let Some(axis) = self.axes.iter_mut().find(|(f, _)| f == flag) {
            axis.1 = values;
        } else {
            self.axes.push((flag.to_string(), values));
        }
        self
    }

    /// Shorthand for a single-valued axis.
    pub fn fixed<S: ToString>(self, flag: &str, value: S) -> Self {
        self.set(flag, [value])
    }

    /// Number of repetitions per combination.
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Number of distinct configurations (excluding repetitions).
    pub fn combinations(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// Materializes every combination as an argument vector.
    pub fn arg_vectors(&self) -> Vec<Vec<String>> {
        let mut out = vec![Vec::new()];
        for (flag, values) in &self.axes {
            let mut next = Vec::with_capacity(out.len() * values.len());
            for prefix in &out {
                for v in values {
                    let mut args = prefix.clone();
                    args.push(flag.clone());
                    args.push(v.clone());
                    next.push(args);
                }
            }
            out = next;
        }
        out
    }

    /// Runs the sweep: every combination × `runs`, silently (performance
    /// mode), appending one CSV row per run to `csv_path` and returning
    /// all outcomes. Combinations whose configuration fails to validate
    /// return an error (nothing is silently skipped).
    pub fn execute(
        &self,
        registry: &Registry,
        csv_path: impl AsRef<Path>,
    ) -> Result<Vec<RunOutcome>> {
        let csv_path = csv_path.as_ref();
        let mut outcomes = Vec::with_capacity(self.combinations() * self.runs);
        for args in self.arg_vectors() {
            let cfg = RunConfig::parse_args(args.iter().map(String::as_str))?;
            for run in 0..self.runs {
                let (outcome, _ctx) = run_kernel(registry, cfg.clone(), Arc::new(NullProbe))?;
                outcome.append_csv(csv_path, run)?;
                outcomes.push(outcome);
            }
        }
        Ok(outcomes)
    }

    /// Loads the accumulated CSV back (convenience for plot pipelines).
    pub fn load_results(csv_path: impl AsRef<Path>) -> Result<CsvTable> {
        CsvTable::load(csv_path)
    }
}

/// The canonical CSV header the sweep produces (re-exported for
/// consumers that want to build tables by hand).
pub fn csv_header() -> &'static [&'static str] {
    &CSV_HEADER
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_core::error::Result as EzpResult;
    use ezp_core::{Kernel, KernelCtx};

    /// A fast kernel for sweep tests.
    struct Noop;

    impl Kernel for Noop {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn variants(&self) -> Vec<&'static str> {
            vec!["seq", "par"]
        }
        fn init(&mut self, _ctx: &mut KernelCtx) -> EzpResult<()> {
            Ok(())
        }
        fn compute(&mut self, _ctx: &mut KernelCtx, _v: &str, _n: u32) -> EzpResult<Option<u32>> {
            Ok(None)
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register("noop", || Box::new(Noop));
        r
    }

    fn tmp_csv(name: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("ezp_exp_{}_{}.csv", name, std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn cartesian_product_counts() {
        let sweep = Sweep::new()
            .fixed("--kernel", "noop")
            .set("--grain", [16, 32])
            .set("--threads", [1, 2, 3]);
        assert_eq!(sweep.combinations(), 6);
        assert_eq!(sweep.arg_vectors().len(), 6);
        // order: last axis varies fastest
        let first = &sweep.arg_vectors()[0];
        assert_eq!(first, &vec!["--kernel", "noop", "--grain", "16", "--threads", "1"]);
    }

    #[test]
    fn setting_same_flag_replaces() {
        let sweep = Sweep::new().set("--grain", [16]).set("--grain", [32, 64]);
        assert_eq!(sweep.combinations(), 2);
    }

    #[test]
    fn execute_appends_one_row_per_run() {
        let csv = tmp_csv("rows");
        let sweep = Sweep::new()
            .fixed("--kernel", "noop")
            .fixed("--size", 64)
            .fixed("--tile-size", 16)
            .set("--variant", ["seq", "par"])
            .set("--threads", [1, 2])
            .runs(3);
        let outcomes = sweep.execute(&registry(), &csv).unwrap();
        assert_eq!(outcomes.len(), 2 * 2 * 3);
        let table = CsvTable::load(&csv).unwrap();
        assert_eq!(table.len(), 12);
        assert_eq!(table.header, csv_header());
        // runs column cycles 0,1,2
        assert_eq!(table.row(0).get("run"), Some("0"));
        assert_eq!(table.row(2).get("run"), Some("2"));
        std::fs::remove_file(&csv).unwrap();
    }

    #[test]
    fn sweep_feeds_plot_pipeline() {
        let csv = tmp_csv("plot");
        Sweep::new()
            .fixed("--kernel", "noop")
            .fixed("--size", 64)
            .fixed("--tile-size", 16)
            .set("--threads", [1, 2, 4])
            .set("--schedule", ["static", "dynamic,2"])
            .runs(2)
            .execute(&registry(), &csv)
            .unwrap();
        let table = Sweep::load_results(&csv).unwrap();
        let data =
            ezp_plot_check(&table).expect("plot pipeline must accept sweep output");
        assert_eq!(data, 2); // two legend series: the two schedules
        std::fs::remove_file(&csv).unwrap();
    }

    // minimal inline check to avoid a circular dev-dependency on ezp-plot:
    // count distinct schedule values that would become legend entries
    fn ezp_plot_check(table: &CsvTable) -> Option<usize> {
        let mut schedules: Vec<&str> = table.column("schedule")?;
        schedules.sort_unstable();
        schedules.dedup();
        Some(schedules.len())
    }

    #[test]
    fn invalid_configuration_fails_loudly() {
        let csv = tmp_csv("bad");
        let sweep = Sweep::new().fixed("--kernel", "noop").fixed("--tile-size", 0);
        assert!(sweep.execute(&registry(), &csv).is_err());
        let _ = std::fs::remove_file(&csv);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_axis_rejected() {
        let _ = Sweep::new().set("--grain", Vec::<String>::new());
    }
}
