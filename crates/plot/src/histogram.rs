//! Histogram / bar-chart rendering — "students can then exploit their
//! data and produce the desired graph or histogram" (§II-C).
//!
//! A histogram view groups the rows by a categorical column (e.g.
//! `schedule`), averages the y values per group, and draws one bar per
//! group — the right chart when x is not numeric.

use crate::dataset::Series;
use ezp_core::color::{worker_color, Rgba};
use ezp_core::csv::CsvTable;
use ezp_core::error::{Error, Result};
use ezp_core::svg::SvgCanvas;

/// One bar: label + mean value (+ run count for the label).
#[derive(Clone, Debug, PartialEq)]
pub struct Bar {
    /// Category label (e.g. `dynamic,2`).
    pub label: String,
    /// Mean of the y values in the category.
    pub value: f64,
    /// Number of rows averaged.
    pub count: usize,
}

/// Builds bars from `table`: group by `cat_col`, average `y_col`.
pub fn bars_from_table(table: &CsvTable, cat_col: &str, y_col: &str) -> Result<Vec<Bar>> {
    let ci = table
        .col(cat_col)
        .ok_or_else(|| Error::Config(format!("no column `{cat_col}`")))?;
    let yi = table
        .col(y_col)
        .ok_or_else(|| Error::Config(format!("no column `{y_col}`")))?;
    let mut acc: std::collections::BTreeMap<String, (f64, usize)> = std::collections::BTreeMap::new();
    for row in &table.rows {
        let y: f64 = row[yi]
            .parse()
            .map_err(|_| Error::Config(format!("non-numeric y `{}`", row[yi])))?;
        let slot = acc.entry(row[ci].clone()).or_insert((0.0, 0));
        slot.0 += y;
        slot.1 += 1;
    }
    if acc.is_empty() {
        return Err(Error::Config("no rows to histogram".into()));
    }
    Ok(acc
        .into_iter()
        .map(|(label, (sum, count))| Bar {
            label,
            value: sum / count as f64,
            count,
        })
        .collect())
}

/// Renders bars as ASCII (horizontal bars scaled to `width` cells).
pub fn render_bars_ascii(bars: &[Bar], y_label: &str, width: usize) -> String {
    if bars.is_empty() {
        return "no data\n".to_string();
    }
    let max = bars.iter().map(|b| b.value).fold(f64::MIN, f64::max).max(1e-12);
    let label_w = bars.iter().map(|b| b.label.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    for bar in bars {
        let filled = ((bar.value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:>label_w$} |{}{}| {:.1} ({} runs)\n",
            bar.label,
            "#".repeat(filled),
            " ".repeat(width - filled),
            bar.value,
            bar.count,
        ));
    }
    out.push_str(&format!("{:>label_w$}  ({y_label})\n", ""));
    out
}

/// Renders bars as an SVG column chart.
pub fn render_bars_svg(bars: &[Bar], y_label: &str, width: f64, height: f64) -> String {
    let mut c = SvgCanvas::new(width, height);
    if bars.is_empty() {
        c.text(10.0, 20.0, 12.0, Rgba::BLACK, "no data");
        return c.finish();
    }
    let margin = 40.0;
    let plot_w = width - 2.0 * margin;
    let plot_h = height - 2.0 * margin;
    let max = bars.iter().map(|b| b.value).fold(f64::MIN, f64::max).max(1e-12);
    let bar_w = plot_w / bars.len() as f64 * 0.7;
    let gap = plot_w / bars.len() as f64;
    c.line(margin, height - margin, width - margin, height - margin, Rgba::BLACK, 1.0);
    c.text(4.0, margin - 8.0, 11.0, Rgba::BLACK, y_label);
    for (i, bar) in bars.iter().enumerate() {
        let h = bar.value / max * plot_h;
        let x = margin + i as f64 * gap + (gap - bar_w) / 2.0;
        c.rect(x, height - margin - h, bar_w, h, worker_color(i));
        c.text(x, height - margin + 14.0, 9.0, Rgba::BLACK, &bar.label);
        c.text(x, height - margin - h - 4.0, 9.0, Rgba::BLACK, &format!("{:.1}", bar.value));
    }
    c.finish()
}

/// Convenience: turn an existing line dataset's series into bars using
/// each series' mean y — the "histogram of the legend" view.
pub fn bars_from_series(series: &[Series]) -> Vec<Bar> {
    series
        .iter()
        .map(|s| Bar {
            label: s.label.clone(),
            value: if s.points.is_empty() {
                0.0
            } else {
                s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64
            },
            count: s.points.len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CsvTable {
        let mut t = CsvTable::new(vec!["schedule", "time_us"]);
        for (s, v) in [
            ("static", "100"),
            ("static", "120"),
            ("dynamic", "60"),
            ("dynamic", "40"),
            ("guided", "70"),
        ] {
            t.push_row(vec![s, v]).unwrap();
        }
        t
    }

    #[test]
    fn bars_group_and_average() {
        let bars = bars_from_table(&table(), "schedule", "time_us").unwrap();
        assert_eq!(bars.len(), 3);
        let dynamic = bars.iter().find(|b| b.label == "dynamic").unwrap();
        assert_eq!(dynamic.value, 50.0);
        assert_eq!(dynamic.count, 2);
        let stat = bars.iter().find(|b| b.label == "static").unwrap();
        assert_eq!(stat.value, 110.0);
    }

    #[test]
    fn missing_columns_and_empty_tables_error() {
        assert!(bars_from_table(&table(), "nope", "time_us").is_err());
        assert!(bars_from_table(&table(), "schedule", "schedule").is_err());
        let empty = CsvTable::new(vec!["schedule", "time_us"]);
        assert!(bars_from_table(&empty, "schedule", "time_us").is_err());
    }

    #[test]
    fn ascii_bars_scale_to_max() {
        let bars = bars_from_table(&table(), "schedule", "time_us").unwrap();
        let art = render_bars_ascii(&bars, "time_us", 20);
        let static_line = art.lines().find(|l| l.contains("static")).unwrap();
        assert!(static_line.contains(&"#".repeat(20)), "max bar must be full");
        assert!(art.contains("(2 runs)"));
        assert!(art.contains("(time_us)"));
        assert_eq!(render_bars_ascii(&[], "y", 10), "no data\n");
    }

    #[test]
    fn svg_bars_have_one_rect_each() {
        let bars = bars_from_table(&table(), "schedule", "time_us").unwrap();
        let svg = render_bars_svg(&bars, "time_us", 400.0, 300.0);
        // background + 3 bars
        assert_eq!(svg.matches("<rect").count(), 4);
        assert!(svg.contains("dynamic"));
    }

    #[test]
    fn series_to_bars() {
        let series = vec![
            Series {
                label: "a".into(),
                points: vec![(1.0, 2.0), (2.0, 4.0)],
            },
            Series {
                label: "b".into(),
                points: vec![],
            },
        ];
        let bars = bars_from_series(&series);
        assert_eq!(bars[0].value, 3.0);
        assert_eq!(bars[1].value, 0.0);
        assert_eq!(bars[1].count, 0);
    }
}
