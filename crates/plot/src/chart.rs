//! Chart rendering: ASCII for terminals, SVG for reports.

use crate::dataset::Dataset;
use ezp_core::color::{worker_color, Rgba};
use ezp_core::svg::SvgCanvas;

/// Characters used to draw each series in ASCII charts.
const SERIES_CHARS: &[u8] = b"*o+x#%@&";

/// Renders the dataset as an ASCII chart of `width`×`height` cells,
/// followed by the legend and the constants line.
pub fn render_ascii(data: &Dataset, width: usize, height: usize) -> String {
    let Some(((x0, x1), (y0, y1))) = data.bounds() else {
        return "empty dataset\n".to_string();
    };
    let width = width.max(16);
    let height = height.max(6);
    let xspan = (x1 - x0).max(1e-12);
    let yspan = (y1 - y0).max(1e-12);
    let mut cells = vec![b' '; width * height];
    for (si, s) in data.series.iter().enumerate() {
        let ch = SERIES_CHARS[si % SERIES_CHARS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x0) / xspan * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / yspan * (height - 1) as f64).round() as usize;
            cells[(height - 1 - cy) * width + cx] = ch;
        }
    }
    let mut out = String::new();
    for row in 0..height {
        let yval = y1 - yspan * row as f64 / (height - 1) as f64;
        out.push_str(&format!("{yval:>8.2} |"));
        out.push_str(std::str::from_utf8(&cells[row * width..(row + 1) * width]).unwrap());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>9}{:<w$.2}{:>.2}   ({} -> {})\n",
        "",
        x0,
        x1,
        data.x_col,
        data.y_label,
        w = width - 6
    ));
    out.push_str("legend:\n");
    for (si, s) in data.series.iter().enumerate() {
        out.push_str(&format!(
            "  {} {}\n",
            SERIES_CHARS[si % SERIES_CHARS.len()] as char,
            s.label
        ));
    }
    let constants = data.constants_line();
    if !constants.is_empty() {
        out.push_str(&constants);
        out.push('\n');
    }
    out
}

/// Renders the dataset as an SVG line chart with axes, legend and the
/// constants line (the Fig. 6 layout).
pub fn render_svg(data: &Dataset, width: f64, height: f64) -> String {
    let mut c = SvgCanvas::new(width, height);
    let Some(((x0, x1), (y0, y1))) = data.bounds() else {
        c.text(10.0, 20.0, 12.0, Rgba::BLACK, "empty dataset");
        return c.finish();
    };
    let margin = 50.0;
    let plot_w = width - 2.0 * margin;
    let plot_h = height - 2.0 * margin;
    let xspan = (x1 - x0).max(1e-12);
    let yspan = (y1 - y0).max(1e-12);
    let sx = |x: f64| margin + (x - x0) / xspan * plot_w;
    let sy = |y: f64| height - margin - (y - y0) / yspan * plot_h;
    // axes
    c.line(margin, height - margin, width - margin, height - margin, Rgba::BLACK, 1.0);
    c.line(margin, margin, margin, height - margin, Rgba::BLACK, 1.0);
    c.text(width / 2.0, height - 8.0, 11.0, Rgba::BLACK, &data.x_col);
    c.text(4.0, margin - 8.0, 11.0, Rgba::BLACK, &data.y_label);
    // tick labels at the extremes
    c.text(margin, height - margin + 14.0, 9.0, Rgba::BLACK, &format!("{x0:.0}"));
    c.text(width - margin, height - margin + 14.0, 9.0, Rgba::BLACK, &format!("{x1:.0}"));
    c.text(margin - 40.0, height - margin, 9.0, Rgba::BLACK, &format!("{y0:.1}"));
    c.text(margin - 40.0, margin + 4.0, 9.0, Rgba::BLACK, &format!("{y1:.1}"));
    // series
    for (si, s) in data.series.iter().enumerate() {
        let color = worker_color(si);
        let pts: Vec<(f64, f64)> = s.points.iter().map(|&(x, y)| (sx(x), sy(y))).collect();
        c.polyline(&pts, color, 1.5);
        for &(px, py) in &pts {
            c.circle(px, py, 2.5, color);
        }
        // legend entry
        let ly = margin + 14.0 * si as f64;
        c.rect(width - margin - 150.0, ly - 8.0, 10.0, 10.0, color);
        c.text(width - margin - 136.0, ly, 10.0, Rgba::BLACK, &s.label);
    }
    let constants = data.constants_line();
    if !constants.is_empty() {
        c.text(margin, 14.0, 9.0, Rgba::new(80, 80, 80, 255), &constants);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Series;

    fn dataset() -> Dataset {
        Dataset {
            x_col: "threads".into(),
            y_label: "speedup".into(),
            constants: vec![("kernel".into(), "mandel".into())],
            series: vec![
                Series {
                    label: "schedule=static".into(),
                    points: vec![(2.0, 1.8), (4.0, 2.5), (8.0, 3.0)],
                },
                Series {
                    label: "schedule=dynamic".into(),
                    points: vec![(2.0, 1.9), (4.0, 3.7), (8.0, 6.8)],
                },
            ],
        }
    }

    #[test]
    fn ascii_contains_axes_legend_and_constants() {
        let art = render_ascii(&dataset(), 40, 10);
        assert!(art.contains("legend:"));
        assert!(art.contains("schedule=static"));
        assert!(art.contains("schedule=dynamic"));
        assert!(art.contains("Parameters : kernel=mandel"));
        assert!(art.contains("threads -> speedup"));
        // both series characters appear
        assert!(art.contains('*') && art.contains('o'));
    }

    #[test]
    fn ascii_empty_dataset() {
        let d = Dataset {
            x_col: "x".into(),
            y_label: "y".into(),
            constants: vec![],
            series: vec![],
        };
        assert_eq!(render_ascii(&d, 40, 10), "empty dataset\n");
    }

    #[test]
    fn svg_has_lines_points_and_legend() {
        let svg = render_svg(&dataset(), 500.0, 300.0);
        assert!(svg.contains("<svg"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("schedule=dynamic"));
        assert!(svg.contains("kernel=mandel"));
    }

    #[test]
    fn svg_empty_dataset_degrades_gracefully() {
        let d = Dataset {
            x_col: "x".into(),
            y_label: "y".into(),
            constants: vec![],
            series: vec![],
        };
        assert!(render_svg(&d, 300.0, 200.0).contains("empty dataset"));
    }

    #[test]
    fn single_point_series_renders() {
        let d = Dataset {
            x_col: "threads".into(),
            y_label: "time".into(),
            constants: vec![],
            series: vec![Series {
                label: "only".into(),
                points: vec![(1.0, 5.0)],
            }],
        };
        // degenerate spans must not divide by zero
        let art = render_ascii(&d, 20, 8);
        assert!(art.contains('*'));
        let svg = render_svg(&d, 200.0, 150.0);
        assert!(svg.contains("<circle"));
    }
}
