//! # ezp-plot — the `easyplot` companion (paper §II-C, Fig. 6)
//!
//! EASYPAP's performance mode appends every run to a CSV file;
//! `easyplot` then filters the data and draws speedup graphs. Its "key
//! feature is that the legend is automatically generated from the data.
//! Once data have been filtered, constant parameters are put aside, and
//! the names of plotlines are set using the remaining ones. This
//! guarantees that experiments conducted in different conditions will
//! not silently be incorporated in the same graph."
//!
//! [`dataset`] implements exactly that contract (constant-parameter
//! factoring, auto legends, run averaging, speedup transformation);
//! [`chart`] renders the result as ASCII for terminals and SVG for
//! reports.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod chart;
pub mod dataset;
pub mod histogram;

pub use chart::{render_ascii, render_svg};
pub use dataset::{Dataset, Series};
pub use histogram::{bars_from_table, render_bars_ascii, render_bars_svg, Bar};
