//! Turning performance CSVs into plottable series with auto legends.

use ezp_core::csv::CsvTable;
use ezp_core::error::{Error, Result};
use std::collections::BTreeMap;

/// One plotline: a legend label and `(x, y)` points sorted by x.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Auto-generated legend label, e.g. `schedule=dynamic,2`.
    pub label: String,
    /// Points, x ascending. Repeated runs are already averaged.
    pub points: Vec<(f64, f64)>,
}

/// A plottable dataset extracted from a CSV table.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The x column name (e.g. `threads`).
    pub x_col: String,
    /// The y axis label (e.g. `time_us` or `speedup`).
    pub y_label: String,
    /// Constant parameters factored out of the legend:
    /// "parameters with unique value are listed above the graph".
    pub constants: Vec<(String, String)>,
    /// One series per distinct combination of the varying parameters.
    pub series: Vec<Series>,
}

impl Dataset {
    /// Builds a dataset from `table`, plotting `y_col` against `x_col`.
    ///
    /// Every *other* column that still varies after filtering becomes a
    /// legend dimension; columns with a single distinct value go to
    /// [`Dataset::constants`]. The `ignore` list names columns that are
    /// neither (e.g. `run`, whose values are averaged away).
    pub fn from_table(table: &CsvTable, x_col: &str, y_col: &str, ignore: &[&str]) -> Result<Self> {
        let xi = table
            .col(x_col)
            .ok_or_else(|| Error::Config(format!("no column `{x_col}` in CSV")))?;
        let yi = table
            .col(y_col)
            .ok_or_else(|| Error::Config(format!("no column `{y_col}` in CSV")))?;
        if table.is_empty() {
            return Err(Error::Config("empty dataset".into()));
        }
        // classify the remaining columns: constant vs legend
        let mut constants = Vec::new();
        let mut legend_cols = Vec::new();
        for (ci, name) in table.header.iter().enumerate() {
            if ci == xi || ci == yi || ignore.contains(&name.as_str()) {
                continue;
            }
            let mut values: Vec<&str> = table.rows.iter().map(|r| r[ci].as_str()).collect();
            values.sort_unstable();
            values.dedup();
            match values.len() {
                1 => constants.push((name.clone(), values[0].to_string())),
                _ => legend_cols.push(ci),
            }
        }
        // group rows by legend key, then by x; average y over the group
        let mut groups: BTreeMap<String, BTreeMap<u64, (f64, usize)>> = BTreeMap::new();
        for row in &table.rows {
            let label = if legend_cols.is_empty() {
                y_col.to_string()
            } else {
                legend_cols
                    .iter()
                    .map(|&ci| format!("{}={}", table.header[ci], row[ci]))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let x: f64 = row[xi]
                .parse()
                .map_err(|_| Error::Config(format!("non-numeric x value `{}`", row[xi])))?;
            let y: f64 = row[yi]
                .parse()
                .map_err(|_| Error::Config(format!("non-numeric y value `{}`", row[yi])))?;
            let slot = groups
                .entry(label)
                .or_default()
                .entry(x.to_bits())
                .or_insert((0.0, 0));
            slot.0 += y;
            slot.1 += 1;
        }
        let series = groups
            .into_iter()
            .map(|(label, pts)| {
                let mut points: Vec<(f64, f64)> = pts
                    .into_iter()
                    .map(|(xb, (sum, n))| (f64::from_bits(xb), sum / n as f64))
                    .collect();
                points.sort_by(|a, b| a.0.total_cmp(&b.0));
                Series { label, points }
            })
            .collect();
        Ok(Dataset {
            x_col: x_col.to_string(),
            y_label: y_col.to_string(),
            constants,
            series,
        })
    }

    /// Transforms times into speedups: `y := ref_time / y` (like
    /// `easyplot --speedup` with `refTime`). Updates the y label and
    /// records the reference among the constants.
    pub fn into_speedup(mut self, ref_time: f64) -> Self {
        for s in &mut self.series {
            for p in &mut s.points {
                p.1 = if p.1 > 0.0 { ref_time / p.1 } else { 0.0 };
            }
        }
        self.y_label = "speedup".to_string();
        self.constants.push(("refTime".to_string(), format!("{ref_time}")));
        self
    }

    /// The headline above the graph: the factored-out constants
    /// (`Parameters : machine=... dim=... kernel=...` in Fig. 6).
    pub fn constants_line(&self) -> String {
        if self.constants.is_empty() {
            return String::new();
        }
        let parts: Vec<String> = self
            .constants
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("Parameters : {}", parts.join(" "))
    }

    /// Extremes over all points, `((xmin, xmax), (ymin, ymax))`.
    pub fn bounds(&self) -> Option<((f64, f64), (f64, f64))> {
        let mut it = self.series.iter().flat_map(|s| s.points.iter().copied());
        let first = it.next()?;
        let mut b = ((first.0, first.0), (first.1, first.1));
        for (x, y) in it {
            b.0 .0 = b.0 .0.min(x);
            b.0 .1 = b.0 .1.max(x);
            b.1 .0 = b.1 .0.min(y);
            b.1 .1 = b.1 .1.max(y);
        }
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CsvTable {
        let mut t = CsvTable::new(vec![
            "kernel", "dim", "schedule", "threads", "time_us", "run",
        ]);
        // two schedules x two thread counts x two runs, constant kernel/dim
        for (sched, threads, time, run) in [
            ("static", "2", "100", "0"),
            ("static", "2", "110", "1"),
            ("static", "4", "60", "0"),
            ("static", "4", "70", "1"),
            ("dynamic", "2", "90", "0"),
            ("dynamic", "2", "80", "1"),
            ("dynamic", "4", "40", "0"),
            ("dynamic", "4", "50", "1"),
        ] {
            t.push_row(vec!["mandel", "1024", sched, threads, time, run]).unwrap();
        }
        t
    }

    #[test]
    fn constants_are_factored_out() {
        let d = Dataset::from_table(&table(), "threads", "time_us", &["run"]).unwrap();
        assert_eq!(
            d.constants,
            vec![
                ("kernel".to_string(), "mandel".to_string()),
                ("dim".to_string(), "1024".to_string())
            ]
        );
        assert!(d.constants_line().contains("kernel=mandel"));
        assert!(d.constants_line().contains("dim=1024"));
    }

    #[test]
    fn legend_from_varying_columns_only() {
        let d = Dataset::from_table(&table(), "threads", "time_us", &["run"]).unwrap();
        let labels: Vec<&str> = d.series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["schedule=dynamic", "schedule=static"]);
    }

    #[test]
    fn runs_are_averaged() {
        let d = Dataset::from_table(&table(), "threads", "time_us", &["run"]).unwrap();
        let stat = d.series.iter().find(|s| s.label.contains("static")).unwrap();
        assert_eq!(stat.points, vec![(2.0, 105.0), (4.0, 65.0)]);
        let dynamic = d.series.iter().find(|s| s.label.contains("dynamic")).unwrap();
        assert_eq!(dynamic.points, vec![(2.0, 85.0), (4.0, 45.0)]);
    }

    #[test]
    fn speedup_transform() {
        let d = Dataset::from_table(&table(), "threads", "time_us", &["run"]).unwrap();
        let s = d.into_speedup(210.0);
        assert_eq!(s.y_label, "speedup");
        let stat = s.series.iter().find(|s| s.label.contains("static")).unwrap();
        assert!((stat.points[0].1 - 2.0).abs() < 1e-9); // 210/105
        assert!(s.constants_line().contains("refTime=210"));
    }

    #[test]
    fn mixed_experiments_cannot_merge_silently() {
        // add rows with a second kernel: `kernel` moves from the
        // constants into the legend, making the mixing visible
        let mut t = table();
        t.push_row(vec!["blur", "1024", "static", "2", "500", "0"]).unwrap();
        let d = Dataset::from_table(&t, "threads", "time_us", &["run"]).unwrap();
        assert!(d.constants.iter().all(|(k, _)| k != "kernel"));
        assert!(d.series.iter().any(|s| s.label.contains("kernel=blur")));
    }

    #[test]
    fn missing_column_and_bad_values_error() {
        assert!(Dataset::from_table(&table(), "nope", "time_us", &[]).is_err());
        assert!(Dataset::from_table(&table(), "threads", "kernel", &["run"]).is_err());
        let empty = CsvTable::new(vec!["threads", "time_us"]);
        assert!(Dataset::from_table(&empty, "threads", "time_us", &[]).is_err());
    }

    #[test]
    fn bounds_cover_all_points() {
        let d = Dataset::from_table(&table(), "threads", "time_us", &["run"]).unwrap();
        let ((x0, x1), (y0, y1)) = d.bounds().unwrap();
        assert_eq!((x0, x1), (2.0, 4.0));
        assert_eq!((y0, y1), (45.0, 105.0));
    }
}
