//! # ezp-trace — post-mortem execution traces (paper §II-D)
//!
//! With `--trace`, EASYPAP records "tile-related profiling events at
//! execution time (i.e. start/end time, tile coordinates, cpu) into a
//! trace file" that EASYVIEW later explores. This crate owns that file
//! format and its in-memory model:
//!
//! * [`varint`] — LEB128 variable-length integers, the building block of
//!   the compact binary encoding;
//! * [`Trace`] — metadata + iteration spans + task events;
//! * [`io`] — the versioned binary `.ezv` reader/writer plus a JSON
//!   export for interoperability;
//! * [`Trace::from_report`] — bridging from a live
//!   [`ezp_monitor::MonitorReport`] to a persistent trace.
//!
//! The analysis/visualization layer (Gantt charts, coverage maps, trace
//! comparison) lives in `ezp-view`.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod chrome;
pub mod io;
pub mod merge;
pub mod model;
pub mod varint;

pub use chrome::to_chrome;
pub use merge::merge_ranks;
pub use model::{Trace, TraceMeta};
