//! The in-memory trace model.

use ezp_core::error::{Error, Result};
use ezp_core::json::{FromJson, Json, ToJson};
use ezp_core::{RunConfig, TileGrid};
use ezp_monitor::report::IterationSpan;
use ezp_monitor::{DepEdge, MonitorReport, TileRecord};
use ezp_perf::CounterSnapshot;

/// Run metadata carried in the trace header, so that EASYVIEW can label
/// windows and rebuild the tile grid without the original command line.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceMeta {
    /// Kernel name (`--kernel`).
    pub kernel: String,
    /// Variant name (`--variant`).
    pub variant: String,
    /// Image dimension (`--size`).
    pub dim: usize,
    /// Tile edge (`--tile-size`).
    pub tile_size: usize,
    /// Worker count.
    pub threads: usize,
    /// Scheduling policy, canonical `OMP_SCHEDULE` spelling.
    pub schedule: String,
    /// Free-form label (used by trace comparison to name the two runs).
    pub label: String,
}

impl TraceMeta {
    /// Extracts the metadata from a run configuration.
    pub fn from_config(cfg: &RunConfig) -> Self {
        TraceMeta {
            kernel: cfg.kernel.clone(),
            variant: cfg.variant.clone(),
            dim: cfg.dim,
            tile_size: cfg.tile_size,
            threads: cfg.threads,
            schedule: cfg.schedule.as_omp_str(),
            label: format!("{}/{}", cfg.kernel, cfg.variant),
        }
    }

    /// The tile grid of the traced run.
    pub fn grid(&self) -> Result<TileGrid> {
        TileGrid::square(self.dim, self.tile_size)
    }
}

impl ToJson for TraceMeta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("kernel", self.kernel.to_json()),
            ("variant", self.variant.to_json()),
            ("dim", self.dim.to_json()),
            ("tile_size", self.tile_size.to_json()),
            ("threads", self.threads.to_json()),
            ("schedule", self.schedule.to_json()),
            ("label", self.label.to_json()),
        ])
    }
}

impl FromJson for TraceMeta {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(TraceMeta {
            kernel: v.field("kernel")?,
            variant: v.field("variant")?,
            dim: v.field("dim")?,
            tile_size: v.field("tile_size")?,
            threads: v.field("threads")?,
            schedule: v.field("schedule")?,
            label: v.field("label")?,
        })
    }
}

/// A complete recorded execution: metadata, iteration spans and task
/// events — everything EASYVIEW needs (§II-D).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Header metadata.
    pub meta: TraceMeta,
    /// Iteration spans, chronological.
    pub iterations: Vec<IterationSpan>,
    /// Task (tile) events sorted by `(iteration, start_ns)`.
    pub tasks: Vec<TileRecord>,
    /// Dependency edges between task ids (format v2; empty for v1
    /// traces and loop-scheduled runs, which have no explicit graph).
    pub edges: Vec<DepEdge>,
    /// Runtime counters recorded alongside the run (format v2; `None`
    /// for v1 traces and merged multi-rank traces).
    pub counters: Option<CounterSnapshot>,
}

impl Trace {
    /// Builds a trace from a live monitoring report.
    pub fn from_report(meta: TraceMeta, report: &MonitorReport) -> Self {
        Trace {
            meta,
            iterations: report.iterations.clone(),
            tasks: report.records.clone(),
            edges: report.edges.clone(),
            counters: None,
        }
    }

    /// The same trace carrying a runtime-counter snapshot (builder
    /// style, so `from_report` keeps its signature).
    pub fn with_counters(mut self, counters: CounterSnapshot) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Re-materializes a [`MonitorReport`] (the analysis entry point) so
    /// that every monitor-side analysis also works post mortem.
    pub fn to_report(&self) -> Result<MonitorReport> {
        Ok(MonitorReport::new(
            self.meta.threads,
            self.meta.grid()?,
            self.iterations.clone(),
            self.tasks.clone(),
        )
        .with_edges(self.edges.clone()))
    }

    /// Number of recorded iterations.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Total wall-clock span `(first start, last end)` over all events.
    pub fn time_bounds(&self) -> Option<(u64, u64)> {
        let start = self
            .iterations
            .iter()
            .map(|s| s.start_ns)
            .chain(self.tasks.iter().map(|t| t.start_ns))
            .min()?;
        let end = self
            .iterations
            .iter()
            .map(|s| s.end_ns)
            .filter(|&e| e != u64::MAX)
            .chain(self.tasks.iter().map(|t| t.end_ns))
            .max()?;
        Some((start, end))
    }

    /// Tasks of iteration `it`.
    pub fn tasks_of_iteration(&self, it: u32) -> impl Iterator<Item = &TileRecord> {
        self.tasks.iter().filter(move |t| t.iteration == it)
    }

    /// Tasks executed by `worker` in iteration range `[lo, hi]`
    /// (inclusive) — the data behind EASYVIEW's per-CPU timeline.
    pub fn tasks_of_worker(
        &self,
        worker: usize,
        lo: u32,
        hi: u32,
    ) -> impl Iterator<Item = &TileRecord> {
        self.tasks
            .iter()
            .filter(move |t| t.worker == worker && (lo..=hi).contains(&t.iteration))
    }

    /// Validates internal consistency: iteration numbers exist, tasks
    /// are sorted, timestamps ordered, workers in range. `io::read`
    /// calls this so corrupt files fail loudly.
    pub fn validate(&self) -> Result<()> {
        for t in &self.tasks {
            if t.end_ns < t.start_ns {
                return Err(Error::TraceFormat(format!(
                    "task at ({},{}) ends before it starts",
                    t.x, t.y
                )));
            }
            if t.worker >= self.meta.threads {
                return Err(Error::TraceFormat(format!(
                    "task worker {} out of range (threads={})",
                    t.worker, self.meta.threads
                )));
            }
        }
        for w in self.tasks.windows(2) {
            if (w[1].iteration, w[1].start_ns) < (w[0].iteration, w[0].start_ns) {
                return Err(Error::TraceFormat("tasks are not sorted".into()));
            }
        }
        for s in self.iterations.windows(2) {
            if s[1].iteration <= s[0].iteration {
                return Err(Error::TraceFormat("iteration spans are not sorted".into()));
            }
        }
        for e in &self.edges {
            if e.edge_kind().is_none() {
                return Err(Error::TraceFormat(format!(
                    "edge {} -> {} has unknown kind {}",
                    e.from, e.to, e.kind
                )));
            }
            if e.from == e.to {
                return Err(Error::TraceFormat(format!(
                    "edge {} -> {} is a self-loop",
                    e.from, e.to
                )));
            }
        }
        Ok(())
    }
}

impl ToJson for Trace {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("meta", self.meta.to_json()),
            ("iterations", self.iterations.to_json()),
            ("tasks", self.tasks.to_json()),
        ];
        // v2 sections stay out of the JSON when absent, so v1 JSON
        // dumps keep byte-for-byte compatibility.
        if !self.edges.is_empty() {
            pairs.push(("edges", self.edges.to_json()));
        }
        if let Some(c) = &self.counters {
            pairs.push(("counters", c.to_json()));
        }
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl FromJson for Trace {
    fn from_json(v: &Json) -> Result<Self> {
        Ok(Trace {
            meta: v.field("meta")?,
            iterations: v.field("iterations")?,
            tasks: v.field("tasks")?,
            edges: match v.get("edges") {
                Some(e) => FromJson::from_json(e)?,
                None => Vec::new(),
            },
            counters: match v.get("counters") {
                Some(c) => Some(FromJson::from_json(c)?),
                None => None,
            },
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ezp_core::kernel::EdgeKind;

    pub(crate) fn sample_trace() -> Trace {
        let meta = TraceMeta {
            kernel: "mandel".into(),
            variant: "omp_tiled".into(),
            dim: 64,
            tile_size: 16,
            threads: 2,
            schedule: "dynamic".into(),
            label: "mandel/omp_tiled".into(),
        };
        let mk = |it, x, y, s, e, w| TileRecord {
            iteration: it,
            x,
            y,
            w: 16,
            h: 16,
            start_ns: s,
            end_ns: e,
            worker: w,
        };
        Trace {
            meta,
            iterations: vec![
                IterationSpan {
                    iteration: 1,
                    start_ns: 0,
                    end_ns: 100,
                },
                IterationSpan {
                    iteration: 2,
                    start_ns: 100,
                    end_ns: 220,
                },
            ],
            tasks: vec![
                mk(1, 0, 0, 5, 50, 0),
                mk(1, 16, 0, 6, 40, 1),
                mk(2, 0, 16, 105, 190, 0),
                mk(2, 16, 16, 110, 215, 1),
            ],
            edges: vec![
                DepEdge {
                    from: 0,
                    to: 4,
                    kind: EdgeKind::Data.as_u8(),
                },
                DepEdge {
                    from: 1,
                    to: 5,
                    kind: EdgeKind::Width.as_u8(),
                },
            ],
            counters: None,
        }
    }

    #[test]
    fn meta_from_config() {
        let cfg = RunConfig::new("mandel")
            .variant("omp")
            .size(256)
            .tile(32)
            .threads(4);
        let meta = TraceMeta::from_config(&cfg);
        assert_eq!(meta.kernel, "mandel");
        assert_eq!(meta.dim, 256);
        assert_eq!(meta.grid().unwrap().len(), 64);
        assert_eq!(meta.label, "mandel/omp");
    }

    #[test]
    fn trace_queries() {
        let t = sample_trace();
        assert_eq!(t.iteration_count(), 2);
        assert_eq!(t.tasks_of_iteration(1).count(), 2);
        assert_eq!(t.tasks_of_worker(0, 1, 2).count(), 2);
        assert_eq!(t.tasks_of_worker(1, 2, 2).count(), 1);
        assert_eq!(t.time_bounds(), Some((0, 220)));
    }

    #[test]
    fn report_round_trip() {
        let t = sample_trace();
        let report = t.to_report().unwrap();
        assert_eq!(report.records.len(), 4);
        let stats = report.iteration_stats(1).unwrap();
        assert_eq!(stats.busy_ns, vec![45, 34]);
    }

    #[test]
    fn validate_catches_corruption() {
        let good = sample_trace();
        assert!(good.validate().is_ok());

        let mut bad = sample_trace();
        bad.tasks[0].end_ns = 0;
        bad.tasks[0].start_ns = 10;
        assert!(bad.validate().is_err());

        let mut bad = sample_trace();
        bad.tasks[0].worker = 9;
        assert!(bad.validate().is_err());

        let mut bad = sample_trace();
        bad.tasks.swap(0, 3);
        assert!(bad.validate().is_err());

        let mut bad = sample_trace();
        bad.iterations.swap(0, 1);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_edges() {
        let mut bad = sample_trace();
        bad.edges[0].kind = 7;
        assert!(bad.validate().is_err());

        let mut bad = sample_trace();
        bad.edges[0].to = bad.edges[0].from;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn edges_survive_the_report_round_trip() {
        let t = sample_trace();
        let report = t.to_report().unwrap();
        assert_eq!(report.edges, t.edges);
        let back = Trace::from_report(t.meta.clone(), &report);
        assert_eq!(back.edges, t.edges);
    }

    #[test]
    fn v1_json_without_edges_or_counters_still_parses() {
        // a v1 producer never wrote "edges"/"counters"; reading its JSON
        // must yield an empty edge list and no counters
        let mut t = sample_trace();
        t.edges.clear();
        let dump = t.to_json().dump();
        assert!(!dump.contains("\"edges\""));
        assert!(!dump.contains("\"counters\""));
        let back = Trace::from_json(&Json::parse(&dump).unwrap()).unwrap();
        assert!(back.edges.is_empty());
        assert!(back.counters.is_none());
    }

    #[test]
    fn counters_ride_along_in_json() {
        let mut set = ezp_perf::CounterSet::new(1);
        let id = set.register("tasks_executed");
        set.add(id, 0, 7);
        let t = sample_trace().with_counters(set.snapshot());
        let dump = t.to_json().dump();
        let back = Trace::from_json(&Json::parse(&dump).unwrap()).unwrap();
        assert_eq!(back.counters.unwrap().total("tasks_executed"), 7);
        assert_eq!(back.edges, t.edges);
    }

    #[test]
    fn empty_trace_has_no_bounds() {
        let mut t = sample_trace();
        t.tasks.clear();
        t.iterations.clear();
        assert!(t.time_bounds().is_none());
        assert!(t.validate().is_ok());
    }
}
