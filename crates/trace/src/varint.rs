//! LEB128 variable-length integer encoding.
//!
//! Trace files hold millions of timestamps and small coordinates, so the
//! binary format stores every integer as an unsigned LEB128 varint:
//! 7 payload bits per byte, high bit = continuation. Timestamps are
//! additionally delta-encoded by the caller, which keeps most values in
//! one or two bytes.
//!
//! Readers take `&mut &[u8]` and advance the slice past what they consume,
//! so sequential decoding is just repeated calls on the same cursor.

use ezp_core::error::{Error, Result};

/// Maximum encoded size of a `u64` varint.
pub const MAX_LEN: usize = 10;

/// Appends `value` to `out` as LEB128.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 `u64` from the front of `buf`, advancing it.
///
/// Fails on truncated input and on encodings longer than [`MAX_LEN`]
/// bytes (which cannot come from [`write_u64`]).
pub fn read_u64(buf: &mut &[u8]) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for _ in 0..MAX_LEN {
        let Some((&byte, rest)) = buf.split_first() else {
            return Err(Error::TraceFormat("truncated varint".into()));
        };
        *buf = rest;
        let payload = (byte & 0x7f) as u64;
        if shift == 63 && payload > 1 {
            return Err(Error::TraceFormat("varint overflows u64".into()));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(Error::TraceFormat("varint longer than 10 bytes".into()))
}

/// Convenience: `write_u64` for `usize`.
pub fn write_usize(out: &mut Vec<u8>, value: usize) {
    write_u64(out, value as u64);
}

/// Convenience: `read_u64` narrowed to `usize`.
pub fn read_usize(buf: &mut &[u8]) -> Result<usize> {
    let v = read_u64(buf)?;
    usize::try_from(v).map_err(|_| Error::TraceFormat(format!("value {v} exceeds usize")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::{any_u64, vec_of};

    fn round_trip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut slice = buf.as_slice();
        let got = read_u64(&mut slice).unwrap();
        assert!(slice.is_empty(), "trailing bytes after decoding {v}");
        got
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
            assert_eq!(round_trip(v), v);
        }
    }

    #[test]
    fn boundaries() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            assert_eq!(round_trip(v), v);
        }
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), MAX_LEN);
    }

    #[test]
    fn truncated_input_fails() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        let mut short = &buf[..1];
        assert!(read_u64(&mut short).is_err());
        let mut empty: &[u8] = &[];
        assert!(read_u64(&mut empty).is_err());
    }

    #[test]
    fn overlong_encoding_rejected() {
        let bad = [0x80u8; 11];
        let mut slice = &bad[..];
        assert!(read_u64(&mut slice).is_err());
        // 10 bytes but bits beyond u64
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x7f);
        let mut slice = overflow.as_slice();
        assert!(read_u64(&mut slice).is_err());
    }

    #[test]
    fn usize_round_trip() {
        let mut buf = Vec::new();
        write_usize(&mut buf, 123_456);
        let mut slice = buf.as_slice();
        assert_eq!(read_usize(&mut slice).unwrap(), 123_456);
    }

    ezp_proptest! {
        fn prop_round_trip(v in any_u64()) {
            assert_eq!(round_trip(v), v);
        }

        fn prop_streams_concatenate(values in vec_of(any_u64(), 0..64)) {
            let mut buf = Vec::new();
            for &v in &values {
                write_u64(&mut buf, v);
            }
            let mut slice = buf.as_slice();
            for &v in &values {
                assert_eq!(read_u64(&mut slice).unwrap(), v);
            }
            assert!(slice.is_empty());
        }
    }
}
