//! The `.ezv` binary trace format, plus JSON export.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic   b"EZV\x02"                       (4 raw bytes; \x01 accepted)
//! meta    varint length + JSON bytes        (TraceMeta)
//! iters   varint count, then per span:      iteration, start, end-start
//! tasks   varint count, then per task:
//!           iteration, x, y, w, h, worker,
//!           start delta (vs previous task start), duration
//! edges   varint count, then per edge:      from, to, kind     (v2 only)
//! ctrs    presence flag (0/1), then varint
//!           length + CounterSnapshot JSON                      (v2 only)
//! ```
//!
//! Task starts are sorted, so delta-encoding keeps them tiny; `end` is
//! stored as a duration for the same reason. A still-open iteration span
//! (`end == u64::MAX`) is preserved via a 0/1 flag.
//!
//! Version 2 appends dependency edges and a runtime-counter snapshot.
//! The reader accepts v1 files (yielding no edges and no counters); the
//! writer always emits v2. Unknown versions are rejected loudly rather
//! than misparsed.

use crate::model::{Trace, TraceMeta};
use crate::varint::{read_u64, read_usize, write_u64, write_usize};
use ezp_core::error::{Error, Result};
use ezp_core::json::{FromJson, Json, ToJson};
use ezp_monitor::report::IterationSpan;
use ezp_monitor::{DepEdge, TileRecord};
use ezp_perf::CounterSnapshot;
use std::path::Path;

const MAGIC_V1: &[u8; 4] = b"EZV\x01";
const MAGIC_V2: &[u8; 4] = b"EZV\x02";

/// Serializes a trace to `.ezv` bytes.
pub fn to_bytes(trace: &Trace) -> Result<Vec<u8>> {
    trace.validate()?;
    let mut out = Vec::with_capacity(64 + trace.tasks.len() * 8);
    out.extend_from_slice(MAGIC_V2);

    let meta = trace.meta.to_json().dump().into_bytes();
    write_usize(&mut out, meta.len());
    out.extend_from_slice(&meta);

    write_usize(&mut out, trace.iterations.len());
    for s in &trace.iterations {
        write_u64(&mut out, s.iteration as u64);
        write_u64(&mut out, s.start_ns);
        if s.end_ns == u64::MAX {
            write_u64(&mut out, 0); // open
        } else {
            write_u64(&mut out, 1); // closed
            write_u64(&mut out, s.end_ns - s.start_ns);
        }
    }

    write_usize(&mut out, trace.tasks.len());
    let mut prev_start = 0u64;
    for t in &trace.tasks {
        write_u64(&mut out, t.iteration as u64);
        write_usize(&mut out, t.x);
        write_usize(&mut out, t.y);
        write_usize(&mut out, t.w);
        write_usize(&mut out, t.h);
        write_usize(&mut out, t.worker);
        // starts are non-decreasing within an iteration but may step back
        // across iterations; encode a sign flag + magnitude
        let (sign, delta) = if t.start_ns >= prev_start {
            (0u64, t.start_ns - prev_start)
        } else {
            (1u64, prev_start - t.start_ns)
        };
        write_u64(&mut out, sign);
        write_u64(&mut out, delta);
        write_u64(&mut out, t.end_ns - t.start_ns);
        prev_start = t.start_ns;
    }

    write_usize(&mut out, trace.edges.len());
    for e in &trace.edges {
        write_usize(&mut out, e.from);
        write_usize(&mut out, e.to);
        write_u64(&mut out, e.kind as u64);
    }

    match &trace.counters {
        None => write_u64(&mut out, 0),
        Some(c) => {
            write_u64(&mut out, 1);
            let json = c.to_json().dump().into_bytes();
            write_usize(&mut out, json.len());
            out.extend_from_slice(&json);
        }
    }
    Ok(out)
}

/// Parses `.ezv` bytes back into a trace (validated).
pub fn from_bytes(bytes: &[u8]) -> Result<Trace> {
    let mut buf = bytes;
    if buf.len() < 4 || &buf[..3] != b"EZV" {
        return Err(Error::TraceFormat("bad magic (not an .ezv trace)".into()));
    }
    let version = buf[3];
    if &buf[..4] != MAGIC_V1 && &buf[..4] != MAGIC_V2 {
        return Err(Error::TraceFormat(format!(
            "unsupported .ezv version {version} (this build reads v1 and v2)"
        )));
    }
    buf = &buf[4..];

    let meta_len = read_usize(&mut buf)?;
    if buf.len() < meta_len {
        return Err(Error::TraceFormat("truncated metadata".into()));
    }
    let meta_text = std::str::from_utf8(&buf[..meta_len])
        .map_err(|e| Error::TraceFormat(format!("metadata is not UTF-8: {e}")))?;
    let meta = Json::parse(meta_text)
        .and_then(|v| TraceMeta::from_json(&v))
        .map_err(|e| Error::TraceFormat(format!("bad metadata JSON: {e}")))?;
    buf = &buf[meta_len..];

    let iter_count = read_usize(&mut buf)?;
    let mut iterations = Vec::with_capacity(iter_count.min(1 << 20));
    for _ in 0..iter_count {
        let iteration = read_u64(&mut buf)? as u32;
        let start_ns = read_u64(&mut buf)?;
        let end_ns = match read_u64(&mut buf)? {
            0 => u64::MAX,
            1 => start_ns + read_u64(&mut buf)?,
            other => {
                return Err(Error::TraceFormat(format!("bad span flag {other}")));
            }
        };
        iterations.push(IterationSpan {
            iteration,
            start_ns,
            end_ns,
        });
    }

    let task_count = read_usize(&mut buf)?;
    let mut tasks = Vec::with_capacity(task_count.min(1 << 20));
    let mut prev_start = 0u64;
    for _ in 0..task_count {
        let iteration = read_u64(&mut buf)? as u32;
        let x = read_usize(&mut buf)?;
        let y = read_usize(&mut buf)?;
        let w = read_usize(&mut buf)?;
        let h = read_usize(&mut buf)?;
        let worker = read_usize(&mut buf)?;
        let sign = read_u64(&mut buf)?;
        let delta = read_u64(&mut buf)?;
        let start_ns = match sign {
            0 => prev_start + delta,
            1 => prev_start.checked_sub(delta).ok_or_else(|| {
                Error::TraceFormat("negative timestamp after delta decoding".into())
            })?,
            other => return Err(Error::TraceFormat(format!("bad delta sign {other}"))),
        };
        let end_ns = start_ns + read_u64(&mut buf)?;
        prev_start = start_ns;
        tasks.push(TileRecord {
            iteration,
            x,
            y,
            w,
            h,
            start_ns,
            end_ns,
            worker,
        });
    }
    let mut edges = Vec::new();
    let mut counters = None;
    if version >= 2 {
        let edge_count = read_usize(&mut buf)?;
        edges.reserve(edge_count.min(1 << 20));
        for _ in 0..edge_count {
            let from = read_usize(&mut buf)?;
            let to = read_usize(&mut buf)?;
            let kind = read_u64(&mut buf)?;
            if kind > u8::MAX as u64 {
                return Err(Error::TraceFormat(format!("bad edge kind {kind}")));
            }
            edges.push(DepEdge {
                from,
                to,
                kind: kind as u8,
            });
        }
        match read_u64(&mut buf)? {
            0 => {}
            1 => {
                let len = read_usize(&mut buf)?;
                if buf.len() < len {
                    return Err(Error::TraceFormat("truncated counter snapshot".into()));
                }
                let text = std::str::from_utf8(&buf[..len]).map_err(|e| {
                    Error::TraceFormat(format!("counter snapshot is not UTF-8: {e}"))
                })?;
                let snap = Json::parse(text)
                    .and_then(|v| CounterSnapshot::from_json(&v))
                    .map_err(|e| Error::TraceFormat(format!("bad counter JSON: {e}")))?;
                buf = &buf[len..];
                counters = Some(snap);
            }
            other => {
                return Err(Error::TraceFormat(format!("bad counter flag {other}")));
            }
        }
    }
    if !buf.is_empty() {
        return Err(Error::TraceFormat(format!(
            "{} trailing bytes after trace",
            buf.len()
        )));
    }
    let trace = Trace {
        meta,
        iterations,
        tasks,
        edges,
        counters,
    };
    trace.validate()?;
    Ok(trace)
}

/// Writes a trace to `path` in binary `.ezv` form.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, to_bytes(trace)?)?;
    Ok(())
}

/// Loads a binary `.ezv` trace from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Trace> {
    from_bytes(&std::fs::read(path)?)
}

/// Exports a trace as pretty JSON (for external tooling / debugging).
pub fn to_json(trace: &Trace) -> Result<String> {
    Ok(trace.to_json().pretty())
}

/// Imports a trace from its JSON export.
pub fn from_json(json: &str) -> Result<Trace> {
    let value = Json::parse(json).map_err(|e| Error::TraceFormat(format!("bad JSON: {e}")))?;
    let trace = Trace::from_json(&value)
        .map_err(|e| Error::TraceFormat(format!("bad trace JSON: {e}")))?;
    trace.validate()?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_testkit::ezp_proptest;
    use ezp_testkit::prop::any_u64;

    fn sample() -> Trace {
        let meta = TraceMeta {
            kernel: "mandel".into(),
            variant: "omp_tiled".into(),
            dim: 64,
            tile_size: 16,
            threads: 3,
            schedule: "dynamic,2".into(),
            label: "run A".into(),
        };
        let mk = |it, x, y, s, e, w| TileRecord {
            iteration: it,
            x,
            y,
            w: 16,
            h: 16,
            start_ns: s,
            end_ns: e,
            worker: w,
        };
        Trace {
            meta,
            iterations: vec![
                IterationSpan {
                    iteration: 1,
                    start_ns: 10,
                    end_ns: 500,
                },
                IterationSpan {
                    iteration: 2,
                    start_ns: 500,
                    end_ns: u64::MAX, // still open
                },
            ],
            tasks: vec![
                mk(1, 0, 0, 12, 120, 0),
                mk(1, 16, 0, 15, 100, 1),
                mk(1, 32, 0, 18, 300, 2),
                mk(2, 0, 16, 505, 800, 1),
                mk(2, 16, 16, 510, 620, 0),
            ],
            edges: vec![
                DepEdge {
                    from: 0,
                    to: 1,
                    kind: 0,
                },
                DepEdge {
                    from: 1,
                    to: 2,
                    kind: 1,
                },
                DepEdge {
                    from: 0,
                    to: 4,
                    kind: 2,
                },
            ],
            counters: Some({
                let mut set = ezp_perf::CounterSet::new(3);
                let c = set.register("tasks_executed");
                for w in 0..3 {
                    set.add(c, w, 1 + w as u64);
                }
                set.snapshot()
            }),
        }
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let bytes = to_bytes(&t).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let json = to_json(&t).unwrap();
        assert!(json.contains("mandel"));
        let back = from_json(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn file_round_trip() {
        let t = sample();
        let path =
            std::env::temp_dir().join(format!("ezp_trace_test_{}.ezv", std::process::id()));
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample()).unwrap();
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(Error::TraceFormat(_))));
    }

    #[test]
    fn unknown_version_rejected_with_a_clear_error() {
        let mut bytes = to_bytes(&sample()).unwrap();
        bytes[3] = 3; // a future EZV\x03
        let err = from_bytes(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("unsupported .ezv version 3"),
            "unexpected error: {err}"
        );
        bytes[3] = 0;
        assert!(from_bytes(&bytes).is_err());
    }

    /// Encodes `t` exactly as the v1 writer did: v1 magic, no edge
    /// section, no counter section.
    fn to_bytes_v1(t: &Trace) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V1);
        let meta = t.meta.to_json().dump().into_bytes();
        write_usize(&mut out, meta.len());
        out.extend_from_slice(&meta);
        write_usize(&mut out, t.iterations.len());
        for s in &t.iterations {
            write_u64(&mut out, s.iteration as u64);
            write_u64(&mut out, s.start_ns);
            if s.end_ns == u64::MAX {
                write_u64(&mut out, 0);
            } else {
                write_u64(&mut out, 1);
                write_u64(&mut out, s.end_ns - s.start_ns);
            }
        }
        write_usize(&mut out, t.tasks.len());
        let mut prev_start = 0u64;
        for task in &t.tasks {
            write_u64(&mut out, task.iteration as u64);
            write_usize(&mut out, task.x);
            write_usize(&mut out, task.y);
            write_usize(&mut out, task.w);
            write_usize(&mut out, task.h);
            write_usize(&mut out, task.worker);
            let (sign, delta) = if task.start_ns >= prev_start {
                (0u64, task.start_ns - prev_start)
            } else {
                (1u64, prev_start - task.start_ns)
            };
            write_u64(&mut out, sign);
            write_u64(&mut out, delta);
            write_u64(&mut out, task.end_ns - task.start_ns);
            prev_start = task.start_ns;
        }
        out
    }

    #[test]
    fn v1_traces_still_load() {
        let mut expect = sample();
        expect.edges.clear();
        expect.counters = None;
        let bytes = to_bytes_v1(&expect);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, expect);
    }

    #[test]
    fn counterless_v2_round_trips() {
        let mut t = sample();
        t.counters = None;
        let back = from_bytes(&to_bytes(&t).unwrap()).unwrap();
        assert_eq!(back, t);
        assert!(back.counters.is_none());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = to_bytes(&sample()).unwrap();
        // cutting the stream at any point must fail, never panic
        for cut in 0..bytes.len() {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} succeeded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&sample()).unwrap();
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_trace_refuses_to_serialize() {
        let mut t = sample();
        t.tasks[0].worker = 99;
        assert!(to_bytes(&t).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut t = sample();
        t.tasks.clear();
        t.iterations.clear();
        let back = from_bytes(&to_bytes(&t).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    ezp_proptest! {
        #![cases(64)]

        fn prop_round_trip(n_tasks in 0usize..40, n_edges in 0usize..24, seed in any_u64()) {
            // build a sorted, valid task list from the seed
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 33
            };
            let mut tasks = Vec::new();
            let mut start = 0u64;
            for i in 0..n_tasks {
                let it = 1 + (i / 8) as u32;
                start += next() % 1000;
                tasks.push(TileRecord {
                    iteration: it,
                    x: (next() % 64) as usize,
                    y: (next() % 64) as usize,
                    w: 1 + (next() % 16) as usize,
                    h: 1 + (next() % 16) as usize,
                    start_ns: start,
                    end_ns: start + next() % 10_000,
                    worker: (next() % 4) as usize,
                });
            }
            let iterations = (1..=tasks.last().map(|t| t.iteration).unwrap_or(0))
                .map(|it| IterationSpan { iteration: it, start_ns: it as u64, end_ns: it as u64 + 10 })
                .collect();
            // random (but valid: no self-loop, known kind) edge records
            let edges = (0..n_edges)
                .map(|_| {
                    let from = (next() % 256) as usize;
                    DepEdge {
                        from,
                        to: from + 1 + (next() % 64) as usize,
                        kind: (next() % 3) as u8,
                    }
                })
                .collect();
            let counters = if seed % 2 == 0 {
                let mut set = ezp_perf::CounterSet::new(2);
                let c = set.register("chunks_served");
                set.add(c, 0, next());
                Some(set.snapshot())
            } else {
                None
            };
            let t = Trace {
                meta: TraceMeta {
                    kernel: "k".into(), variant: "v".into(), dim: 64, tile_size: 16,
                    threads: 4, schedule: "static".into(), label: "p".into(),
                },
                iterations,
                tasks,
                edges,
                counters,
            };
            let back = from_bytes(&to_bytes(&t).unwrap()).unwrap();
            assert_eq!(back, t);
        }
    }
}
