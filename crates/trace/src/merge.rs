//! Merging per-rank traces into one global trace.
//!
//! The MPI variants (§III-D) produce one monitoring report per rank —
//! the per-process windows of `--debug M`. To explore a distributed run
//! in EASYVIEW as a single timeline, the per-rank traces are merged:
//! rank `r`'s worker `w` becomes global worker `offset(r) + w`, task
//! lists are interleaved by time, and iteration spans are unioned.

use crate::model::{Trace, TraceMeta};
use ezp_core::error::{Error, Result};
use ezp_monitor::report::IterationSpan;

/// Merges per-rank traces (indexed by rank) into one trace whose
/// workers are globally numbered (`rank 0` keeps its ids, `rank 1` is
/// offset by rank 0's thread count, ...).
///
/// All traces must agree on kernel geometry (`dim`, `tile_size`);
/// kernel/variant metadata is taken from rank 0.
pub fn merge_ranks(traces: &[Trace]) -> Result<Trace> {
    let first = traces
        .first()
        .ok_or_else(|| Error::Config("cannot merge zero traces".into()))?;
    for (rank, t) in traces.iter().enumerate() {
        if t.meta.dim != first.meta.dim || t.meta.tile_size != first.meta.tile_size {
            return Err(Error::Config(format!(
                "rank {rank} has geometry {}x{} tiles {}, expected {}x{} tiles {}",
                t.meta.dim, t.meta.dim, t.meta.tile_size, first.meta.dim, first.meta.dim,
                first.meta.tile_size
            )));
        }
    }
    let total_threads: usize = traces.iter().map(|t| t.meta.threads).sum();

    // union of iteration spans by iteration number
    let mut spans: std::collections::BTreeMap<u32, IterationSpan> = std::collections::BTreeMap::new();
    for t in traces {
        for s in &t.iterations {
            spans
                .entry(s.iteration)
                .and_modify(|acc| {
                    acc.start_ns = acc.start_ns.min(s.start_ns);
                    if s.end_ns != u64::MAX {
                        acc.end_ns = if acc.end_ns == u64::MAX {
                            s.end_ns
                        } else {
                            acc.end_ns.max(s.end_ns)
                        };
                    }
                })
                .or_insert(*s);
        }
    }

    // tasks with globally renumbered workers
    let mut tasks = Vec::with_capacity(traces.iter().map(|t| t.tasks.len()).sum());
    let mut offset = 0usize;
    for t in traces {
        for task in &t.tasks {
            let mut task = *task;
            task.worker += offset;
            tasks.push(task);
        }
        offset += t.meta.threads;
    }
    tasks.sort_by_key(|t| (t.iteration, t.start_ns));

    // edges reference grid task ids (shared geometry), so the union
    // dedups structural edges all ranks reported
    let edge_set: std::collections::BTreeSet<_> = traces
        .iter()
        .flat_map(|t| t.edges.iter().map(|e| (e.from, e.to, e.kind)))
        .collect();
    let edges = edge_set
        .into_iter()
        .map(|(from, to, kind)| ezp_monitor::DepEdge { from, to, kind })
        .collect();

    let merged = Trace {
        meta: TraceMeta {
            kernel: first.meta.kernel.clone(),
            variant: first.meta.variant.clone(),
            dim: first.meta.dim,
            tile_size: first.meta.tile_size,
            threads: total_threads,
            schedule: first.meta.schedule.clone(),
            label: format!("{} ({} ranks merged)", first.meta.label, traces.len()),
        },
        iterations: spans.into_values().collect(),
        tasks,
        edges,
        // per-rank counter snapshots have different worker counts and
        // cannot be meaningfully concatenated; merged traces carry none
        counters: None,
    };
    merged.validate()?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ezp_monitor::TileRecord;

    fn rank_trace(threads: usize, tasks: Vec<(u32, usize, usize, u64, u64, usize)>) -> Trace {
        Trace {
            meta: TraceMeta {
                kernel: "life".into(),
                variant: "mpi_omp".into(),
                dim: 64,
                tile_size: 16,
                threads,
                schedule: "dynamic".into(),
                label: "rank".into(),
            },
            iterations: vec![IterationSpan {
                iteration: 1,
                start_ns: tasks.iter().map(|t| t.3).min().unwrap_or(0),
                end_ns: tasks.iter().map(|t| t.4).max().unwrap_or(10),
            }],
            tasks: tasks
                .into_iter()
                .map(|(it, x, y, s, e, w)| TileRecord {
                    iteration: it,
                    x,
                    y,
                    w: 16,
                    h: 16,
                    start_ns: s,
                    end_ns: e,
                    worker: w,
                })
                .collect(),
            edges: Vec::new(),
            counters: None,
        }
    }

    #[test]
    fn workers_are_renumbered_globally() {
        let r0 = rank_trace(2, vec![(1, 0, 0, 0, 10, 0), (1, 16, 0, 2, 12, 1)]);
        let r1 = rank_trace(2, vec![(1, 0, 32, 1, 11, 0), (1, 16, 32, 3, 13, 1)]);
        let merged = merge_ranks(&[r0, r1]).unwrap();
        assert_eq!(merged.meta.threads, 4);
        let mut workers: Vec<usize> = merged.tasks.iter().map(|t| t.worker).collect();
        workers.sort_unstable();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        assert_eq!(merged.tasks.len(), 4);
        // sorted by start time within the iteration
        for w in merged.tasks.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn iteration_spans_are_unioned() {
        let mut r0 = rank_trace(1, vec![(1, 0, 0, 5, 20, 0)]);
        let mut r1 = rank_trace(1, vec![(1, 0, 32, 2, 15, 0)]);
        r0.iterations[0] = IterationSpan {
            iteration: 1,
            start_ns: 5,
            end_ns: 20,
        };
        r1.iterations[0] = IterationSpan {
            iteration: 1,
            start_ns: 2,
            end_ns: 15,
        };
        let merged = merge_ranks(&[r0, r1]).unwrap();
        assert_eq!(merged.iterations.len(), 1);
        assert_eq!(merged.iterations[0].start_ns, 2);
        assert_eq!(merged.iterations[0].end_ns, 20);
    }

    #[test]
    fn open_spans_survive_merging() {
        let mut r0 = rank_trace(1, vec![(1, 0, 0, 0, 10, 0)]);
        r0.iterations[0].end_ns = u64::MAX;
        let r1 = rank_trace(1, vec![(1, 0, 32, 0, 12, 0)]);
        let merged = merge_ranks(&[r0, r1]).unwrap();
        assert_eq!(merged.iterations[0].end_ns, 12);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let r0 = rank_trace(1, vec![(1, 0, 0, 0, 10, 0)]);
        let mut r1 = rank_trace(1, vec![(1, 0, 32, 0, 10, 0)]);
        r1.meta.tile_size = 8;
        assert!(merge_ranks(&[r0, r1]).is_err());
        assert!(merge_ranks(&[]).is_err());
    }

    #[test]
    fn edges_are_unioned_and_counters_dropped() {
        use ezp_monitor::DepEdge;
        let mut set = ezp_perf::CounterSet::new(1);
        set.register("tasks_executed");
        let mut r0 = rank_trace(1, vec![(1, 0, 0, 0, 10, 0)]);
        r0.edges = vec![
            DepEdge {
                from: 0,
                to: 1,
                kind: 0,
            },
            DepEdge {
                from: 1,
                to: 2,
                kind: 0,
            },
        ];
        r0.counters = Some(set.snapshot());
        let mut r1 = rank_trace(1, vec![(1, 0, 32, 0, 12, 0)]);
        r1.edges = vec![
            DepEdge {
                from: 1,
                to: 2,
                kind: 0,
            }, // duplicate of r0's
            DepEdge {
                from: 2,
                to: 3,
                kind: 1,
            },
        ];
        let merged = merge_ranks(&[r0, r1]).unwrap();
        assert_eq!(merged.edges.len(), 3);
        assert!(merged.counters.is_none());
    }

    #[test]
    fn merged_trace_supports_all_analyses() {
        let r0 = rank_trace(2, vec![(1, 0, 0, 0, 10, 0), (1, 16, 0, 1, 9, 1)]);
        let r1 = rank_trace(2, vec![(1, 0, 32, 0, 8, 0), (1, 16, 32, 2, 11, 1)]);
        let merged = merge_ranks(&[r0, r1]).unwrap();
        let report = merged.to_report().unwrap();
        let snap = report.tiling_snapshot(1);
        assert_eq!(snap.computed_tiles(), 4);
        // rank 1's tiles carry global worker ids 2 and 3
        assert_eq!(snap.owner(0, 2), Some(2));
        assert_eq!(snap.owner(1, 2), Some(3));
    }
}
