//! Chrome Trace Event export: any recorded [`Trace`] (plus optional
//! perf spans) becomes a JSON file that `chrome://tracing` and Perfetto
//! load directly — EASYVIEW's timeline without writing a viewer.
//!
//! Mapping: one Chrome *thread* per worker, tile tasks become complete
//! (`"ph": "X"`) events on their worker's lane with the tile rectangle
//! in `args`, iterations become complete events on a synthetic lane one
//! past the last worker, and extra [`SpanRecord`]s land on their
//! worker's lane under the `span` category.

use crate::model::Trace;
use ezp_core::json::Json;
use ezp_perf::trace_event::{chrome_trace, thread_name, TraceEvent};
use ezp_perf::SpanRecord;

/// The `tid` of the synthetic iterations lane.
pub fn iterations_lane(trace: &Trace) -> usize {
    trace.meta.threads
}

/// Converts `trace` (and optional perf `spans`) to a Chrome Trace Event
/// JSON document.
pub fn to_chrome(trace: &Trace, spans: &[SpanRecord]) -> Json {
    // An iteration still open at export time carries the u64::MAX
    // sentinel; clamp it to the last observed timestamp so the viewer
    // does not draw a 584-year bar.
    let clamp_end = trace.time_bounds().map(|(_, end)| end).unwrap_or(0);
    let mut events: Vec<TraceEvent> = Vec::with_capacity(
        trace.tasks.len() + trace.iterations.len() + spans.len(),
    );
    for t in &trace.tasks {
        events.push(
            TraceEvent::complete("tile", "tile", t.start_ns, t.duration_ns(), t.worker)
                .arg("iteration", Json::UInt(t.iteration as u64))
                .arg("x", Json::UInt(t.x as u64))
                .arg("y", Json::UInt(t.y as u64))
                .arg("w", Json::UInt(t.w as u64))
                .arg("h", Json::UInt(t.h as u64)),
        );
    }
    let iter_tid = iterations_lane(trace);
    for s in &trace.iterations {
        let end = if s.end_ns == u64::MAX { clamp_end } else { s.end_ns };
        events.push(TraceEvent::complete(
            &format!("iteration {}", s.iteration),
            "iteration",
            s.start_ns,
            end.saturating_sub(s.start_ns),
            iter_tid,
        ));
    }
    events.extend(spans.iter().map(TraceEvent::from));
    let mut metadata: Vec<Json> = (0..trace.meta.threads)
        .map(|w| thread_name(0, w, &format!("worker {w}")))
        .collect();
    metadata.push(thread_name(0, iter_tid, "iterations"));
    chrome_trace(&events, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::tests::sample_trace;

    fn events(j: &Json) -> Vec<&Json> {
        j.get("traceEvents").unwrap().as_arr().unwrap().iter().collect()
    }

    fn of_phase<'a>(evs: &[&'a Json], ph: &str) -> Vec<&'a Json> {
        evs.iter()
            .filter(|e| e.field::<String>("ph").unwrap() == ph)
            .copied()
            .collect()
    }

    #[test]
    fn trace_converts_to_chrome_events() {
        let t = sample_trace();
        let j = to_chrome(&t, &[]);
        // must be valid JSON end to end
        let j = Json::parse(&j.dump()).unwrap();
        assert_eq!(j.field::<String>("displayTimeUnit").unwrap(), "ms");
        let evs = events(&j);
        // 2 workers + iterations lane named, 4 tiles + 2 iterations
        assert_eq!(of_phase(&evs, "M").len(), 3);
        let complete = of_phase(&evs, "X");
        assert_eq!(complete.len(), 6);
        let tiles: Vec<_> = complete
            .iter()
            .filter(|e| e.field::<String>("cat").unwrap() == "tile")
            .collect();
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0].get("args").unwrap().field::<u64>("x").unwrap(), 0);
        // iterations sit on the synthetic lane past the last worker
        for e in complete.iter().filter(|e| e.field::<String>("cat").unwrap() == "iteration") {
            assert_eq!(e.field::<u64>("tid").unwrap(), 2);
        }
    }

    #[test]
    fn timestamps_are_microseconds() {
        let t = sample_trace();
        let j = to_chrome(&t, &[]);
        let evs = events(&j);
        let tile = of_phase(&evs, "X")[0];
        // first tile: start 5 ns, duration 45 ns
        assert!((tile.field::<f64>("ts").unwrap() - 0.005).abs() < 1e-12);
        assert!((tile.field::<f64>("dur").unwrap() - 0.045).abs() < 1e-12);
    }

    #[test]
    fn open_iteration_sentinel_is_clamped() {
        let mut t = sample_trace();
        t.iterations[1].end_ns = u64::MAX; // still open
        let j = to_chrome(&t, &[]);
        let evs = events(&j);
        let iter2 = of_phase(&evs, "X")
            .into_iter()
            .find(|e| e.field::<String>("name").unwrap() == "iteration 2")
            .unwrap();
        // clamped to the last task end (215 ns), not 584 years
        let dur_us = iter2.field::<f64>("dur").unwrap();
        assert!((dur_us - 0.115).abs() < 1e-12, "dur {dur_us}");
    }

    #[test]
    fn perf_spans_ride_along() {
        let t = sample_trace();
        let spans = vec![SpanRecord {
            name: "compute",
            worker: 1,
            start_ns: 10,
            end_ns: 30,
        }];
        let j = to_chrome(&t, &spans);
        let evs = events(&j);
        let span = of_phase(&evs, "X")
            .into_iter()
            .find(|e| e.field::<String>("cat").unwrap() == "span")
            .unwrap();
        assert_eq!(span.field::<String>("name").unwrap(), "compute");
        assert_eq!(span.field::<u64>("tid").unwrap(), 1);
    }
}
