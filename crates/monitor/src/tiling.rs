//! The Tiling window: tile→thread maps and duration heat maps.
//!
//! "The Tiling window reflects the way tiles have been assigned to
//! threads at each iteration. Each thread is assigned a different color"
//! (§II-B); in heat-map mode "the brightness of tiles reflects the
//! duration of the corresponding tasks" (Fig. 9). Both views are plain
//! grids derived from tile records, renderable to an [`Img2D`] (one
//! pixel block per tile) or to ASCII for terminal sessions.

use crate::record::TileRecord;
use ezp_core::color::{heat_color, worker_color, Rgba};
use ezp_core::{Img2D, TileGrid, WorkerId};

/// Which worker computed each tile during one iteration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TilingSnapshot {
    grid: TileGrid,
    /// Row-major over tile coordinates; `None` = tile not computed (the
    /// tell-tale sign of lazy evaluation, Fig. 13).
    owners: Vec<Option<WorkerId>>,
}

impl TilingSnapshot {
    /// Builds the snapshot from the records of one iteration. When a tile
    /// was computed several times in the iteration (e.g. the two phases
    /// of `ccomp`), the last record wins, like repainting the window.
    pub fn from_records<'a>(
        grid: &TileGrid,
        records: impl Iterator<Item = &'a TileRecord>,
    ) -> Self {
        let mut owners = vec![None; grid.len()];
        for r in records {
            if r.x < grid.width() && r.y < grid.height() {
                let t = grid.tile_of_pixel(r.x, r.y);
                owners[grid.linear_index(t.tx, t.ty)] = Some(r.worker);
            }
        }
        TilingSnapshot {
            grid: *grid,
            owners,
        }
    }

    /// The grid this snapshot is over.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Owner of tile `(tx, ty)`.
    pub fn owner(&self, tx: usize, ty: usize) -> Option<WorkerId> {
        self.owners[self.grid.linear_index(tx, ty)]
    }

    /// Owners in `collapse(2)` linear order.
    pub fn owners(&self) -> &[Option<WorkerId>] {
        &self.owners
    }

    /// Number of computed tiles (lazy kernels leave holes).
    pub fn computed_tiles(&self) -> usize {
        self.owners.iter().filter(|o| o.is_some()).count()
    }

    /// Tiles computed per worker.
    pub fn tiles_per_worker(&self, workers: usize) -> Vec<usize> {
        let mut counts = vec![0usize; workers];
        for o in self.owners.iter().flatten() {
            if *o < workers {
                counts[*o] += 1;
            }
        }
        counts
    }

    /// Renders the window: each tile becomes a `cell`×`cell` pixel block
    /// painted with its owner's color (black when not computed).
    pub fn to_image(&self, cell: usize) -> Img2D<Rgba> {
        assert!(cell > 0, "cell size must be > 0");
        let mut img = Img2D::filled(
            self.grid.tiles_x() * cell,
            self.grid.tiles_y() * cell,
            Rgba::BLACK,
        );
        for ty in 0..self.grid.tiles_y() {
            for tx in 0..self.grid.tiles_x() {
                if let Some(w) = self.owner(tx, ty) {
                    let color = worker_color(w);
                    for py in 0..cell {
                        for px in 0..cell {
                            img.set(tx * cell + px, ty * cell + py, color);
                        }
                    }
                }
            }
        }
        img
    }

    /// ASCII rendering: one char per tile, `0-9a-z` for workers, `.` for
    /// holes. This is what the CLI prints in `--monitoring` mode.
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.grid.tiles_x() + 1) * self.grid.tiles_y());
        for ty in 0..self.grid.tiles_y() {
            for tx in 0..self.grid.tiles_x() {
                out.push(match self.owner(tx, ty) {
                    Some(w) => worker_char(w),
                    None => '.',
                });
            }
            out.push('\n');
        }
        out
    }
}

/// The character used for worker `w` in ASCII tiling maps.
pub fn worker_char(w: WorkerId) -> char {
    const CHARS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    CHARS[w % CHARS.len()] as char
}

/// Per-tile task durations for one iteration — the heat-map mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeatMap {
    grid: TileGrid,
    /// Row-major duration per tile (0 = not computed).
    durations_ns: Vec<u64>,
}

impl HeatMap {
    /// Accumulates tile durations from the records of one iteration
    /// (several tasks on the same tile add up).
    pub fn from_records<'a>(
        grid: &TileGrid,
        records: impl Iterator<Item = &'a TileRecord>,
    ) -> Self {
        let mut durations_ns = vec![0u64; grid.len()];
        for r in records {
            if r.x < grid.width() && r.y < grid.height() {
                let t = grid.tile_of_pixel(r.x, r.y);
                durations_ns[grid.linear_index(t.tx, t.ty)] += r.duration_ns();
            }
        }
        HeatMap {
            grid: *grid,
            durations_ns,
        }
    }

    /// Duration recorded for tile `(tx, ty)`.
    pub fn duration(&self, tx: usize, ty: usize) -> u64 {
        self.durations_ns[self.grid.linear_index(tx, ty)]
    }

    /// Hottest tile duration.
    pub fn max_duration(&self) -> u64 {
        self.durations_ns.iter().copied().max().unwrap_or(0)
    }

    /// Mean duration over *computed* tiles.
    pub fn mean_duration(&self) -> f64 {
        let computed: Vec<u64> = self.durations_ns.iter().copied().filter(|&d| d > 0).collect();
        if computed.is_empty() {
            0.0
        } else {
            computed.iter().sum::<u64>() as f64 / computed.len() as f64
        }
    }

    /// Mean duration of border tiles vs inner tiles — the Fig. 9b
    /// observation ("border tiles take a longer time to be processed
    /// than inner tiles") as a ratio.
    pub fn border_inner_ratio(&self) -> Option<f64> {
        let mut border = (0u64, 0usize);
        let mut inner = (0u64, 0usize);
        for t in self.grid.iter() {
            let d = self.duration(t.tx, t.ty);
            if d == 0 {
                continue;
            }
            if t.is_border(&self.grid) {
                border = (border.0 + d, border.1 + 1);
            } else {
                inner = (inner.0 + d, inner.1 + 1);
            }
        }
        if border.1 == 0 || inner.1 == 0 || inner.0 == 0 {
            return None;
        }
        let border_mean = border.0 as f64 / border.1 as f64;
        let inner_mean = inner.0 as f64 / inner.1 as f64;
        Some(border_mean / inner_mean)
    }

    /// Renders the heat map: brightness proportional to duration, on the
    /// given base hue (the paper scales the thread color's brightness;
    /// we expose the duration→color ramp directly).
    pub fn to_image(&self, cell: usize) -> Img2D<Rgba> {
        assert!(cell > 0, "cell size must be > 0");
        let max = self.max_duration().max(1);
        let mut img = Img2D::filled(
            self.grid.tiles_x() * cell,
            self.grid.tiles_y() * cell,
            Rgba::BLACK,
        );
        for ty in 0..self.grid.tiles_y() {
            for tx in 0..self.grid.tiles_x() {
                let d = self.duration(tx, ty);
                if d == 0 {
                    continue;
                }
                let color = heat_color(d as f32 / max as f32);
                for py in 0..cell {
                    for px in 0..cell {
                        img.set(tx * cell + px, ty * cell + py, color);
                    }
                }
            }
        }
        img
    }

    /// ASCII rendering with a 10-level brightness ramp.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.max_duration().max(1);
        let mut out = String::new();
        for ty in 0..self.grid.tiles_y() {
            for tx in 0..self.grid.tiles_x() {
                let d = self.duration(tx, ty);
                let level = ((d as f64 / max as f64) * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[level] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(worker: usize, x: usize, y: usize, dur: u64) -> TileRecord {
        TileRecord {
            iteration: 1,
            x,
            y,
            w: 16,
            h: 16,
            start_ns: 0,
            end_ns: dur,
            worker,
        }
    }

    fn grid() -> TileGrid {
        TileGrid::square(48, 16).unwrap() // 3x3 tiles
    }

    #[test]
    fn snapshot_assigns_owners() {
        let g = grid();
        let records = [rec(0, 0, 0, 5), rec(1, 16, 0, 5), rec(2, 32, 32, 5)];
        let snap = TilingSnapshot::from_records(&g, records.iter());
        assert_eq!(snap.owner(0, 0), Some(0));
        assert_eq!(snap.owner(1, 0), Some(1));
        assert_eq!(snap.owner(2, 2), Some(2));
        assert_eq!(snap.owner(1, 1), None);
        assert_eq!(snap.computed_tiles(), 3);
        assert_eq!(snap.tiles_per_worker(3), vec![1, 1, 1]);
    }

    #[test]
    fn last_record_wins_on_recompute() {
        let g = grid();
        let records = [rec(0, 0, 0, 5), rec(2, 0, 0, 5)];
        let snap = TilingSnapshot::from_records(&g, records.iter());
        assert_eq!(snap.owner(0, 0), Some(2));
    }

    #[test]
    fn snapshot_image_uses_worker_colors() {
        let g = grid();
        let records = [rec(0, 0, 0, 5)];
        let snap = TilingSnapshot::from_records(&g, records.iter());
        let img = snap.to_image(4);
        assert_eq!(img.width(), 12);
        assert_eq!(img.height(), 12);
        assert_eq!(img.get(0, 0), worker_color(0));
        assert_eq!(img.get(5, 5), Rgba::BLACK); // uncomputed tile
    }

    #[test]
    fn snapshot_ascii_shape() {
        let g = grid();
        let records = [rec(0, 0, 0, 5), rec(11, 16, 16, 5)];
        let snap = TilingSnapshot::from_records(&g, records.iter());
        let art = snap.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "0..");
        assert_eq!(lines[1], ".b.");
        assert_eq!(lines[2], "...");
    }

    #[test]
    fn heat_map_accumulates_durations() {
        let g = grid();
        let records = [rec(0, 0, 0, 10), rec(1, 0, 0, 5), rec(0, 16, 0, 30)];
        let hm = HeatMap::from_records(&g, records.iter());
        assert_eq!(hm.duration(0, 0), 15);
        assert_eq!(hm.duration(1, 0), 30);
        assert_eq!(hm.max_duration(), 30);
        assert!((hm.mean_duration() - 22.5).abs() < 1e-9);
    }

    #[test]
    fn border_inner_ratio_reflects_blur_fig9b() {
        let g = grid(); // 3x3: 8 border tiles, 1 inner tile
        let mut records = Vec::new();
        for t in g.iter() {
            let d = if t.is_border(&g) { 100 } else { 10 };
            records.push(rec(0, t.x, t.y, d));
        }
        let hm = HeatMap::from_records(&g, records.iter());
        let ratio = hm.border_inner_ratio().unwrap();
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn border_inner_ratio_none_without_inner_tiles() {
        let g = TileGrid::square(32, 16).unwrap(); // 2x2: all border
        let records = [rec(0, 0, 0, 5)];
        let hm = HeatMap::from_records(&g, records.iter());
        assert!(hm.border_inner_ratio().is_none());
    }

    #[test]
    fn heat_ascii_uses_ramp_extremes() {
        let g = TileGrid::square(32, 16).unwrap();
        let records = [rec(0, 0, 0, 100), rec(0, 16, 16, 1)];
        let hm = HeatMap::from_records(&g, records.iter());
        let art = hm.to_ascii();
        assert!(art.contains('@')); // hottest
        assert!(art.contains(' ')); // uncomputed or coldest
    }

    #[test]
    fn worker_chars_wrap() {
        assert_eq!(worker_char(0), '0');
        assert_eq!(worker_char(10), 'a');
        assert_eq!(worker_char(36), '0');
    }
}
