//! The live monitoring probe: low-overhead per-worker event collection.
//!
//! Worker threads call [`ezp_core::kernel::Probe::start_tile`] /
//! `end_tile` around every tile, so collection must not serialize them.
//! Each worker gets its own cache-line-padded slot holding the open-tile
//! timestamp and a private event channel: records ride an unbounded
//! [`ezp_chan`] lane (a lock-free ring push on the default backend, so
//! the tile hot path takes no lock), harvested into an accumulator when
//! a report is requested. The backend is selectable via
//! [`Monitor::with_tuning`], which is how the conformance matrix holds
//! both substrates to identical reports.

use crate::record::{DepEdge, TileRecord};
use crate::report::{IterationSpan, MonitorReport};
use ezp_chan::{unbounded, ChanReceiver, ChanSender, TryRecvError};
use ezp_core::kernel::{EdgeKind, Probe};
use ezp_core::time::now_ns;
use ezp_core::{ChanTuning, TileGrid, WorkerId};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Pads a worker slot to its own cache line to avoid false sharing, the
/// classic pitfall the guides (and Chapter 7 of *Rust Atomics and Locks*)
/// warn about for per-thread counters.
#[repr(align(128))]
struct WorkerSlot {
    /// Timestamp of the currently open tile (`u64::MAX` when none).
    /// counter-only: the timestamp is the entire payload; the monitor
    /// thread tolerates reading one frame stale.
    open_start: AtomicU64,
    /// This worker's event lane. Only this worker sends; unbounded, so
    /// a send never blocks the tile hot path.
    tx: Box<dyn ChanSender<TileRecord>>,
    /// Harvest side of the lane, drained under `harvested`'s lock.
    rx: Box<dyn ChanReceiver<TileRecord>>,
    /// Everything harvested from the lane so far — reports are
    /// snapshots, not drains, so records accumulate here.
    harvested: Mutex<Vec<TileRecord>>,
}

impl WorkerSlot {
    fn new(tuning: ChanTuning) -> Self {
        let (mut txs, rx) = unbounded::<TileRecord>(tuning, 1);
        WorkerSlot {
            open_start: AtomicU64::new(u64::MAX),
            tx: txs.pop().expect("one sender lane"),
            rx,
            harvested: Mutex::new(Vec::new()),
        }
    }

    /// Drains the lane into the accumulator and copies everything
    /// collected so far. The lock makes concurrent reports serialize,
    /// so each in-flight record lands in the accumulator exactly once.
    fn snapshot(&self) -> Vec<TileRecord> {
        let mut harvested = self.harvested.lock().unwrap();
        loop {
            match self.rx.try_recv() {
                Ok(r) => harvested.push(r),
                Err(TryRecvError::Empty) | Err(TryRecvError::Closed) => break,
            }
        }
        harvested.clone()
    }
}

/// The live monitor: a [`Probe`] implementation recording every tile.
pub struct Monitor {
    grid: TileGrid,
    slots: Vec<WorkerSlot>,
    current_iteration: AtomicU32,
    iterations: Mutex<Vec<IterationSpan>>,
    /// Dependency edges reported by the task-graph executor, deduped:
    /// graph runs re-enumerate the same structural edges every
    /// iteration, and the report wants each once. Edge reporting
    /// happens once per region launch (not per task), so this lock is
    /// nowhere near the tile hot path.
    edges: Mutex<BTreeSet<(usize, usize, u8)>>,
}

impl Monitor {
    /// Creates a monitor for `workers` threads over `grid`.
    pub fn new(workers: usize, grid: TileGrid) -> Self {
        Self::with_tuning(workers, grid, ChanTuning::default())
    }

    /// [`Monitor::new`] with the event channel's backend and wait
    /// policy chosen by `tuning` (`--chan-backend`, `--wait-policy`).
    pub fn with_tuning(workers: usize, grid: TileGrid, tuning: ChanTuning) -> Self {
        assert!(workers > 0, "monitor needs at least one worker");
        Monitor {
            grid,
            slots: (0..workers).map(|_| WorkerSlot::new(tuning)).collect(),
            current_iteration: AtomicU32::new(0),
            iterations: Mutex::new(Vec::new()),
            edges: Mutex::new(BTreeSet::new()),
        }
    }

    /// Number of monitored workers.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Harvests everything collected so far into an analysable report.
    /// The monitor can keep running; records are *copied* out.
    pub fn report(&self) -> MonitorReport {
        let mut records: Vec<TileRecord> = Vec::new();
        for slot in &self.slots {
            records.extend(slot.snapshot());
        }
        records.sort_by_key(|r| (r.iteration, r.start_ns));
        let mut iterations = self.iterations.lock().unwrap().clone();
        // close a still-open iteration so that live snapshots work
        if let Some(last) = iterations.last_mut() {
            if last.end_ns == u64::MAX {
                last.end_ns = now_ns();
            }
        }
        let edges: Vec<DepEdge> = self
            .edges
            .lock()
            .unwrap()
            .iter()
            .map(|&(from, to, kind)| DepEdge { from, to, kind })
            .collect();
        MonitorReport::new(self.slots.len(), self.grid, iterations, records)
            .with_edges(edges)
    }

    #[inline]
    fn slot(&self, worker: WorkerId) -> &WorkerSlot {
        assert!(
            worker < self.slots.len(),
            "worker {worker} out of range (monitor created for {})",
            self.slots.len()
        );
        &self.slots[worker]
    }
}

impl Probe for Monitor {
    fn iteration_start(&self, iteration: u32) {
        self.current_iteration.store(iteration, Ordering::Release);
        self.iterations.lock().unwrap().push(IterationSpan {
            iteration,
            start_ns: now_ns(),
            end_ns: u64::MAX,
        });
    }

    fn iteration_end(&self, iteration: u32) {
        let mut spans = self.iterations.lock().unwrap();
        if let Some(span) = spans.iter_mut().rev().find(|s| s.iteration == iteration) {
            span.end_ns = now_ns();
        }
    }

    fn start_tile(&self, worker: WorkerId) {
        self.slot(worker).open_start.store(now_ns(), Ordering::Relaxed);
    }

    fn end_tile(&self, x: usize, y: usize, w: usize, h: usize, worker: WorkerId) {
        let slot = self.slot(worker);
        let start = slot.open_start.swap(u64::MAX, Ordering::Relaxed);
        let end = now_ns();
        // An end without a start is an instrumentation bug in the kernel;
        // record a zero-length task rather than poisoning the run.
        let start = if start == u64::MAX { end } else { start };
        slot.tx
            .send(TileRecord {
                iteration: self.current_iteration.load(Ordering::Acquire),
                x,
                y,
                w,
                h,
                start_ns: start,
                end_ns: end,
                worker,
            })
            .expect("monitor event lane closed while its slot is alive");
    }

    fn dep_edge(&self, from: usize, to: usize, kind: EdgeKind) {
        self.edges.lock().unwrap().insert((from, to, kind.as_u8()));
    }

    fn wants_dep_edges(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn grid() -> TileGrid {
        TileGrid::square(64, 16).unwrap()
    }

    #[test]
    fn records_one_tile_per_bracket() {
        let m = Monitor::new(2, grid());
        m.iteration_start(1);
        m.start_tile(0);
        m.end_tile(0, 0, 16, 16, 0);
        m.start_tile(1);
        m.end_tile(16, 0, 16, 16, 1);
        m.iteration_end(1);
        let rep = m.report();
        assert_eq!(rep.records.len(), 2);
        assert_eq!(rep.records[0].worker, 0);
        assert_eq!(rep.records[1].x, 16);
        assert!(rep.records.iter().all(|r| r.iteration == 1));
    }

    #[test]
    fn tile_timestamps_are_ordered() {
        let m = Monitor::new(1, grid());
        m.iteration_start(1);
        m.start_tile(0);
        std::hint::black_box((0..1000).sum::<u64>());
        m.end_tile(0, 0, 16, 16, 0);
        let rep = m.report();
        let r = rep.records[0];
        assert!(r.end_ns >= r.start_ns);
    }

    #[test]
    fn end_without_start_yields_zero_duration() {
        let m = Monitor::new(1, grid());
        m.iteration_start(1);
        m.end_tile(0, 0, 16, 16, 0);
        let rep = m.report();
        assert_eq!(rep.records[0].duration_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worker_rank_is_checked() {
        let m = Monitor::new(2, grid());
        m.start_tile(5);
    }

    #[test]
    fn concurrent_workers_do_not_lose_records() {
        let m = Arc::new(Monitor::new(4, grid()));
        m.iteration_start(1);
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        m.start_tile(w);
                        m.end_tile(i % 4 * 16, w * 16, 16, 16, w);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        m.iteration_end(1);
        let rep = m.report();
        assert_eq!(rep.records.len(), 400);
        for w in 0..4 {
            assert_eq!(rep.records.iter().filter(|r| r.worker == w).count(), 100);
        }
    }

    #[test]
    fn open_iteration_is_closed_at_report_time() {
        let m = Monitor::new(1, grid());
        m.iteration_start(1);
        m.start_tile(0);
        m.end_tile(0, 0, 16, 16, 0);
        // no iteration_end: live snapshot mid-iteration
        let rep = m.report();
        assert_eq!(rep.iterations.len(), 1);
        assert_ne!(rep.iterations[0].end_ns, u64::MAX);
    }

    #[test]
    fn dep_edges_are_collected_and_deduped() {
        let m = Monitor::new(1, grid());
        assert!(m.wants_dep_edges());
        // re-emission across iterations (same structural graph) dedupes
        for _ in 0..3 {
            m.dep_edge(0, 1, EdgeKind::Data);
            m.dep_edge(0, 4, EdgeKind::Data);
            m.dep_edge(2, 3, EdgeKind::Capacity);
        }
        let rep = m.report();
        assert_eq!(rep.edges.len(), 3);
        assert_eq!(
            rep.edges[0],
            DepEdge {
                from: 0,
                to: 1,
                kind: EdgeKind::Data.as_u8()
            }
        );
        assert_eq!(rep.edges[2].edge_kind(), Some(EdgeKind::Capacity));
    }

    #[test]
    fn every_backend_and_policy_yields_the_same_report() {
        use ezp_core::{ChanBackendKind, WaitPolicy};
        let collect = |tuning| {
            let m = Arc::new(Monitor::with_tuning(4, grid(), tuning));
            m.iteration_start(1);
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let m = m.clone();
                    std::thread::spawn(move || {
                        for i in 0..50 {
                            m.start_tile(w);
                            m.end_tile(i % 4 * 16, w * 16, 16, 16, w);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            m.iteration_end(1);
            let mut rec = m.report().records;
            rec.sort_by_key(|r| (r.worker, r.x, r.y));
            rec.iter().map(|r| (r.worker, r.x, r.y, r.w, r.h)).collect::<Vec<_>>()
        };
        let baseline = collect(ChanTuning::default());
        for backend in ChanBackendKind::all() {
            for policy in WaitPolicy::all() {
                let tuning = ChanTuning { backend, policy };
                assert_eq!(collect(tuning), baseline, "{tuning:?}");
            }
        }
    }

    #[test]
    fn report_is_a_snapshot_not_a_drain() {
        let m = Monitor::new(1, grid());
        m.iteration_start(1);
        m.start_tile(0);
        m.end_tile(0, 0, 16, 16, 0);
        assert_eq!(m.report().records.len(), 1);
        assert_eq!(m.report().records.len(), 1);
    }
}
