//! The Activity Monitor window: textual rendering of per-CPU load and
//! the cumulated-idleness history (paper §II-B, Fig. 3).

use crate::report::{IterationStats, MonitorReport};
use ezp_core::time::format_duration_ns;

/// Width of the ASCII load bars.
const BAR_WIDTH: usize = 30;

/// Renders one iteration's Activity Monitor as text: one load bar per
/// CPU plus the imbalance figure.
pub fn render_iteration(stats: &IterationStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "iteration {:>3}  ({})\n",
        stats.span.iteration,
        format_duration_ns(stats.span.duration_ns())
    ));
    for w in 0..stats.busy_ns.len() {
        let load = stats.load(w);
        let filled = (load * BAR_WIDTH as f64).round() as usize;
        out.push_str(&format!(
            "  CPU {:>2} [{}{}] {:>5.1}%  {} tiles\n",
            w,
            "#".repeat(filled),
            " ".repeat(BAR_WIDTH - filled),
            load * 100.0,
            stats.tiles[w]
        ));
    }
    out.push_str(&format!("  imbalance (max/mean busy): {:.2}\n", stats.imbalance()));
    out
}

/// Renders the cumulated-idleness history diagram as an ASCII sparkline:
/// "a history diagram reports the evolution of cumulated idleness over
/// time".
pub fn render_idleness_history(report: &MonitorReport) -> String {
    let hist = report.idleness_history();
    if hist.is_empty() {
        return "no iterations recorded\n".to_string();
    }
    const LEVELS: &[u8] = b"_.:-=+*#%@";
    let max = hist.iter().map(|&(_, v)| v).max().unwrap_or(0).max(1);
    let mut out = String::from("cumulated idleness: ");
    for &(_, v) in &hist {
        let level = ((v as f64 / max as f64) * (LEVELS.len() - 1) as f64).round() as usize;
        out.push(LEVELS[level] as char);
    }
    out.push_str(&format!(
        "  (total {} over {} iterations)\n",
        format_duration_ns(hist.last().unwrap().1),
        hist.len()
    ));
    out
}

/// Full Activity Monitor dump: every iteration plus the history line.
pub fn render_report(report: &MonitorReport) -> String {
    let mut out = String::new();
    for stats in report.all_stats() {
        out.push_str(&render_iteration(&stats));
    }
    out.push_str(&render_idleness_history(report));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TileRecord;
    use crate::report::IterationSpan;
    use ezp_core::TileGrid;

    fn report() -> MonitorReport {
        let grid = TileGrid::square(32, 16).unwrap();
        MonitorReport::new(
            2,
            grid,
            vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 100,
            }],
            vec![
                TileRecord {
                    iteration: 1,
                    x: 0,
                    y: 0,
                    w: 16,
                    h: 16,
                    start_ns: 0,
                    end_ns: 100,
                    worker: 0,
                },
                TileRecord {
                    iteration: 1,
                    x: 16,
                    y: 0,
                    w: 16,
                    h: 16,
                    start_ns: 0,
                    end_ns: 50,
                    worker: 1,
                },
            ],
        )
    }

    #[test]
    fn iteration_rendering_shows_loads() {
        let rep = report();
        let text = render_iteration(&rep.iteration_stats(1).unwrap());
        assert!(text.contains("CPU  0"));
        assert!(text.contains("100.0%"));
        assert!(text.contains("50.0%"));
        assert!(text.contains("imbalance"));
    }

    #[test]
    fn full_bar_is_full() {
        let rep = report();
        let text = render_iteration(&rep.iteration_stats(1).unwrap());
        assert!(text.contains(&"#".repeat(BAR_WIDTH)));
    }

    #[test]
    fn history_sparkline_has_one_char_per_iteration() {
        let rep = report();
        let text = render_idleness_history(&rep);
        assert!(text.starts_with("cumulated idleness: "));
        assert!(text.contains("1 iterations"));
    }

    #[test]
    fn empty_report_renders_gracefully() {
        let grid = TileGrid::square(32, 16).unwrap();
        let rep = MonitorReport::new(2, grid, vec![], vec![]);
        assert!(render_idleness_history(&rep).contains("no iterations"));
        assert!(render_report(&rep).contains("no iterations"));
    }

    #[test]
    fn report_rendering_combines_both_views() {
        let rep = report();
        let text = render_report(&rep);
        assert!(text.contains("iteration   1"));
        assert!(text.contains("cumulated idleness"));
    }
}
