//! Analysis of harvested monitoring data: per-iteration per-CPU
//! busy/idle accounting — the numbers behind the Activity Monitor window.

use crate::record::{DepEdge, TileRecord};
use crate::tiling::{HeatMap, TilingSnapshot};
use ezp_core::json::{FromJson, Json, ToJson};
use ezp_core::TileGrid;

/// Wall-clock span of one iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterationSpan {
    /// Iteration number (1-based).
    pub iteration: u32,
    /// Start timestamp (ns since process origin).
    pub start_ns: u64,
    /// End timestamp; `u64::MAX` while the iteration is still open.
    pub end_ns: u64,
}

impl IterationSpan {
    /// Iteration duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

impl ToJson for IterationSpan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("iteration", self.iteration.to_json()),
            ("start_ns", self.start_ns.to_json()),
            // end_ns may be the u64::MAX "still open" sentinel; the exact
            // integer representation in ezp-core::json preserves it.
            ("end_ns", self.end_ns.to_json()),
        ])
    }
}

impl FromJson for IterationSpan {
    fn from_json(v: &Json) -> ezp_core::Result<Self> {
        Ok(IterationSpan {
            iteration: v.field("iteration")?,
            start_ns: v.field("start_ns")?,
            end_ns: v.field("end_ns")?,
        })
    }
}

/// Per-CPU activity during one iteration: the Activity Monitor's
/// "percentage representing the amount of time spent in computations
/// over the duration of the iteration" (§II-B).
#[derive(Clone, Debug, PartialEq)]
pub struct IterationStats {
    /// The iteration this describes.
    pub span: IterationSpan,
    /// Busy nanoseconds per worker (sum of tile durations).
    pub busy_ns: Vec<u64>,
    /// Tiles computed per worker.
    pub tiles: Vec<usize>,
}

impl IterationStats {
    /// Load of `worker` in `[0, 1]`: busy time over iteration duration.
    pub fn load(&self, worker: usize) -> f64 {
        let d = self.span.duration_ns();
        if d == 0 {
            return 0.0;
        }
        (self.busy_ns[worker] as f64 / d as f64).min(1.0)
    }

    /// Idle nanoseconds of `worker` during the iteration.
    pub fn idle_ns(&self, worker: usize) -> u64 {
        self.span.duration_ns().saturating_sub(self.busy_ns[worker])
    }

    /// Cumulated idleness across all workers — one point of the history
    /// diagram "at the bottom of the window" (§II-B). Saturates instead
    /// of overflowing when an iteration carries the `u64::MAX` "still
    /// open" sentinel.
    pub fn total_idle_ns(&self) -> u64 {
        (0..self.busy_ns.len()).fold(0u64, |acc, w| acc.saturating_add(self.idle_ns(w)))
    }

    /// Busiest and laziest worker of the iteration as `(max, min)` busy
    /// nanoseconds (`(0, 0)` with no workers).
    pub fn busy_extremes(&self) -> (u64, u64) {
        let max = self.busy_ns.iter().copied().max().unwrap_or(0);
        let min = self.busy_ns.iter().copied().min().unwrap_or(0);
        (max, min)
    }

    /// Steal-style imbalance: max busy / min busy. `1.0` when every
    /// worker was equally (possibly zero) busy, `f64::INFINITY` when at
    /// least one worker did work while another sat fully idle — the
    /// signature of a static schedule on an irregular kernel (Fig. 3).
    pub fn busy_ratio(&self) -> f64 {
        let (max, min) = self.busy_extremes();
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Load imbalance ratio: max busy / mean busy (1.0 = perfect balance).
    /// This is the quantity that makes the Fig. 3 static-schedule
    /// imbalance visible as a number.
    pub fn imbalance(&self) -> f64 {
        let n = self.busy_ns.len();
        if n == 0 {
            return 1.0;
        }
        let max = self.busy_ns.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.busy_ns.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Everything the monitor collected, ready for analysis and rendering.
#[derive(Clone, Debug)]
pub struct MonitorReport {
    /// Number of monitored workers.
    pub workers: usize,
    /// Tile grid of the monitored run.
    pub grid: TileGrid,
    /// Iteration spans in chronological order.
    pub iterations: Vec<IterationSpan>,
    /// All tile records, sorted by (iteration, start time).
    pub records: Vec<TileRecord>,
    /// Dependency edges of the run's task graph (empty for loop-
    /// scheduled runs, which have no inter-task edges). Task ids index
    /// the graph the scheduler ran — for tiled kernels, row-major tile
    /// ids of `grid`.
    pub edges: Vec<DepEdge>,
}

impl MonitorReport {
    /// Assembles a report (records must already be sorted by iteration
    /// then start time; [`crate::Monitor::report`] guarantees it).
    pub fn new(
        workers: usize,
        grid: TileGrid,
        iterations: Vec<IterationSpan>,
        records: Vec<TileRecord>,
    ) -> Self {
        MonitorReport {
            workers,
            grid,
            iterations,
            records,
            edges: Vec::new(),
        }
    }

    /// The same report carrying the run's dependency edges (builder
    /// style, so the many edge-free constructions stay untouched).
    pub fn with_edges(mut self, edges: Vec<DepEdge>) -> Self {
        self.edges = edges;
        self
    }

    /// Records belonging to iteration `it`.
    pub fn records_of_iteration(&self, it: u32) -> impl Iterator<Item = &TileRecord> {
        self.records.iter().filter(move |r| r.iteration == it)
    }

    /// Per-CPU activity stats for iteration `it`, or `None` when the
    /// iteration was never started.
    pub fn iteration_stats(&self, it: u32) -> Option<IterationStats> {
        let span = *self.iterations.iter().find(|s| s.iteration == it)?;
        let mut busy_ns = vec![0u64; self.workers];
        let mut tiles = vec![0usize; self.workers];
        for r in self.records_of_iteration(it) {
            // fold out-of-range workers into the last slot rather than
            // panicking on a malformed record; saturate like duration_ns
            let w = r.worker.min(self.workers.saturating_sub(1));
            busy_ns[w] = busy_ns[w].saturating_add(r.duration_ns());
            tiles[w] += 1;
        }
        Some(IterationStats {
            span,
            busy_ns,
            tiles,
        })
    }

    /// Stats for every recorded iteration, in order.
    pub fn all_stats(&self) -> Vec<IterationStats> {
        self.iterations
            .iter()
            .filter_map(|s| self.iteration_stats(s.iteration))
            .collect()
    }

    /// The cumulated-idleness history: one `(iteration, total idle ns)`
    /// point per iteration, cumulative over time — the bottom diagram of
    /// the Activity Monitor window.
    pub fn idleness_history(&self) -> Vec<(u32, u64)> {
        let mut acc = 0u64;
        self.all_stats()
            .iter()
            .map(|s| {
                acc = acc.saturating_add(s.total_idle_ns());
                (s.span.iteration, acc)
            })
            .collect()
    }

    /// Tile→worker snapshot of iteration `it` (the Tiling window).
    pub fn tiling_snapshot(&self, it: u32) -> TilingSnapshot {
        TilingSnapshot::from_records(&self.grid, self.records_of_iteration(it))
    }

    /// Per-tile duration heat map of iteration `it` (Fig. 9).
    pub fn heat_map(&self, it: u32) -> HeatMap {
        HeatMap::from_records(&self.grid, self.records_of_iteration(it))
    }

    /// Total busy time across all workers and iterations (saturating).
    pub fn total_busy_ns(&self) -> u64 {
        self.records
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(r.duration_ns()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(it: u32, worker: usize, start: u64, end: u64, x: usize, y: usize) -> TileRecord {
        TileRecord {
            iteration: it,
            x,
            y,
            w: 16,
            h: 16,
            start_ns: start,
            end_ns: end,
            worker,
        }
    }

    fn sample_report() -> MonitorReport {
        let grid = TileGrid::square(32, 16).unwrap(); // 2x2 tiles
        let iterations = vec![
            IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 100,
            },
            IterationSpan {
                iteration: 2,
                start_ns: 100,
                end_ns: 300,
            },
        ];
        let records = vec![
            rec(1, 0, 0, 60, 0, 0),
            rec(1, 0, 60, 90, 16, 0),
            rec(1, 1, 0, 40, 0, 16),
            rec(1, 1, 40, 50, 16, 16),
            rec(2, 0, 100, 300, 0, 0),
            rec(2, 1, 100, 150, 16, 0),
        ];
        MonitorReport::new(2, grid, iterations, records)
    }

    #[test]
    fn span_duration() {
        let s = IterationSpan {
            iteration: 1,
            start_ns: 10,
            end_ns: 40,
        };
        assert_eq!(s.duration_ns(), 30);
    }

    #[test]
    fn per_worker_busy_accounting() {
        let rep = sample_report();
        let s1 = rep.iteration_stats(1).unwrap();
        assert_eq!(s1.busy_ns, vec![90, 50]);
        assert_eq!(s1.tiles, vec![2, 2]);
        assert!((s1.load(0) - 0.9).abs() < 1e-9);
        assert!((s1.load(1) - 0.5).abs() < 1e-9);
        assert_eq!(s1.idle_ns(0), 10);
        assert_eq!(s1.idle_ns(1), 50);
        assert_eq!(s1.total_idle_ns(), 60);
    }

    #[test]
    fn load_is_clamped_to_one() {
        // busy longer than the iteration span (possible with overlapping
        // instrumentation) must not report > 100 %
        let grid = TileGrid::square(16, 16).unwrap();
        let rep = MonitorReport::new(
            1,
            grid,
            vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 10,
            }],
            vec![rec(1, 0, 0, 50, 0, 0)],
        );
        assert_eq!(rep.iteration_stats(1).unwrap().load(0), 1.0);
    }

    #[test]
    fn missing_iteration_yields_none() {
        assert!(sample_report().iteration_stats(7).is_none());
    }

    #[test]
    fn imbalance_detects_skew() {
        let rep = sample_report();
        let s2 = rep.iteration_stats(2).unwrap();
        // worker 0 busy 200, worker 1 busy 50 -> max/mean = 200/125 = 1.6
        assert!((s2.imbalance() - 1.6).abs() < 1e-9);
        let s1 = rep.iteration_stats(1).unwrap();
        assert!(s2.imbalance() > s1.imbalance());
    }

    #[test]
    fn busy_ratio_spots_the_lazy_worker() {
        let rep = sample_report();
        let s1 = rep.iteration_stats(1).unwrap();
        assert_eq!(s1.busy_extremes(), (90, 50));
        assert!((s1.busy_ratio() - 1.8).abs() < 1e-9);
    }

    #[test]
    fn busy_ratio_edge_cases() {
        let all_idle = IterationStats {
            span: IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 100,
            },
            busy_ns: vec![0, 0],
            tiles: vec![0, 0],
        };
        assert_eq!(all_idle.busy_ratio(), 1.0);
        let one_idle = IterationStats {
            busy_ns: vec![40, 0],
            tiles: vec![1, 0],
            ..all_idle.clone()
        };
        assert_eq!(one_idle.busy_ratio(), f64::INFINITY);
    }

    #[test]
    fn open_iteration_sentinel_does_not_overflow_idle_totals() {
        let grid = TileGrid::square(16, 16).unwrap();
        let rep = MonitorReport::new(
            4,
            grid,
            vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: u64::MAX, // still open
            }],
            vec![rec(1, 0, 0, 60, 0, 0)],
        );
        let s = rep.iteration_stats(1).unwrap();
        // 4 workers x ~u64::MAX idle each: must saturate, not panic
        assert_eq!(s.total_idle_ns(), u64::MAX);
        assert_eq!(rep.idleness_history(), vec![(1, u64::MAX)]);
    }

    #[test]
    fn out_of_range_worker_folds_into_last_slot() {
        let grid = TileGrid::square(16, 16).unwrap();
        let rep = MonitorReport::new(
            2,
            grid,
            vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 100,
            }],
            vec![rec(1, 9, 0, 30, 0, 0)], // worker 9 of 2
        );
        let s = rep.iteration_stats(1).unwrap();
        assert_eq!(s.busy_ns, vec![0, 30]);
        assert_eq!(s.tiles, vec![0, 1]);
    }

    #[test]
    fn idleness_history_is_cumulative() {
        let rep = sample_report();
        let hist = rep.idleness_history();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0], (1, 60));
        // iteration 2: duration 200, idle = (200-200) + (200-50) = 150
        assert_eq!(hist[1], (2, 210));
    }

    #[test]
    fn total_busy_sums_everything() {
        let rep = sample_report();
        assert_eq!(rep.total_busy_ns(), 60 + 30 + 40 + 10 + 200 + 50);
    }

    #[test]
    fn zero_duration_iteration_has_zero_load() {
        let grid = TileGrid::square(16, 16).unwrap();
        let rep = MonitorReport::new(
            1,
            grid,
            vec![IterationSpan {
                iteration: 1,
                start_ns: 5,
                end_ns: 5,
            }],
            vec![],
        );
        assert_eq!(rep.iteration_stats(1).unwrap().load(0), 0.0);
    }
}
