//! # ezp-monitor — real-time monitoring (paper §II-B)
//!
//! EASYPAP's monitoring mode pops up two windows: the **Activity
//! Monitor** (per-CPU load, cumulated-idleness history) and the **Tiling
//! window** (which thread computed which tile, with an optional
//! heat-map mode where brightness encodes task duration, Fig. 9).
//!
//! This crate is the data half of those windows. The [`Monitor`] probe
//! collects per-worker tile records with negligible overhead (one
//! uncontended mutex push per tile, per-worker slots are cache-padded);
//! [`MonitorReport`] then derives everything the windows display:
//! per-iteration per-CPU busy/idle accounting ([`report::IterationStats`]),
//! tile→thread snapshots ([`tiling::TilingSnapshot`]) and heat maps
//! ([`tiling::HeatMap`]). Rendering to images/ASCII lives in
//! [`tiling`] and [`activity`]; interactive exploration of *traces* is
//! `ezp-view`'s job.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod activity;
pub mod live;
pub mod record;
pub mod report;
pub mod tiling;
pub mod unified;

pub use live::Monitor;
pub use record::{DepEdge, TileRecord};
pub use report::{IterationStats, MonitorReport};
pub use tiling::{HeatMap, TilingSnapshot};
pub use unified::UnifiedReport;
