//! The unified observability report: monitor tile accounting merged
//! with `ezp-perf` runtime counters and spans into one document.
//!
//! The Activity Monitor knows *where time went per tile*; the perf
//! counters know *what the runtime did* (chunks, steals, idle waits);
//! spans know *how phases nest*. `--stats` reports all three together,
//! so this type is the single thing the CLI serializes.

use crate::report::MonitorReport;
use ezp_core::json::{Json, ToJson};
use ezp_perf::export::{to_csv, to_prometheus};
use ezp_perf::{CounterSnapshot, HistSummary, SpanRecord};
use std::fmt::Write as _;

/// Everything one run produced, observability-wise.
#[derive(Clone, Debug, Default)]
pub struct UnifiedReport {
    /// Tile-level monitoring data, when a [`crate::Monitor`] ran.
    pub monitor: Option<MonitorReport>,
    /// Runtime counters (scheduler events, MPI traffic, cache totals —
    /// anything pushed into the snapshot).
    pub counters: CounterSnapshot,
    /// Recorded spans, merged across workers and sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Latency-distribution summaries (task/frame percentiles), when a
    /// `PerfProbe` ran.
    pub histograms: Vec<HistSummary>,
    /// The tenant this report belongs to, when the run was executed by
    /// `ezp-serve` on behalf of a client (None for standalone CLI runs).
    pub tenant: Option<String>,
}

impl UnifiedReport {
    /// Bundles the three data sources into one report.
    pub fn new(
        monitor: Option<MonitorReport>,
        counters: CounterSnapshot,
        spans: Vec<SpanRecord>,
    ) -> Self {
        UnifiedReport {
            monitor,
            counters,
            spans,
            histograms: Vec::new(),
            tenant: None,
        }
    }

    /// The same report tagged with the owning tenant (builder style,
    /// used by `ezp-serve` for per-job reports).
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = Some(tenant.to_string());
        self
    }

    /// The same report carrying latency-percentile summaries (builder
    /// style, like [`MonitorReport::with_edges`]).
    pub fn with_histograms(mut self, histograms: Vec<HistSummary>) -> Self {
        self.histograms = histograms;
        self
    }

    /// Spans aggregated by name: `(name, count, total_ns)`, in first-seen
    /// order.
    pub fn span_summary(&self) -> Vec<(&str, u64, u64)> {
        let mut out: Vec<(&str, u64, u64)> = Vec::new();
        for s in &self.spans {
            match out.iter_mut().find(|(n, _, _)| *n == s.name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total = total.saturating_add(s.duration_ns());
                }
                None => out.push((s.name, 1, s.duration_ns())),
            }
        }
        out
    }

    /// Per-iteration summary rows derived from the monitor data (empty
    /// without a monitor).
    fn iteration_rows(&self) -> Vec<Json> {
        let Some(mon) = &self.monitor else {
            return Vec::new();
        };
        mon.all_stats()
            .iter()
            .map(|s| {
                Json::obj([
                    ("iteration", s.span.iteration.to_json()),
                    ("duration_ns", s.span.duration_ns().to_json()),
                    ("total_idle_ns", s.total_idle_ns().to_json()),
                    ("imbalance", s.imbalance().to_json()),
                    // INFINITY (a fully idle worker) serializes as null
                    ("busy_ratio", s.busy_ratio().to_json()),
                ])
            })
            .collect()
    }

    /// The whole report as one JSON object — what `--stats=json` prints.
    pub fn to_json(&self) -> Json {
        let mut pairs = Vec::new();
        if let Some(tenant) = &self.tenant {
            pairs.push(("tenant", tenant.to_json()));
        }
        pairs.push(("counters", self.counters.to_json()));
        pairs.push(("spans", self.spans.to_json()));
        if !self.histograms.is_empty() {
            pairs.push(("histograms", self.histograms.to_json()));
        }
        if let Some(mon) = &self.monitor {
            pairs.push(("workers", mon.workers.to_json()));
            pairs.push(("tiles_recorded", mon.records.len().to_json()));
            pairs.push(("total_busy_ns", mon.total_busy_ns().to_json()));
            pairs.push(("iterations", Json::Arr(self.iteration_rows())));
        }
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Human-readable text report — what plain `--stats` prints.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if let Some(mon) = &self.monitor {
            let _ = writeln!(out, "# run: {} workers, {} tiles recorded", mon.workers, mon.records.len());
            for s in mon.all_stats() {
                let _ = writeln!(
                    out,
                    "# iter {}: {} ns, idle {} ns, imbalance {:.2}, busy ratio {:.2}",
                    s.span.iteration,
                    s.span.duration_ns(),
                    s.total_idle_ns(),
                    s.imbalance(),
                    s.busy_ratio(),
                );
            }
        }
        for (name, count, total_ns) in self.span_summary() {
            let _ = writeln!(out, "# span {name}: {count} x, {total_ns} ns total");
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "# hist {}: n={} p50={} p95={} p99={} max={} ns",
                h.name, h.count, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns,
            );
        }
        out.push_str(&to_prometheus(&self.counters));
        out
    }

    /// Counters as CSV (monitor/span data has no tabular counter shape,
    /// so `--stats=csv` exports the counters only).
    pub fn to_csv(&self) -> String {
        to_csv(&self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TileRecord;
    use crate::report::IterationSpan;
    use ezp_core::json::FromJson;
    use ezp_core::TileGrid;
    use ezp_perf::CounterSet;

    fn sample() -> UnifiedReport {
        let grid = TileGrid::square(32, 16).unwrap();
        let records = vec![
            TileRecord {
                iteration: 1,
                x: 0,
                y: 0,
                w: 16,
                h: 16,
                start_ns: 0,
                end_ns: 60,
                worker: 0,
            },
            TileRecord {
                iteration: 1,
                x: 16,
                y: 0,
                w: 16,
                h: 16,
                start_ns: 0,
                end_ns: 40,
                worker: 1,
            },
        ];
        let mon = MonitorReport::new(
            2,
            grid,
            vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 100,
            }],
            records,
        );
        let mut set = CounterSet::new(2);
        let c = set.register("tasks_executed");
        set.add(c, 0, 1);
        set.add(c, 1, 1);
        let spans = vec![
            SpanRecord {
                name: "iteration",
                worker: 0,
                start_ns: 0,
                end_ns: 100,
            },
            SpanRecord {
                name: "iteration",
                worker: 0,
                start_ns: 100,
                end_ns: 180,
            },
        ];
        UnifiedReport::new(Some(mon), set.snapshot(), spans)
    }

    #[test]
    fn json_carries_all_three_sources() {
        let rep = sample();
        let j = Json::parse(&rep.to_json().dump()).unwrap();
        assert_eq!(j.field::<u64>("workers").unwrap(), 2);
        assert_eq!(j.field::<u64>("tiles_recorded").unwrap(), 2);
        assert_eq!(j.field::<u64>("total_busy_ns").unwrap(), 100);
        let counters = CounterSnapshot::from_json(j.get("counters").unwrap()).unwrap();
        assert_eq!(counters.total("tasks_executed"), 2);
        let iters = j.get("iterations").unwrap().as_arr().unwrap();
        assert_eq!(iters.len(), 1);
        assert_eq!(iters[0].field::<u64>("total_idle_ns").unwrap(), 100);
        assert_eq!(j.get("spans").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn json_without_monitor_still_has_counters_and_spans() {
        let mut rep = sample();
        rep.monitor = None;
        let j = Json::parse(&rep.to_json().dump()).unwrap();
        assert!(j.get("workers").is_none());
        assert!(j.get("counters").is_some());
        assert!(j.get("spans").is_some());
    }

    #[test]
    fn text_report_mentions_iterations_spans_and_counters() {
        let text = sample().to_text();
        assert!(text.contains("# iter 1:"), "{text}");
        assert!(text.contains("# span iteration: 2 x, 180 ns total"), "{text}");
        assert!(text.contains("ezp_tasks_executed 2"), "{text}");
    }

    #[test]
    fn tenant_tag_appears_in_json_when_set() {
        let rep = sample().with_tenant("acme");
        let j = Json::parse(&rep.to_json().dump()).unwrap();
        assert_eq!(j.field::<String>("tenant").unwrap(), "acme");
        assert!(sample().to_json().get("tenant").is_none());
    }

    #[test]
    fn span_summary_aggregates_by_name() {
        let rep = sample();
        assert_eq!(rep.span_summary(), vec![("iteration", 2, 180)]);
    }

    #[test]
    fn csv_export_is_counters_only() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("counter,worker,value"));
        assert!(csv.contains("tasks_executed"));
    }

    #[test]
    fn histograms_appear_in_json_and_text() {
        let hist = ezp_perf::LogHistogram::new("task_ns");
        for v in [100u64, 200, 5000] {
            hist.record(v);
        }
        let rep = sample().with_histograms(vec![hist.summary()]);
        let j = Json::parse(&rep.to_json().dump()).unwrap();
        let hists = j.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(hists.len(), 1);
        assert_eq!(
            hists[0].get("name"),
            Some(&Json::Str("task_ns".into()))
        );
        assert!(hists[0].get("p99_ns").is_some());
        assert!(rep.to_text().contains("# hist task_ns: n=3"));
        // no histograms -> key omitted entirely
        assert!(sample().to_json().get("histograms").is_none());
    }

    #[test]
    fn fully_idle_worker_yields_valid_json_with_null_busy_ratio() {
        // regression: worker 1 records nothing, so busy_ratio() is
        // INFINITY — --stats=json must stay parseable with a null there
        let grid = TileGrid::square(32, 16).unwrap();
        let mon = MonitorReport::new(
            2,
            grid,
            vec![IterationSpan {
                iteration: 1,
                start_ns: 0,
                end_ns: 100,
            }],
            vec![TileRecord {
                iteration: 1,
                x: 0,
                y: 0,
                w: 16,
                h: 16,
                start_ns: 0,
                end_ns: 60,
                worker: 0,
            }],
        );
        let rep = UnifiedReport::new(Some(mon), CounterSnapshot::default(), Vec::new());
        let text = rep.to_json().dump();
        assert!(!text.contains("inf"), "non-finite leaked into: {text}");
        let j = Json::parse(&text).expect("stats JSON must stay valid");
        let iters = j.get("iterations").unwrap().as_arr().unwrap();
        assert_eq!(iters[0].get("busy_ratio"), Some(&Json::Null));
    }
}
