//! The unit of monitoring data: one computed tile.

use ezp_core::json::{FromJson, Json, ToJson};
use ezp_core::WorkerId;

/// One `monitoring_start_tile` / `monitoring_end_tile` bracket: a tile
/// computed by one worker during one iteration, with wall-clock
/// timestamps (nanoseconds since the process origin).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileRecord {
    /// Iteration during which the tile was computed (1-based, like the
    /// paper's `for (it = 1; it <= nb_iter; it++)` loop).
    pub iteration: u32,
    /// Left pixel column of the tile rectangle.
    pub x: usize,
    /// Top pixel row.
    pub y: usize,
    /// Rectangle width in pixels.
    pub w: usize,
    /// Rectangle height in pixels.
    pub h: usize,
    /// Start timestamp (ns).
    pub start_ns: u64,
    /// End timestamp (ns).
    pub end_ns: u64,
    /// Worker that computed the tile.
    pub worker: WorkerId,
}

impl TileRecord {
    /// Task duration in nanoseconds.
    #[inline]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// True when the time interval of `self` overlaps `[t0, t1)` — the
    /// query behind EASYVIEW's vertical mouse mode ("tasks intersecting
    /// the mouse x-axis have their corresponding tile highlighted").
    #[inline]
    pub fn intersects_time(&self, t0: u64, t1: u64) -> bool {
        self.start_ns < t1 && t0 < self.end_ns
    }

    /// Number of pixels covered by the tile rectangle.
    #[inline]
    pub fn pixels(&self) -> usize {
        self.w * self.h
    }
}

/// One task-graph dependency edge observed during a run: `from` must
/// complete before `to` may start, for the reason `kind` encodes
/// (data / width / capacity — see `ezp_core::kernel::EdgeKind`). Edges
/// are what turn a recorded trace from a bag of intervals into a timed
/// DAG that `easyview explain` can walk for the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DepEdge {
    /// Task id of the producer (the dependency).
    pub from: usize,
    /// Task id of the consumer (the dependent).
    pub to: usize,
    /// Edge family, encoded per [`EdgeKind::as_u8`](ezp_core::kernel::EdgeKind::as_u8).
    pub kind: u8,
}

impl DepEdge {
    /// The decoded edge family, if `kind` is a known encoding.
    pub fn edge_kind(&self) -> Option<ezp_core::kernel::EdgeKind> {
        ezp_core::kernel::EdgeKind::from_u8(self.kind)
    }
}

impl ToJson for DepEdge {
    fn to_json(&self) -> Json {
        Json::obj([
            ("from", self.from.to_json()),
            ("to", self.to.to_json()),
            ("kind", self.kind.to_json()),
        ])
    }
}

impl FromJson for DepEdge {
    fn from_json(v: &Json) -> ezp_core::Result<Self> {
        Ok(DepEdge {
            from: v.field("from")?,
            to: v.field("to")?,
            kind: v.field("kind")?,
        })
    }
}

impl ToJson for TileRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("iteration", self.iteration.to_json()),
            ("x", self.x.to_json()),
            ("y", self.y.to_json()),
            ("w", self.w.to_json()),
            ("h", self.h.to_json()),
            ("start_ns", self.start_ns.to_json()),
            ("end_ns", self.end_ns.to_json()),
            ("worker", self.worker.to_json()),
        ])
    }
}

impl FromJson for TileRecord {
    fn from_json(v: &Json) -> ezp_core::Result<Self> {
        Ok(TileRecord {
            iteration: v.field("iteration")?,
            x: v.field("x")?,
            y: v.field("y")?,
            w: v.field("w")?,
            h: v.field("h")?,
            start_ns: v.field("start_ns")?,
            end_ns: v.field("end_ns")?,
            worker: v.field("worker")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: u64, end: u64) -> TileRecord {
        TileRecord {
            iteration: 1,
            x: 0,
            y: 0,
            w: 8,
            h: 4,
            start_ns: start,
            end_ns: end,
            worker: 0,
        }
    }

    #[test]
    fn duration_and_pixels() {
        let r = rec(100, 250);
        assert_eq!(r.duration_ns(), 150);
        assert_eq!(r.pixels(), 32);
    }

    #[test]
    fn duration_saturates_on_clock_skew() {
        assert_eq!(rec(200, 100).duration_ns(), 0);
    }

    #[test]
    fn time_intersection() {
        let r = rec(100, 200);
        assert!(r.intersects_time(150, 160)); // inside
        assert!(r.intersects_time(50, 150)); // overlaps start
        assert!(r.intersects_time(150, 250)); // overlaps end
        assert!(r.intersects_time(0, 1000)); // contains
        assert!(!r.intersects_time(0, 100)); // touches start (half-open)
        assert!(!r.intersects_time(200, 300)); // touches end (half-open)
    }
}
