#!/usr/bin/env bash
# Tier-1 verification: hermetic build + tests, entirely offline.
#
# The workspace must build and pass its test suite without touching a
# cargo registry. A grep guard keeps it that way: if any manifest
# reintroduces one of the dependencies this repo replaced with in-tree
# substitutes (see "Hermetic build & testkit" in DESIGN.md), verification
# fails before wasting time on a build.
set -euo pipefail
cd "$(dirname "$0")/.."

banned='^(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde)'
if grep -rE "$banned" crates/*/Cargo.toml Cargo.toml; then
    echo "error: registry dependency reintroduced (see matches above)." >&2
    echo "Use the in-tree substitutes: ezp-testkit (rng/proptest/bench)," >&2
    echo "std::sync, std::sync::mpsc, Vec<u8>, ezp-core::json." >&2
    exit 1
fi

# Static analysis lane (see docs/static-analysis.md): ezp-lint enforces
# the invariants the runtime's correctness argument leans on — SAFETY:
# comments on unsafe, ORDERING: justifications on weak atomics, a
# lock-free scheduler hot path, seed-replay determinism in the ezp-check
# modules, hermetic manifests, and live cfg(feature) gates. It runs
# before the build lanes: the linter is std-only and compiles even when
# the rest of the tree is broken, and its findings are cheaper to read
# than a failed tier-2 lane. The JSON report is kept for tooling; on
# failure the human-readable rerun prints the findings.
if ! cargo run -q --offline -p ezp-lint -- --format=json > ci/lint-report.json; then
    cargo run -q --offline -p ezp-lint || true
    echo "error: ezp-lint found violations (report: ci/lint-report.json;" >&2
    echo "       rules + suppression syntax: docs/static-analysis.md)." >&2
    exit 1
fi
# The version-2 report carries per-pass finding counts and wall-times;
# echo them into the log and fail the lane if the whole lint run blew
# its 5-second budget — a cross-file pass regressing into quadratic
# behaviour on workspace growth should be a CI failure, not slow creep.
if command -v python3 >/dev/null 2>&1; then
    python3 - ci/lint-report.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for p in doc["passes"]:
    print(f"verify: lint pass {p['name']}: {p['findings']} finding(s) "
          f"in {p['wall_ms']:.1f} ms")
total = doc["total_ms"]
if total > 5000:
    sys.exit(f"verify: lint run took {total:.0f} ms, over the 5000 ms budget")
print(f"verify: lint lane within budget ({total:.0f} ms of 5000 ms)")
EOF
else
    # Fallback: the three passes must be present in the report; no
    # budget arithmetic without python3.
    for pass_name in atomics-pairing guard-leak counter-registry; do
        grep -q "\"name\": *\"$pass_name\"" ci/lint-report.json
    done
    echo "verify: lint passes present in report (grep fallback, no budget check)"
fi
echo "verify: ezp-lint clean"

# --workspace matters: the root package alone does not pull in the
# easypap-cli binary the smoke test below runs.
cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo build --benches --offline

# Tier 2: deterministic concurrency checking (see docs/testing.md).
# The ezp-check feature compiles the virtual-scheduler executor and the
# shadow-write race detector, and unlocks the full conformance matrix
# (every kernel x variant x policy x {1,2,4,8} workers). Kept out of the
# workspace-wide run above so tier-1 wall-clock stays flat; the feature
# adds nothing to a default build.
cargo test -q --offline -p ezp-sched -p ezp-core --features ezp-check
cargo test -q --offline -p easypap --features ezp-check
# Conformance smoke at 2 workers, named explicitly so a matrix-wide
# regression is visible in this log even if someone trims the lanes
# above.
cargo test -q --offline -p easypap --features ezp-check \
    --test conformance -- conformance_smoke_two_workers

# Scheduler-hot-path bench gate: run the sched bench in smoke mode,
# emit BENCH_sched.json, and diff it against the committed baseline
# (ci/BENCH_sched.json). What is compared is the lock-free/mutex
# throughput *ratio* per metric per worker count — self-normalizing, so
# a slow or noisy CI host does not fail the gate, but the lock-free
# paths regressing >20% relative to the in-run mutex baselines does.
bench_json="$(mktemp)"
EZP_BENCH_SMOKE=1 EZP_BENCH_JSON="$bench_json" \
    cargo bench -q --offline -p ezp-bench --bench sched >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$bench_json" ci/BENCH_sched.json <<'EOF'
import json, sys
cur = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
tol = 0.8  # fail on >20% regression vs the committed baseline ratio
failed = False
for metric in ("regions_per_sec", "tasks_per_sec", "steal_ops_per_sec"):
    for i, w in enumerate(base["workers"]):
        cr = cur["lockfree"][metric][i] / cur["mutex_baseline"][metric][i]
        br = base["lockfree"][metric][i] / base["mutex_baseline"][metric][i]
        status = "ok"
        if cr < tol * br:
            status = "REGRESSION"
            failed = True
        print(f"verify: bench {metric} @{w}w lockfree/mutex "
              f"{cr:.2f}x (baseline {br:.2f}x) {status}")
if failed:
    sys.exit("verify: sched bench regressed >20% vs ci/BENCH_sched.json")
print("verify: sched bench within 20% of committed baseline ratios")
EOF
else
    # Fallback: structural check that the bench emitted all three
    # metrics for both variants.
    for key in regions_per_sec tasks_per_sec steal_ops_per_sec \
               lockfree mutex_baseline; do
        grep -q "\"$key\"" "$bench_json"
    done
    echo "verify: sched bench JSON OK (grep fallback, no ratio diff)"
fi
rm -f "$bench_json"

# Streaming bench gate: same idea for the skeleton engine. The compared
# quantity is the parallel/sequential frames-per-sec ratio per emission
# mode per farm width — self-normalizing against host speed — with the
# same >20% regression tolerance vs ci/BENCH_stream.json.
stream_json="$(mktemp)"
EZP_BENCH_SMOKE=1 EZP_BENCH_JSON="$stream_json" \
    cargo bench -q --offline -p ezp-bench --bench stream >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$stream_json" ci/BENCH_stream.json <<'EOF'
import json, sys
cur = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
tol = 0.8  # fail on >20% regression vs the committed baseline ratio
failed = False
for mode in ("ordered", "unordered"):
    for i, w in enumerate(base["widths"]):
        cr = cur[mode]["frames_per_sec"][i] / cur["seq_baseline"]["frames_per_sec"][0]
        br = base[mode]["frames_per_sec"][i] / base["seq_baseline"]["frames_per_sec"][0]
        status = "ok"
        if cr < tol * br:
            status = "REGRESSION"
            failed = True
        print(f"verify: bench stream {mode} @width {w} par/seq "
              f"{cr:.2f}x (baseline {br:.2f}x) {status}")
if failed:
    sys.exit("verify: stream bench regressed >20% vs ci/BENCH_stream.json")
print("verify: stream bench within 20% of committed baseline ratios")
EOF
else
    for key in widths ordered unordered seq_baseline frames_per_sec; do
        grep -q "\"$key\"" "$stream_json"
    done
    echo "verify: stream bench JSON OK (grep fallback, no ratio diff)"
fi
rm -f "$stream_json"

# Channel bench gate (docs/channels.md): ring vs std::sync::mpsc. Two
# checks: the ring/mpsc throughput *ratio* per shape must not regress
# >20% vs the committed baseline (self-normalizing against host speed),
# and the ring must stay ahead of the mpsc baseline outright on both
# SPSC shapes — the crate's reason to exist.
chan_json="$(mktemp)"
EZP_BENCH_SMOKE=1 EZP_BENCH_JSON="$chan_json" \
    cargo bench -q --offline -p ezp-bench --bench chan >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$chan_json" ci/BENCH_chan.json <<'EOF'
import json, sys
cur = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
tol = 0.8  # fail on >20% regression vs the committed baseline ratio
failed = False
for metric in ("spsc_inline_msgs_per_sec", "spsc_threaded_msgs_per_sec"):
    cr = cur["ring"][metric] / cur["mpsc_baseline"][metric]
    br = base["ring"][metric] / base["mpsc_baseline"][metric]
    status = "ok"
    if cr < tol * br:
        status = "REGRESSION"
        failed = True
    if cr < 1.0:
        status = "SLOWER THAN MPSC"
        failed = True
    print(f"verify: bench chan {metric} ring/mpsc "
          f"{cr:.2f}x (baseline {br:.2f}x) {status}")
for i, t in enumerate(base["threads"]):
    cr = cur["ring"]["mpmc_msgs_per_sec"][i] / cur["mpsc_baseline"]["mpmc_msgs_per_sec"][i]
    br = base["ring"]["mpmc_msgs_per_sec"][i] / base["mpsc_baseline"]["mpmc_msgs_per_sec"][i]
    status = "ok"
    if cr < tol * br:
        status = "REGRESSION"
        failed = True
    print(f"verify: bench chan mpmc @{t}p ring/mpsc "
          f"{cr:.2f}x (baseline {br:.2f}x) {status}")
if failed:
    sys.exit("verify: chan bench regressed vs ci/BENCH_chan.json")
print("verify: chan bench within 20% of committed baseline ratios, ring ahead on SPSC")
EOF
else
    for key in spsc_inline_msgs_per_sec spsc_threaded_msgs_per_sec \
               mpmc_msgs_per_sec ring mpsc_baseline; do
        grep -q "\"$key\"" "$chan_json"
    done
    echo "verify: chan bench JSON OK (grep fallback, no ratio diff)"
fi
rm -f "$chan_json"

# Observability smoke test: a real run must emit a parseable JSON stats
# report with a non-zero task count (the --stats pipeline end to end).
stats_dir="$(mktemp -d)"
trap 'rm -rf "$stats_dir"' EXIT
(
    cd "$stats_dir"
    "$OLDPWD/target/release/easypap" --kernel life --variant omp_tiled \
        --size 64 --tile-size 16 --iterations 3 --threads 2 \
        --no-display --stats=json > stats_run.out
    # The JSON object is the last block of the output; split it off.
    sed -n '/^{/,$p' stats_run.out > stats.json
    if command -v python3 >/dev/null 2>&1; then
        python3 - stats.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = doc["counters"]["counters"]
tasks = next(r for r in rows if r["name"] == "tasks_executed")
assert tasks["total"] > 0, "tasks_executed is zero"
print(f"verify: stats JSON OK ({tasks['total']} tasks executed)")
EOF
    else
        # Fallback: structural grep for a non-zero tasks_executed total.
        grep -q '"name": *"tasks_executed"' stats.json
        grep -A2 '"name": *"tasks_executed"' stats.json \
            | grep -qE '"total": *[1-9]'
        echo "verify: stats JSON OK (grep fallback)"
    fi
)

# Explain lane (docs/profiling.md): record an instrumented trace, then
# run the causal profiler over it. The report must carry the critical
# path, per-cause idle counters, the work/span bound and at least one
# advisor recommendation, and the per-cause idle slices must sum to the
# idle_ns total.
explain_dir="$(mktemp -d)"
(
    cd "$explain_dir"
    "$OLDPWD/target/release/easypap" --kernel mandel --variant omp_tiled \
        --size 64 --tile-size 16 --iterations 2 --threads 2 \
        --no-display --trace --stats=json > explain_run.out
    "$OLDPWD/target/release/easyview" explain trace.ezv > explain.out
    for needle in "work T1" "span Tinf" "task latency" "p99" "# advice:"; do
        grep -qF "$needle" explain.out || {
            echo "error: explain report is missing \"$needle\"" >&2
            exit 1
        }
    done
    grep -qE '\[[a-z-]+\]' explain.out || {
        echo "error: explain report has no advisor recommendation" >&2
        exit 1
    }
    # per-cause attribution: the counter snapshot embedded in the trace
    # carries idle_ns{cause=...} slices that sum exactly to idle_ns
    sed -n '/^{/,$p' explain_run.out > explain_stats.json
    grep -q 'idle_ns{cause=' explain_stats.json || {
        echo "error: per-cause idle counters missing from --stats=json" >&2
        exit 1
    }
    if command -v python3 >/dev/null 2>&1; then
        python3 - explain_stats.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = {r["name"]: r["total"] for r in doc["counters"]["counters"]}
total = rows.get("idle_ns", 0)
causes = sum(v for k, v in rows.items() if k.startswith("idle_ns{cause="))
assert causes == total, f"idle causes sum to {causes}, idle_ns is {total}"
print(f"verify: explain OK (idle breakdown {causes} ns == idle_ns total)")
EOF
    else
        echo "verify: explain OK (grep fallback, no sum check)"
    fi
)
rm -rf "$explain_dir"

# Streaming smoke lane: a 2-worker ordered pipeline run over 16 frames
# must stream end to end and its --stats=json report must carry the
# streaming counters (docs/streaming.md).
stream_dir="$(mktemp -d)"
(
    cd "$stream_dir"
    "$OLDPWD/target/release/easypap" --kernel mandel_zoom --stream=16 \
        --threads 2 --farm-width 2 --size 32 --no-display \
        --stats=json > stream_run.out
    grep -q "16 frames streamed" stream_run.out
    sed -n '/^{/,$p' stream_run.out > stream_stats.json
    for counter in frames_emitted frames_in_flight reorder_buffer_depth \
                   stage_occupancy backpressure_stalls; do
        grep -q "\"name\": *\"$counter\"" stream_stats.json || {
            echo "error: streaming counter $counter missing from --stats=json" >&2
            exit 1
        }
    done
    grep -A2 '"name": *"frames_emitted"' stream_stats.json \
        | grep -qE '"total": *16'
    echo "verify: streaming smoke OK (16 frames, counters present)"

    # Channel lane (docs/channels.md): the emission channel's counters
    # must ride the same stats report — 16 frames through the channel —
    # and the backend/wait-policy knobs must actually take effect.
    for counter in chan_sends chan_recvs chan_full_stalls chan_empty_stalls; do
        grep -q "\"name\": *\"$counter\"" stream_stats.json || {
            echo "error: channel counter $counter missing from --stats=json" >&2
            exit 1
        }
    done
    grep -A2 '"name": *"chan_sends"' stream_stats.json \
        | grep -qE '"total": *16'
    grep -q "emission channel (Ring/Park)" stream_run.out
    "$OLDPWD/target/release/easypap" --kernel mandel_zoom --stream=16 \
        --threads 2 --farm-width 2 --size 32 --no-display \
        --chan-backend=mpsc --wait-policy=yield --stats > chan_run.out
    grep -q "16 frames streamed" chan_run.out
    grep -q "emission channel (Mpsc/Yield): 16 sends, 16 recvs" chan_run.out
    echo "verify: channel smoke OK (chan counters in stats, knobs take effect)"
)
rm -rf "$stream_dir"

# Serve lane (docs/serving.md): one persistent daemon, a good job via
# the submit client, an over-quota rejection with a retry-after hint,
# per-tenant counters in the stats JSON, and a clean remote stop.
serve_dir="$(mktemp -d)"
(
    cd "$serve_dir"
    port=39473
    "$OLDPWD/target/release/easypap" serve --port "$port" --workers 1 \
        --slots 1 --queue-cap 1 --max-tenants 4 \
        > serve_summary.out 2> serve.log &
    serve_pid=$!
    up=0
    for _ in $(seq 1 100); do
        if "$OLDPWD/target/release/easypap" submit --port "$port" \
            --server-stats > /dev/null 2>&1; then up=1; break; fi
        sleep 0.1
    done
    if [ "$up" != 1 ]; then
        echo "error: easypap serve never came up" >&2
        cat serve.log >&2
        exit 1
    fi

    "$OLDPWD/target/release/easypap" submit --port "$port" --kernel mandel \
        --variant seq -s 64 -i 2 --tenant ci > submit.out
    grep -q "(tenant ci) done: 2 iteration(s)" submit.out
    grep -qE "digest [0-9a-f]{16}" submit.out

    # over-quota: two stalled jobs occupy the single runner slot and the
    # 1-deep admission lane; the third must bounce with a retry hint
    "$OLDPWD/target/release/easypap" submit --port "$port" --kernel mandel \
        --variant seq -s 64 --tenant ci --stall-us 500000 > bg1.out &
    bg1=$!
    sleep 0.2
    "$OLDPWD/target/release/easypap" submit --port "$port" --kernel mandel \
        --variant seq -s 64 --tenant ci --stall-us 500000 > bg2.out &
    bg2=$!
    sleep 0.2
    if "$OLDPWD/target/release/easypap" submit --port "$port" --kernel mandel \
        --variant seq -s 64 --tenant ci 2> reject.err; then
        echo "error: over-quota submit was not rejected" >&2
        exit 1
    fi
    grep -q "rejected" reject.err
    grep -q "retry after" reject.err
    wait "$bg1" "$bg2"

    "$OLDPWD/target/release/easypap" submit --port "$port" --server-stats \
        > stats.json
    if command -v python3 >/dev/null 2>&1; then
        python3 - stats.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
row = next(t for t in doc["tenants"] if t["tenant"] == "ci")
assert row["jobs_admitted"] == 3, row
assert row["jobs_completed"] == 3, row
assert row["jobs_rejected"] >= 1, row
assert row["tenant_queue_depth"] >= 1, row
assert "tenant_idle_ns" in row, row
print(f"verify: serve per-tenant counters OK ({row['jobs_admitted']} admitted, "
      f"{row['jobs_rejected']} rejected for tenant ci)")
EOF
    else
        for key in jobs_admitted jobs_rejected jobs_completed \
                   tenant_queue_depth tenant_idle_ns; do
            grep -q "\"$key\"" stats.json
        done
        echo "verify: serve per-tenant counters OK (grep fallback)"
    fi

    "$OLDPWD/target/release/easypap" submit --port "$port" --stop > stop.out
    grep -q "acknowledged shutdown" stop.out
    wait "$serve_pid"
    grep -q "served 3 job(s) (3 completed, 0 cancelled, 0 failed), 1 rejected" \
        serve_summary.out
    echo "verify: serve smoke OK (job + rejection + stats + remote stop)"
)
rm -rf "$serve_dir"

# Multi-tenant throughput gate: the synthetic replay bench must show
# >= 1.3x the serialized jobs/sec at 4 concurrent tenants — the shared
# worker-pool mux actually overlapping independent jobs. Absolute
# gate (not baseline-relative): the ratio is self-normalizing.
serve_json="$(mktemp)"
EZP_BENCH_SMOKE=1 EZP_BENCH_JSON="$serve_json" \
    cargo bench -q --offline -p ezp-bench --bench serve >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$serve_json" ci/BENCH_serve.json <<'EOF'
import json, sys
cur = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
speedup = cur["speedup_at_4_tenants"]
print(f"verify: bench serve 4-tenant speedup {speedup:.2f}x "
      f"(baseline {base['speedup_at_4_tenants']:.2f}x, gate 1.30x)")
if speedup < 1.3:
    sys.exit("verify: serve bench below the 1.3x multi-tenant gate")
print("verify: serve bench above the 1.3x multi-tenant gate")
EOF
else
    for key in serialized_jobs_per_sec concurrent_jobs_per_sec \
               speedup_at_4_tenants; do
        grep -q "\"$key\"" "$serve_json"
    done
    echo "verify: serve bench JSON OK (grep fallback, no speedup gate)"
fi
rm -f "$serve_json"

echo "verify: OK (offline build + tests green, no registry deps, stats JSON parses)"
