#!/usr/bin/env bash
# Tier-1 verification: hermetic build + tests, entirely offline.
#
# The workspace must build and pass its test suite without touching a
# cargo registry. A grep guard keeps it that way: if any manifest
# reintroduces one of the dependencies this repo replaced with in-tree
# substitutes (see "Hermetic build & testkit" in DESIGN.md), verification
# fails before wasting time on a build.
set -euo pipefail
cd "$(dirname "$0")/.."

banned='^(rand|proptest|criterion|crossbeam|parking_lot|bytes|serde)'
if grep -rE "$banned" crates/*/Cargo.toml Cargo.toml; then
    echo "error: registry dependency reintroduced (see matches above)." >&2
    echo "Use the in-tree substitutes: ezp-testkit (rng/proptest/bench)," >&2
    echo "std::sync, std::sync::mpsc, Vec<u8>, ezp-core::json." >&2
    exit 1
fi

cargo build --release --offline
cargo test -q --offline --workspace
cargo build --benches --offline

echo "verify: OK (offline build + tests green, no registry deps)"
